//! The storage-IO seam: [`StoreIo`] abstracts "a directory of
//! append-only files" so the same [`crate::Store`] logic runs over the
//! real filesystem ([`DiskIo`]) and over the deterministic fault-injection
//! harness ([`FaultIo`]), which can kill a write at any byte boundary and
//! hand the surviving bytes to a fresh store — the durability tests'
//! model of `kill -9` plus restart.

use std::collections::BTreeMap;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// A directory of named append-only files. Implementations must be
/// thread-safe; the store serializes mutations behind its own lock but
/// issues reads concurrently with nothing held in `DiskIo`'s case.
pub trait StoreIo: Send + Sync {
    /// Names of the existing files (any order; the store sorts).
    fn list(&self) -> io::Result<Vec<String>>;
    /// Length of `name` in bytes.
    fn len(&self, name: &str) -> io::Result<u64>;
    /// The whole content of `name` (recovery scan).
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;
    /// Exactly `len` bytes of `name` starting at `offset`.
    fn read_at(&self, name: &str, offset: u64, len: usize) -> io::Result<Vec<u8>>;
    /// Append `data` to `name`, creating it if missing.
    fn append(&self, name: &str, data: &[u8]) -> io::Result<()>;
    /// Durably flush `name` (the commit boundary's `fsync`).
    fn sync(&self, name: &str) -> io::Result<()>;
    /// Truncate `name` to `len` bytes (torn-tail recovery).
    fn truncate(&self, name: &str, len: u64) -> io::Result<()>;
    /// Delete `name` (segment compaction).
    fn remove(&self, name: &str) -> io::Result<()>;
}

// ------------------------------------------------------------------ disk

/// [`StoreIo`] over a real directory via `std::fs`.
pub struct DiskIo {
    dir: PathBuf,
}

impl DiskIo {
    /// Open (creating if needed) `dir` as a store directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<DiskIo> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DiskIo { dir })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }
}

impl StoreIo for DiskIo {
    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        Ok(names)
    }

    fn len(&self, name: &str) -> io::Result<u64> {
        Ok(std::fs::metadata(self.path(name))?.len())
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.path(name))
    }

    fn read_at(&self, name: &str, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let mut f = std::fs::File::open(self.path(name))?;
        f.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        f.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        f.write_all(data)
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        std::fs::File::open(self.path(name))?.sync_all()
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(name))?;
        f.set_len(len)
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        std::fs::remove_file(self.path(name))
    }
}

// ------------------------------------------------------- fault injection

/// Deterministic in-memory [`StoreIo`] with a byte-granular write budget:
/// once the budget runs out mid-append, the first `k` bytes land (the
/// torn write) and the IO enters the *crashed* state, failing every
/// subsequent operation — the moment of `kill -9`. The harness then calls
/// [`FaultIo::surviving`] to get a fresh, healthy IO over exactly the
/// bytes that made it to "disk" and reopens a store on it, which is how
/// the fault-injection suites prove recovery at every byte boundary.
#[derive(Default)]
pub struct FaultIo {
    files: Mutex<BTreeMap<String, Vec<u8>>>,
    /// Bytes of `append` allowed before the injected crash
    /// (`u64::MAX` = never crash).
    budget: AtomicU64,
    crashed: AtomicBool,
    /// Total bytes ever appended (budget planning for sweep harnesses).
    appended: AtomicU64,
    /// Successful `sync` calls.
    syncs: AtomicU64,
}

impl FaultIo {
    /// A healthy, empty IO that never crashes.
    pub fn new() -> FaultIo {
        FaultIo {
            budget: AtomicU64::new(u64::MAX),
            ..FaultIo::default()
        }
    }

    /// A healthy, empty IO that crashes after `budget` appended bytes.
    pub fn with_budget(budget: u64) -> FaultIo {
        FaultIo {
            budget: AtomicU64::new(budget),
            ..FaultIo::default()
        }
    }

    /// True once the write budget was exceeded.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Total bytes ever appended (across crashes).
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::SeqCst)
    }

    /// Successful `sync` calls.
    pub fn syncs(&self) -> u64 {
        self.syncs.load(Ordering::SeqCst)
    }

    /// The restart: a fresh, healthy, unbounded IO over exactly the bytes
    /// that survived — what a process sees when it reopens the directory
    /// after the crash.
    pub fn surviving(&self) -> FaultIo {
        let files = self.files.lock().expect("fault files").clone();
        FaultIo {
            files: Mutex::new(files),
            budget: AtomicU64::new(u64::MAX),
            ..FaultIo::default()
        }
    }

    /// Flip one bit of `name` at `offset` (bit-rot injection for the
    /// checksum-quarantine tests). Returns false when out of range.
    pub fn flip_byte(&self, name: &str, offset: u64) -> bool {
        let mut files = self.files.lock().expect("fault files");
        match files.get_mut(name).and_then(|f| f.get_mut(offset as usize)) {
            Some(b) => {
                *b ^= 0x40;
                true
            }
            None => false,
        }
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.crashed() {
            Err(io::Error::other("injected crash: store io is down"))
        } else {
            Ok(())
        }
    }
}

impl StoreIo for FaultIo {
    fn list(&self) -> io::Result<Vec<String>> {
        self.check_alive()?;
        Ok(self
            .files
            .lock()
            .expect("fault files")
            .keys()
            .cloned()
            .collect())
    }

    fn len(&self, name: &str) -> io::Result<u64> {
        self.check_alive()?;
        let files = self.files.lock().expect("fault files");
        files
            .get(name)
            .map(|f| f.len() as u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.check_alive()?;
        let files = self.files.lock().expect("fault files");
        files
            .get(name)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))
    }

    fn read_at(&self, name: &str, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        self.check_alive()?;
        let files = self.files.lock().expect("fault files");
        let file = files
            .get(name)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))?;
        let start = offset as usize;
        let end = start.checked_add(len).filter(|&e| e <= file.len());
        match end {
            Some(end) => Ok(file[start..end].to_vec()),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "read past end of file",
            )),
        }
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.check_alive()?;
        // Spend the budget byte by byte: a write that exceeds what's left
        // lands partially, then the "machine" goes down.
        let budget = self.budget.load(Ordering::SeqCst);
        let landed = (data.len() as u64).min(budget) as usize;
        {
            let mut files = self.files.lock().expect("fault files");
            files
                .entry(name.to_string())
                .or_default()
                .extend_from_slice(&data[..landed]);
        }
        self.appended.fetch_add(landed as u64, Ordering::SeqCst);
        self.budget.fetch_sub(landed as u64, Ordering::SeqCst);
        if landed < data.len() {
            self.crashed.store(true, Ordering::SeqCst);
            return Err(io::Error::other("injected crash: torn append"));
        }
        Ok(())
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        self.check_alive()?;
        let _ = name;
        self.syncs.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        self.check_alive()?;
        let mut files = self.files.lock().expect("fault files");
        let file = files
            .get_mut(name)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))?;
        file.truncate(len as usize);
        Ok(())
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.check_alive()?;
        let mut files = self.files.lock().expect("fault files");
        files
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_io_round_trips_through_a_real_directory() {
        let dir = std::env::temp_dir().join(format!("adds_store_diskio_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let io = DiskIo::open(&dir).expect("open");
        io.append("a.seg", b"hello ").expect("append");
        io.append("a.seg", b"world").expect("append");
        io.sync("a.seg").expect("sync");
        assert_eq!(io.read("a.seg").expect("read"), b"hello world");
        assert_eq!(io.read_at("a.seg", 6, 5).expect("read_at"), b"world");
        assert_eq!(io.len("a.seg").expect("len"), 11);
        io.truncate("a.seg", 5).expect("truncate");
        assert_eq!(io.read("a.seg").expect("read"), b"hello");
        assert_eq!(io.list().expect("list"), vec!["a.seg".to_string()]);
        io.remove("a.seg").expect("remove");
        assert!(io.list().expect("list").is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_io_tears_the_append_at_the_budget_boundary() {
        let io = FaultIo::with_budget(4);
        assert!(io.append("a", b"abc").is_ok());
        // 1 byte of budget left: the first byte lands, then the crash.
        let err = io.append("a", b"xyz").unwrap_err();
        assert!(err.to_string().contains("torn append"));
        assert!(io.crashed());
        assert!(io.read("a").is_err(), "crashed io refuses everything");
        // The restart sees exactly the bytes that landed.
        let after = io.surviving();
        assert_eq!(after.read("a").expect("read"), b"abcx");
        assert!(!after.crashed());
        assert!(after.append("a", b"more").is_ok());
    }

    #[test]
    fn fault_io_flip_byte_mutates_in_place() {
        let io = FaultIo::new();
        io.append("a", b"data").expect("append");
        assert!(io.flip_byte("a", 2));
        assert_eq!(io.read("a").expect("read"), b"da\x34a");
        assert!(!io.flip_byte("a", 99));
    }
}
