//! # adds-store — the crash-safe disk tier of the analysis cache
//!
//! Cache entries are canonical, name-free documents keyed by
//! `(sha256(source), composed fingerprint)` — immutable per key — so a
//! content-addressed KV store layered under the in-RAM CLOCK tier makes
//! whole fleets restart-warm. This crate is that tier:
//!
//! * [`Store`] — an append-only **segment-file KV store**
//!   (`adds.store-segment/v1`): checksummed length-prefixed records in
//!   numbered segment files, an in-memory index rebuilt by scanning on
//!   open, write-behind [`Store::put`] buffered until an explicit
//!   [`Store::commit`] (append + `fsync` + index publish, the durability
//!   boundary), segment rotation at a size cap, offline
//!   [`Store::compact`], and snapshot [`Store::export`]/[`Store::import`]
//!   (`adds.store-snapshot/v1`) for pre-warmed corpus artifacts.
//! * **Crash-safe recovery** — opening verifies every record checksum; a
//!   torn tail (the record a crash cut short) is truncated silently, and
//!   a record damaged anywhere else is *quarantined*: counted, skipped,
//!   and never served. Every later read re-verifies its checksum too, so
//!   bit rot after open is also caught. The store always opens; it just
//!   refuses to serve damaged bytes.
//! * [`StoreIo`] — the storage seam: [`DiskIo`] is `std::fs`;
//!   [`FaultIo`] is the deterministic fault-injection harness that kills
//!   writes at any byte boundary and hands the surviving bytes to a
//!   reopened store, which is how the durability suites prove that no
//!   committed entry is ever lost and no damaged entry ever served
//!   (`cargo test -p adds-store --features fault-injection`).
//!
//! The layering follows cita-vm's state design — dirty-tracking entries
//! above a KV layer with an explicit `commit()` — with the cache's
//! immutability contract simplifying it further: a `put` of an existing
//! key is a no-op, so records never update in place.

#![warn(missing_docs)]

pub mod crc;
pub mod io;
mod store;

pub use io::{DiskIo, FaultIo, StoreIo};
pub use store::{
    CompactOutcome, Store, StoreOptions, StoreSnapshot, SEGMENT_SCHEMA, SNAPSHOT_SCHEMA,
};
