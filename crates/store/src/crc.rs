//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial), table-driven. The build
//! environment is offline, so the workspace cannot pull a checksum crate;
//! this is the textbook reflected-polynomial implementation, pinned
//! against the standard `"123456789"` check value below.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xedb8_8320;

/// The 256-entry lookup table, built at compile time.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `data` in one call.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        // The universal CRC-32/ISO-HDLC check vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_byte_flips() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let reference = crc32(data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.to_vec();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at byte {i} bit {bit}");
            }
        }
    }
}
