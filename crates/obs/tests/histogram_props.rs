//! Property tests for the log₂-scale histogram: bucket placement and the
//! "quantile estimate is within one bucket width of the true quantile"
//! contract, over the proptest shim.

use adds_obs::metrics::{bucket_index, bucket_lower, bucket_upper, Histogram, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

proptest! {
    /// Every sample lands in the bucket whose bounds contain it.
    #[test]
    fn samples_land_in_their_bucket(value in 0u64..u64::MAX) {
        let i = bucket_index(value);
        prop_assert!(i < HISTOGRAM_BUCKETS);
        prop_assert!(bucket_lower(i) <= value);
        prop_assert!(value <= bucket_upper(i));
    }

    /// Recording a batch puts each count in exactly one bucket and keeps
    /// count/sum consistent.
    #[test]
    fn recorded_counts_are_conserved(values in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let counts = h.bucket_counts();
        prop_assert_eq!(counts.iter().sum::<u64>(), values.len() as u64);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        for &v in &values {
            prop_assert!(counts[bucket_index(v)] > 0);
        }
    }

    /// For every quantile, the estimate is the upper bound of the bucket
    /// holding the true quantile — i.e. the true order statistic lies
    /// within one bucket width of the estimate.
    #[test]
    fn quantile_estimates_bound_true_quantile(
        values in proptest::collection::vec(0u64..1_000_000, 1..200),
        qi in 1usize..100,
    ) {
        let q = qi as f64 / 100.0;
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let est = h.quantile(q);
        let bucket = bucket_index(truth);
        prop_assert_eq!(est, bucket_upper(bucket));
        prop_assert!(bucket_lower(bucket) <= truth && truth <= est);
    }
}
