//! Lock-free metric primitives: counters, gauges, and log₂-scale
//! histograms, with a Prometheus text rendering.
//!
//! The histogram uses [`HISTOGRAM_BUCKETS`] fixed power-of-two buckets:
//! bucket 0 holds the value `0`, bucket *i* (for `i ≥ 1`) holds values in
//! `[2^(i-1), 2^i - 1]`, and the last bucket absorbs everything above.
//! With microsecond samples the top bounded bucket starts at `2^30` µs
//! (≈ 18 minutes), far past any request this system serves. Recording is
//! one relaxed `fetch_add` per atomic; quantile estimates walk the bucket
//! array without taking any lock and are exact to within one bucket
//! width (the property the `histogram_props` tests pin down).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of log₂ buckets in a [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A monotonic counter (relaxed atomic).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed up/down gauge (relaxed atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh gauge at zero.
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtract one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket index for a sample: 0 for the value 0, otherwise the sample's
/// bit length, clamped to the last bucket.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `i` (0, 1, 2, 4, 8, …).
pub fn bucket_lower(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// Inclusive upper bound of bucket `i` (0, 1, 3, 7, 15, …); the last
/// bucket is unbounded above.
pub fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= HISTOGRAM_BUCKETS - 1 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A fixed-bucket log₂-scale histogram. All operations are relaxed
/// atomics; concurrent recorders never block each other and readers see
/// a consistent-enough snapshot for monitoring purposes.
#[derive(Debug, Default)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    /// A fresh, empty histogram.
    pub const fn new() -> Histogram {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [ZERO; HISTOGRAM_BUCKETS],
        }
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Estimate the `q`-quantile (`0 < q ≤ 1`) as the **upper bound of
    /// the bucket** holding the ⌈q·count⌉-th smallest sample, so the true
    /// quantile lies within one bucket width below the estimate. Returns
    /// 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(i);
            }
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }
}

/// Append one Prometheus counter sample: `name{labels} value`.
/// `labels` is the raw label body (e.g. `route="healthz"`), or empty.
pub fn prom_counter(out: &mut String, name: &str, labels: &str, value: u64) {
    prom_sample(out, name, labels, &value.to_string());
}

/// Append one Prometheus gauge sample.
pub fn prom_gauge(out: &mut String, name: &str, labels: &str, value: i64) {
    prom_sample(out, name, labels, &value.to_string());
}

/// Append a full Prometheus histogram series for `h`:
/// cumulative `name_bucket{…,le="…"}` lines over the log₂ bounds
/// (suppressing interior empty buckets past the data), then `name_sum`
/// and `name_count`.
pub fn prom_histogram(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    let counts = h.bucket_counts();
    let last_used = counts.iter().rposition(|&c| c > 0).unwrap_or(0);
    let mut cumulative = 0u64;
    for (i, c) in counts.iter().enumerate().take(last_used + 1) {
        cumulative += c;
        let le = bucket_upper(i).to_string();
        prom_bucket(out, name, labels, &le, cumulative);
    }
    prom_bucket(out, name, labels, "+Inf", h.count());
    prom_sample(out, &format!("{name}_sum"), labels, &h.sum().to_string());
    prom_sample(
        out,
        &format!("{name}_count"),
        labels,
        &h.count().to_string(),
    );
}

fn prom_bucket(out: &mut String, name: &str, labels: &str, le: &str, v: u64) {
    out.push_str(name);
    out.push_str("_bucket{");
    if !labels.is_empty() {
        out.push_str(labels);
        out.push(',');
    }
    out.push_str("le=\"");
    out.push_str(le);
    out.push_str("\"} ");
    out.push_str(&v.to_string());
    out.push('\n');
}

fn prom_sample(out: &mut String, name: &str, labels: &str, value: &str) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        out.push_str(labels);
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_count() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn bucket_bounds_partition_the_axis() {
        // Every bucket's bounds are contiguous with its neighbours, and
        // bucket_index lands each bound in its own bucket.
        for i in 1..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_lower(i), bucket_upper(i - 1).wrapping_add(1));
            assert_eq!(bucket_index(bucket_lower(i)), i);
        }
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_upper(i)), i);
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn quantile_of_uniform_samples_is_within_one_bucket() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // True p50 = 500 (bucket [512..1023] upper is the estimate for
        // values ≥ 512; 500 lives in [256..511]).
        let p50 = h.quantile(0.5);
        assert_eq!(p50, bucket_upper(bucket_index(500)));
        let p99 = h.quantile(0.99);
        assert_eq!(p99, bucket_upper(bucket_index(990)));
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn prometheus_rendering_is_byte_stable() {
        let h = Histogram::new();
        h.record(0);
        h.record(3);
        h.record(3);
        let mut out = String::new();
        prom_counter(&mut out, "adds_requests_total", "route=\"healthz\"", 7);
        prom_gauge(&mut out, "adds_connections_open", "", -1);
        prom_histogram(
            &mut out,
            "adds_request_duration_us",
            "route=\"healthz\"",
            &h,
        );
        assert_eq!(
            out,
            "adds_requests_total{route=\"healthz\"} 7\n\
             adds_connections_open -1\n\
             adds_request_duration_us_bucket{route=\"healthz\",le=\"0\"} 1\n\
             adds_request_duration_us_bucket{route=\"healthz\",le=\"1\"} 1\n\
             adds_request_duration_us_bucket{route=\"healthz\",le=\"3\"} 3\n\
             adds_request_duration_us_bucket{route=\"healthz\",le=\"+Inf\"} 3\n\
             adds_request_duration_us_sum{route=\"healthz\"} 6\n\
             adds_request_duration_us_count{route=\"healthz\"} 3\n"
        );
    }
}
