//! # adds-obs — observability substrate for the ADDS pipeline
//!
//! Two small, dependency-free building blocks, shared by every layer of
//! the workspace (query DB, HTTP server, bytecode VM, CLI):
//!
//! * [`trace`] — a lock-light span recorder. A global atomic gate keeps
//!   the disabled path to one relaxed load; when enabled, each thread
//!   records into its own ring buffer (one uncontended mutex per thread)
//!   with timestamps in microseconds since a global monotonic epoch.
//!   Snapshots render as Chrome `trace_event` JSON (`adds.trace/v1`)
//!   viewable in `chrome://tracing` or Perfetto.
//! * [`metrics`] — atomic [`Counter`](metrics::Counter)s,
//!   [`Gauge`](metrics::Gauge)s, and fixed-bucket log₂-scale
//!   [`Histogram`](metrics::Histogram)s from which p50/p90/p99 are
//!   derivable without locks, plus helpers that render them in the
//!   Prometheus text exposition format (`adds.metrics/v1`).
//!
//! Everything here is deliberately below the rest of the workspace in
//! the dependency graph: `adds-obs` depends only on `std`, so the
//! machine, query, and serve crates can all instrument themselves
//! without cycles.

#![warn(missing_docs)]

pub mod metrics;
pub mod trace;
