//! A lock-light span recorder with Chrome `trace_event` JSON export.
//!
//! Tracing is **off by default** and gated by one global atomic:
//! [`span`] costs a single relaxed load when disabled, so instrumentation
//! points can stay in release builds. When enabled (CLI `--trace out.json`
//! or `serve --trace`), each thread appends complete events (`"ph":"X"`)
//! to its own fixed-capacity ring buffer behind a per-thread mutex —
//! never contended in steady state, hence "lock-light" — with timestamps
//! in microseconds since a global monotonic epoch.
//!
//! [`render`] serializes a snapshot as `adds.trace/v1`: a Chrome
//! [`trace_event`] object (`{"schema":…,"traceEvents":[…]}`) that loads
//! directly in `chrome://tracing` and Perfetto, which both ignore the
//! extra top-level keys.
//!
//! [`trace_event`]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Schema tag stamped on every trace document.
pub const TRACE_SCHEMA: &str = "adds.trace/v1";

/// Per-thread ring capacity: old events are overwritten (and counted as
/// dropped) once a thread records more than this many.
pub const RING_CAPACITY: usize = 65_536;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU32 = AtomicU32::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static SINKS: Mutex<Vec<Arc<ThreadSink>>> = Mutex::new(Vec::new());

/// One recorded complete event (Chrome `"ph":"X"`).
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Span name, e.g. `query.analyzed`.
    pub name: &'static str,
    /// Category, e.g. `query` / `serve` / `machine`.
    pub cat: &'static str,
    /// Microseconds since the trace epoch.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Recording thread's dense trace id.
    pub tid: u32,
    /// Key/value annotations (digest prefixes, hit/miss, status…).
    pub args: Vec<(&'static str, String)>,
}

struct ThreadSink {
    tid: u32,
    ring: Mutex<Ring>,
}

#[derive(Default)]
struct Ring {
    buf: Vec<Event>,
    /// Next overwrite position once `buf` is full.
    next: usize,
    dropped: u64,
}

thread_local! {
    static SINK: std::cell::OnceCell<Arc<ThreadSink>> = const { std::cell::OnceCell::new() };
}

/// Turn the recorder on (idempotent; pins the epoch on first call).
pub fn enable() {
    let _ = EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn the recorder off. Buffered events stay until [`clear`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Is the recorder on? One relaxed load — the whole disabled-path cost.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drop all buffered events (the thread rings stay registered).
pub fn clear() {
    let sinks = SINKS.lock().unwrap_or_else(|e| e.into_inner());
    for s in sinks.iter() {
        let mut ring = s.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.buf.clear();
        ring.next = 0;
        ring.dropped = 0;
    }
}

/// Microseconds since the trace epoch (0 before [`enable`]).
pub fn now_us() -> u64 {
    match EPOCH.get() {
        Some(epoch) => epoch.elapsed().as_micros() as u64,
        None => 0,
    }
}

fn with_sink(f: impl FnOnce(&ThreadSink)) {
    SINK.with(|cell| {
        let sink = cell.get_or_init(|| {
            let sink = Arc::new(ThreadSink {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                ring: Mutex::new(Ring::default()),
            });
            SINKS
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&sink));
            sink
        });
        f(sink);
    });
}

fn push_event(mut event: Event) {
    with_sink(|sink| {
        event.tid = sink.tid;
        let mut ring = sink.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.buf.len() < RING_CAPACITY {
            ring.buf.push(event);
        } else {
            let at = ring.next;
            ring.buf[at] = event;
            ring.next = (at + 1) % RING_CAPACITY;
            ring.dropped += 1;
        }
    });
}

/// A live span; records one complete event over its lifetime when
/// dropped. Obtain via [`span`].
pub struct Span {
    name: &'static str,
    cat: &'static str,
    start: Instant,
    start_us: u64,
    args: Vec<(&'static str, String)>,
}

impl Span {
    /// Attach a key/value annotation (e.g. `hit/miss`, digest prefix).
    pub fn arg(&mut self, key: &'static str, value: impl Into<String>) {
        self.args.push((key, value.into()));
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        push_event(Event {
            name: self.name,
            cat: self.cat,
            ts_us: self.start_us,
            dur_us: self.start.elapsed().as_micros() as u64,
            tid: 0,
            args: std::mem::take(&mut self.args),
        });
    }
}

/// Open a span, or `None` (for ~free) when tracing is disabled. The span
/// records itself when dropped; annotate along the way with
/// [`Span::arg`].
#[inline]
pub fn span(name: &'static str, cat: &'static str) -> Option<Span> {
    if !enabled() {
        return None;
    }
    Some(Span {
        name,
        cat,
        start: Instant::now(),
        start_us: now_us(),
        args: Vec::new(),
    })
}

/// Record a complete event over an explicit `[start, end]` interval —
/// for phases whose start precedes the decision to record them (e.g. the
/// server's parse-body phase). No-op when disabled.
pub fn complete_between(
    name: &'static str,
    cat: &'static str,
    start: Instant,
    end: Instant,
    args: Vec<(&'static str, String)>,
) {
    if !enabled() {
        return;
    }
    let epoch = match EPOCH.get() {
        Some(e) => *e,
        None => return,
    };
    let ts_us = start.saturating_duration_since(epoch).as_micros() as u64;
    let dur_us = end.saturating_duration_since(start).as_micros() as u64;
    push_event(Event {
        name,
        cat,
        ts_us,
        dur_us,
        tid: 0,
        args,
    });
}

/// Snapshot every thread's buffered events, sorted by
/// `(ts, tid, name)` for deterministic rendering. Does not clear.
pub fn snapshot() -> Vec<Event> {
    let sinks = SINKS.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = Vec::new();
    for s in sinks.iter() {
        let ring = s.ring.lock().unwrap_or_else(|e| e.into_inner());
        out.extend(ring.buf.iter().cloned());
    }
    out.sort_by(|a, b| {
        (a.ts_us, a.tid, a.name)
            .partial_cmp(&(b.ts_us, b.tid, b.name))
            .expect("total order")
    });
    out
}

/// Total events overwritten by ring wrap-around across all threads.
pub fn dropped() -> u64 {
    let sinks = SINKS.lock().unwrap_or_else(|e| e.into_inner());
    sinks
        .iter()
        .map(|s| s.ring.lock().unwrap_or_else(|e| e.into_inner()).dropped)
        .sum()
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Render events as an `adds.trace/v1` Chrome `trace_event` document.
/// Byte-stable given the same events: fixed key order, no timestamps
/// beyond the events themselves.
pub fn render(events: &[Event]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"schema\":\"");
    out.push_str(TRACE_SCHEMA);
    out.push_str("\",\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_into(&mut out, e.name);
        out.push_str("\",\"cat\":\"");
        escape_into(&mut out, e.cat);
        out.push_str("\",\"ph\":\"X\",\"pid\":1,\"tid\":");
        out.push_str(&e.tid.to_string());
        out.push_str(",\"ts\":");
        out.push_str(&e.ts_us.to_string());
        out.push_str(",\"dur\":");
        out.push_str(&e.dur_us.to_string());
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_into(&mut out, k);
                out.push_str("\":\"");
                escape_into(&mut out, v);
                out.push('"');
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Render the current buffer ([`snapshot`] + [`render`]).
pub fn render_current() -> String {
    render(&snapshot())
}

/// Write the current buffer to `path` as `adds.trace/v1` JSON.
pub fn dump_to_file(path: &str) -> std::io::Result<()> {
    std::fs::write(path, render_current())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The enable gate is process-global; tests that flip it hold this
    /// lock so parallel test threads don't see each other's state.
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_span_is_none() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        disable();
        assert!(span("obs.test.noop", "test").is_none());
        enable();
        assert!(span("obs.test.gate", "test").is_some());
        disable();
    }

    #[test]
    fn spans_record_events_with_args() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        enable();
        {
            let mut s = span("obs.test.spans_record", "test").expect("enabled");
            s.arg("outcome", "miss");
        }
        disable();
        let events = snapshot();
        let mine: Vec<_> = events
            .iter()
            .filter(|e| e.name == "obs.test.spans_record")
            .collect();
        assert!(!mine.is_empty());
        assert_eq!(mine[0].cat, "test");
        assert_eq!(mine[0].args, vec![("outcome", "miss".to_string())]);
    }

    #[test]
    fn render_is_golden_for_fixed_events() {
        let events = vec![
            Event {
                name: "query.analyzed",
                cat: "query",
                ts_us: 10,
                dur_us: 250,
                tid: 1,
                args: vec![("digest", "9c0b44aa".into()), ("outcome", "miss".into())],
            },
            Event {
                name: "serve.request",
                cat: "serve",
                ts_us: 300,
                dur_us: 42,
                tid: 2,
                args: vec![],
            },
        ];
        assert_eq!(
            render(&events),
            "{\"schema\":\"adds.trace/v1\",\"displayTimeUnit\":\"ms\",\"traceEvents\":[\
             {\"name\":\"query.analyzed\",\"cat\":\"query\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\
             \"ts\":10,\"dur\":250,\"args\":{\"digest\":\"9c0b44aa\",\"outcome\":\"miss\"}},\
             {\"name\":\"serve.request\",\"cat\":\"serve\",\"ph\":\"X\",\"pid\":1,\"tid\":2,\
             \"ts\":300,\"dur\":42}]}"
        );
    }

    #[test]
    fn render_escapes_strings() {
        let events = vec![Event {
            name: "x",
            cat: "c",
            ts_us: 0,
            dur_us: 0,
            tid: 1,
            args: vec![("k", "a\"b\\c\nd".into())],
        }];
        let doc = render(&events);
        assert!(doc.contains("a\\\"b\\\\c\\nd"));
    }
}
