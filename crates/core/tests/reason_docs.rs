//! Pins `docs/reasons.md` to `adds_core::depend::Reason`: every variant's
//! stable code must be documented, and the documentation must not list
//! codes that no longer exist. Together with the exhaustive-match guard in
//! `Reason::samples()`, a new variant cannot ship without a docs row.

use adds_core::depend::Reason;
use std::collections::BTreeSet;

fn docs() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/reasons.md");
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

#[test]
fn all_codes_matches_the_variants_exactly() {
    let sampled: Vec<&'static str> = Reason::samples().iter().map(|r| r.code()).collect();
    assert_eq!(
        sampled,
        Reason::ALL_CODES,
        "ALL_CODES must list every variant's code in declaration order"
    );
    let unique: BTreeSet<_> = sampled.iter().collect();
    assert_eq!(unique.len(), sampled.len(), "codes are distinct");
}

#[test]
fn every_code_has_a_documented_table_row() {
    let docs = docs();
    for code in Reason::ALL_CODES {
        assert!(
            docs.contains(&format!("| `{code}` |")),
            "docs/reasons.md is missing a table row for `{code}`"
        );
    }
}

#[test]
fn docs_do_not_list_stale_codes() {
    // Every `| `snake_case` |` row leader in the docs must be a live code.
    let live: BTreeSet<&str> = Reason::ALL_CODES.iter().copied().collect();
    for line in docs().lines() {
        let Some(rest) = line.strip_prefix("| `") else {
            continue;
        };
        let Some(code) = rest.split('`').next() else {
            continue;
        };
        assert!(
            live.contains(code),
            "docs/reasons.md documents `{code}`, which is not a Reason code"
        );
    }
}

#[test]
fn every_sample_renders_its_documented_message_shape() {
    // The messages in the table are templates of the Display impl; make
    // sure each variant still renders non-empty, distinct text.
    let rendered: Vec<String> = Reason::samples().iter().map(|r| r.to_string()).collect();
    for (r, text) in Reason::samples().iter().zip(&rendered) {
        assert!(!text.is_empty(), "{} renders empty", r.code());
    }
    let unique: BTreeSet<_> = rendered.iter().collect();
    assert_eq!(unique.len(), rendered.len(), "messages are distinguishable");
}
