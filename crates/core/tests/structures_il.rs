//! Analysis integration tests over the paper's *other* declared structures
//! (§3.1.3): the orthogonal list and the 2-D range tree as IL programs.
//! These exercise the multi-dimensional reasoning — dependent vs independent
//! dimensions, opposite-direction pairs, grouped fields.

use adds_core::{analyze_function, check_function, compile, Summaries};
use adds_lang::types::check_source;

const ORTH_PROGRAM: &str = "
type OrthList [X] [Y]
{
    real data;
    OrthList *across is uniquely forward along X;
    OrthList *back is backward along X;
    OrthList *down is uniquely forward along Y;
    OrthList *up is backward along Y;
};

procedure scale_row(rowhead: OrthList*, c: real)
{
    var p: OrthList*;
    p = rowhead;
    while p <> NULL
    {
        p->data = p->data * c;
        p = p->across;
    }
}

procedure scale_col(colhead: OrthList*, c: real)
{
    var p: OrthList*;
    p = colhead;
    while p <> NULL
    {
        p->data = p->data * c;
        p = p->down;
    }
}

procedure zigzag(start: OrthList*)
{
    var p: OrthList*;
    var q: OrthList*;
    p = start->across;
    q = start->down;
    p->data = 1.0;
    q->data = 2.0;
}
";

#[test]
fn row_walk_is_parallelizable() {
    let c = compile(ORTH_PROGRAM).unwrap();
    let an = c.analysis("scale_row").unwrap();
    let checks = check_function(&c.tp, &c.summaries, an, "scale_row");
    assert!(checks[0].parallelizable, "{:?}", checks[0].reasons);
    // The loop walks `across`, uniquely forward along X.
    let pat = checks[0].pattern.as_ref().unwrap();
    assert_eq!(pat.field, "across");
}

#[test]
fn col_walk_is_parallelizable() {
    let c = compile(ORTH_PROGRAM).unwrap();
    let an = c.analysis("scale_col").unwrap();
    let checks = check_function(&c.tp, &c.summaries, an, "scale_col");
    assert!(checks[0].parallelizable, "{:?}", checks[0].reasons);
}

#[test]
fn row_fixpoint_matrix_is_clean() {
    let c = compile(ORTH_PROGRAM).unwrap();
    let an = c.analysis("scale_row").unwrap();
    let pm = &an.loops[0].bottom.pm;
    assert_eq!(pm.get("rowhead", "p").display(), "across+");
    assert_eq!(pm.get("p'", "p").display(), "across");
    assert!(!pm.get("p'", "p").may_alias());
}

#[test]
fn dependent_dimensions_stay_conservative() {
    // X and Y are dependent (no `where` clause): a node reached via
    // `across` MAY be the node reached via `down` — the paper's Figure 3
    // observation ("traversing along X from r4 and along Y from c3 may
    // lead to the same node").
    let c = compile(ORTH_PROGRAM).unwrap();
    let an = c.analysis("zigzag").unwrap();
    let (_, st) = an
        .after
        .iter()
        .rev()
        .find(|(_, st)| st.pm.has_var("p") && st.pm.has_var("q"))
        .unwrap();
    assert!(
        st.pm.get("p", "q").may_alias(),
        "dependent dims must stay =?:\n{}",
        st.pm
    );
}

const RANGE_TREE_PROGRAM: &str = "
type RT [down] [sub] [leaves] where sub||down, sub||leaves
{
    int data;
    RT *left, *right is uniquely forward along down;
    RT *subtree is uniquely forward along sub;
    RT *next is uniquely forward along leaves;
    RT *prev is backward along leaves;
};

procedure probe(t: RT*)
{
    var a: RT*;
    var s: RT*;
    var l: RT*;
    a = t->left;
    s = t->subtree;
    l = t->next;
    a->data = 1;
    s->data = 2;
    l->data = 3;
}

procedure sweep_leaves(first: RT*)
{
    var p: RT*;
    p = first;
    while p <> NULL
    {
        p->data = p->data + 1;
        p = p->next;
    }
}
";

#[test]
fn independent_sub_dimension_proves_disjointness() {
    let c = compile(RANGE_TREE_PROGRAM).unwrap();
    let an = c.analysis("probe").unwrap();
    let (_, st) = an
        .after
        .iter()
        .rev()
        .find(|(_, st)| st.pm.has_var("a") && st.pm.has_var("s") && st.pm.has_var("l"))
        .unwrap();
    // sub || down: subtree node cannot be the left child.
    assert!(
        !st.pm.get("a", "s").may_alias(),
        "sub || down must prove disjoint:\n{}",
        st.pm
    );
    // sub || leaves: subtree node cannot be the next leaf.
    assert!(
        !st.pm.get("s", "l").may_alias(),
        "sub || leaves must prove disjoint:\n{}",
        st.pm
    );
    // down vs leaves are dependent: left child MAY be the next leaf.
    assert!(
        st.pm.get("a", "l").may_alias(),
        "down vs leaves are dependent:\n{}",
        st.pm
    );
}

#[test]
fn leaf_sweep_is_parallelizable() {
    let c = compile(RANGE_TREE_PROGRAM).unwrap();
    let an = c.analysis("sweep_leaves").unwrap();
    let checks = check_function(&c.tp, &c.summaries, an, "sweep_leaves");
    assert!(checks[0].parallelizable, "{:?}", checks[0].reasons);
}

#[test]
fn two_way_walk_forward_not_confused_by_prev() {
    // next+prev on one dimension is NOT a cycle: the forward sweep is
    // still provably alias-free even though a backward field exists.
    let src = "
        type TW [X] {
            int v;
            TW *next is uniquely forward along X;
            TW *prev is backward along X;
        };
        procedure sweep(head: TW*) {
            var p: TW*;
            p = head;
            while p <> NULL {
                p->v = p->v * 2;
                p = p->next;
            }
        }";
    let tp = check_source(src).unwrap();
    let sums = Summaries::compute(&tp);
    let an = analyze_function(&tp, &sums, "sweep").unwrap();
    let pm = &an.loops[0].bottom.pm;
    assert!(!pm.get("p'", "p").may_alias(), "\n{pm}");
    let checks = check_function(&tp, &sums, &an, "sweep");
    assert!(checks[0].parallelizable, "{:?}", checks[0].reasons);
}

#[test]
fn mixed_direction_walk_is_not_proven_distinct() {
    // Walking next then prev can return to the start — entries must stay
    // conservative.
    let src = "
        type TW [X] {
            int v;
            TW *next is uniquely forward along X;
            TW *prev is backward along X;
        };
        procedure wander(head: TW*) {
            var p: TW*;
            p = head->next;
            p = p->prev;
            p->v = 0;
        }";
    let tp = check_source(src).unwrap();
    let sums = Summaries::compute(&tp);
    let an = analyze_function(&tp, &sums, "wander").unwrap();
    let (_, st) = an
        .after
        .iter()
        .rev()
        .find(|(_, st)| st.pm.has_var("p"))
        .unwrap();
    // head->next->prev IS head: must-alias or at least may-alias.
    assert!(
        st.pm.get("head", "p").may_alias(),
        "next∘prev may return to head:\n{}",
        st.pm
    );
}

// ---------------------------------------------------------------- quadtree

/// The §1 quadtree (2-D Figure 5): a leaf sweep along `next` with the
/// `down` dimension read-only, exactly the BHL1 pattern one dimension down.
const QUADTREE_PROGRAM: &str = "
type Quadtree [down][leaves]
{
    real x, y, val;
    bool is_leaf;
    Quadtree *children[4] is uniquely forward along down;
    Quadtree *next is uniquely forward along leaves;
};

procedure sweep_leaves(first: Quadtree*, c: real)
{
    var p: Quadtree*;
    p = first;
    while p <> NULL
    {
        p->val = p->val * c;
        p = p->next;
    }
}

procedure descend(root: Quadtree*)
{
    var p: Quadtree*;
    p = root;
    while p <> NULL
    {
        p->val = 0.0;
        p = p->children[0];
    }
}
";

#[test]
fn quadtree_leaf_sweep_is_parallelizable() {
    let c = compile(QUADTREE_PROGRAM).unwrap();
    let an = c.analysis("sweep_leaves").unwrap();
    let checks = check_function(&c.tp, &c.summaries, an, "sweep_leaves");
    assert!(checks[0].parallelizable, "{:?}", checks[0].reasons);
    assert_eq!(checks[0].pattern.as_ref().unwrap().field, "next");
}

#[test]
fn quadtree_spine_descent_never_revisits() {
    // Walking children[0] is uniquely forward along `down`: each step is a
    // new node, so the loop-carried alias must be refuted at fixpoint.
    let c = compile(QUADTREE_PROGRAM).unwrap();
    let an = c.analysis("descend").unwrap();
    let lp = an.loops.first().expect("descend has a loop");
    assert!(
        !lp.bottom.pm.get("p'", "p").may_alias(),
        "{}",
        lp.bottom.pm.render()
    );
}
