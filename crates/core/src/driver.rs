//! The end-to-end source-to-source pipeline:
//! parse → typecheck → summarize → analyze → legality → transform.

use crate::analysis::{analyze_function, FnAnalysis};
use crate::summary::Summaries;
use crate::transform::stripmine::{strip_mine_program, StripMined};
use adds_lang::ast::Program;
use adds_lang::source::Diagnostics;
use adds_lang::types::{check_source, TypedProgram};
use std::collections::BTreeMap;

/// A fully compiled (parsed, typed, summarized, analyzed) program.
pub struct Compiled {
    /// The typed program.
    pub tp: TypedProgram,
    /// Interprocedural effect summaries.
    pub summaries: Summaries,
    /// Path-matrix analysis results per function.
    pub analyses: BTreeMap<String, FnAnalysis>,
}

impl Compiled {
    /// Analysis results for `func`, if it was analyzed.
    pub fn analysis(&self, func: &str) -> Option<&FnAnalysis> {
        self.analyses.get(func)
    }
}

/// Compile IL source through analysis.
pub fn compile(src: &str) -> Result<Compiled, Diagnostics> {
    Ok(compile_typed(check_source(src)?))
}

/// Run the analysis half of [`compile`] over an already-typed program —
/// the entry point for demand-driven callers that obtained (and cached)
/// the `TypedProgram` separately. Total: summaries and per-function
/// analyses cannot fail on a type-checked program.
pub fn compile_typed(tp: TypedProgram) -> Compiled {
    let summaries = Summaries::compute(&tp);
    let mut analyses = BTreeMap::new();
    for f in &tp.program.funcs {
        if let Some(an) = analyze_function(&tp, &summaries, &f.name) {
            analyses.insert(f.name.clone(), an);
        }
    }
    Compiled {
        tp,
        summaries,
        analyses,
    }
}

/// Compile and strip-mine every parallelizable loop. Returns the transformed
/// program (source-to-source) and the per-function transformation reports.
pub fn parallelize_program(src: &str) -> Result<(Program, Vec<StripMined>), Diagnostics> {
    let c = compile(src)?;
    Ok(strip_mine_program(&c.tp, &c.summaries, &c.analyses))
}

/// Compile, strip-mine, and pretty-print the transformed source.
pub fn parallelize_to_source(src: &str) -> Result<String, Diagnostics> {
    let (prog, _) = parallelize_program(src)?;
    Ok(adds_lang::pretty::program(&prog))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adds_lang::programs;

    #[test]
    fn compile_analyzes_every_function() {
        let c = compile(programs::BARNES_HUT).unwrap();
        for f in &c.tp.program.funcs {
            assert!(
                c.analysis(&f.name).is_some(),
                "missing analysis for {}",
                f.name
            );
        }
    }

    #[test]
    fn parallelize_barnes_hut_end_to_end() {
        let (prog, reports) = parallelize_program(programs::BARNES_HUT).unwrap();
        let parallelized: Vec<&str> = reports
            .iter()
            .filter(|r| !r.parallelized.is_empty())
            .map(|r| r.func.name.as_str())
            .collect();
        assert!(parallelized.contains(&"bhl1"));
        assert!(parallelized.contains(&"bhl2"));
        // Helpers exist in the output program.
        assert!(prog.funcs.iter().any(|f| f.name.starts_with("_bhl1")));
        assert!(prog.funcs.iter().any(|f| f.name.starts_with("_bhl2")));
        // build_tree's loop stays sequential.
        let bt = prog.func("build_tree").unwrap();
        let printed = adds_lang::pretty::function(bt);
        assert!(!printed.contains("parfor"), "{printed}");
    }

    #[test]
    fn parallelize_to_source_reparses() {
        let out = parallelize_to_source(programs::BARNES_HUT).unwrap();
        let reparsed = adds_lang::parse_program(&out).unwrap();
        adds_lang::check(reparsed).unwrap();
    }

    #[test]
    fn errors_propagate() {
        assert!(compile("type T {").is_err());
        assert!(parallelize_program("procedure f(p: Missing*) { }").is_err());
    }
}
