//! The path matrix: one [`Entry`] per ordered pair of live pointer
//! variables, as in §3.3 of the paper.

use crate::paths::{Alias, Desc, Entry};
use std::collections::BTreeMap;
use std::fmt;

/// A variable name in the matrix. Loop analysis introduces primed copies
/// (`p'`); statement normalization introduces short-lived temporaries.
pub type Var = String;

/// The primed twin of `v` (the previous iteration's value, §3.3.2).
pub fn primed(v: &str) -> Var {
    format!("{v}'")
}

#[derive(Clone, Debug, PartialEq, Eq, Default)]
/// A path matrix: one [`Entry`] per ordered pair of live pointer
/// variables (§3.3). `PM(r, s)` records the explicit path or alias from
/// `r`'s node to `s`'s node.
pub struct PathMatrix {
    vars: Vec<Var>,
    /// Sparse storage: missing ⇒ `Entry::none()` off-diagonal, `must` on the
    /// diagonal.
    entries: BTreeMap<(Var, Var), Entry>,
}

impl PathMatrix {
    /// The empty matrix (no variables).
    pub fn new() -> PathMatrix {
        PathMatrix::default()
    }

    /// Tracked variables, in insertion order.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Is `v` tracked?
    pub fn has_var(&self, v: &str) -> bool {
        self.vars.iter().any(|x| x == v)
    }

    /// Add a variable with blank (no-alias) relationships to all others.
    pub fn add_var(&mut self, v: impl Into<Var>) {
        let v = v.into();
        if !self.has_var(&v) {
            self.vars.push(v);
        }
    }

    /// Drop `v` and all its entries (a dead variable).
    pub fn remove_var(&mut self, v: &str) {
        self.vars.retain(|x| x != v);
        self.entries.retain(|(r, s), _| r != v && s != v);
    }

    /// The entry `PM(r, s)`; conservative `=?` for untracked variables.
    pub fn get(&self, r: &str, s: &str) -> Entry {
        if r == s {
            return Entry::must();
        }
        self.entries
            .get(&(r.to_string(), s.to_string()))
            .cloned()
            .unwrap_or_else(Entry::none)
    }

    /// Overwrite `PM(r, s)`.
    pub fn set(&mut self, r: &str, s: &str, e: Entry) {
        if r == s {
            return;
        }
        debug_assert!(self.has_var(r), "unknown row var {r}");
        debug_assert!(self.has_var(s), "unknown col var {s}");
        if e.is_none() {
            self.entries.remove(&(r.to_string(), s.to_string()));
        } else {
            self.entries.insert((r.to_string(), s.to_string()), e);
        }
    }

    /// Set the alias verdict symmetrically, preserving paths.
    pub fn set_alias(&mut self, r: &str, s: &str, a: Alias) {
        let mut e = self.get(r, s);
        e.alias = a;
        self.set(r, s, e);
        let mut e = self.get(s, r);
        e.alias = a;
        self.set(s, r, e);
    }

    /// Clear all relationships of `v` (e.g. `v = NULL`).
    pub fn clear_var(&mut self, v: &str) {
        self.entries.retain(|(r, s), _| r != v && s != v);
    }

    /// `dst` becomes an exact copy of `src`'s node: copies every
    /// relationship and marks them must-aliases (the `p = q` rule).
    pub fn copy_var(&mut self, dst: &str, src: &str) {
        if dst == src {
            return;
        }
        self.add_var(dst);
        self.clear_var(dst);
        for other in self.vars.clone() {
            if other == dst || other == src {
                continue;
            }
            let fwd = self.get(src, &other);
            let bwd = self.get(&other, src);
            self.set(dst, &other, fwd);
            self.set(&other, dst, bwd);
        }
        self.set(dst, src, Entry::must());
        self.set(src, dst, Entry::must());
    }

    /// Rename `old` to `new` (used for priming at loop back-edges). Any
    /// existing `new` relationships are dropped first.
    pub fn rename_var(&mut self, old: &str, new: &str) {
        if old == new || !self.has_var(old) {
            return;
        }
        self.add_var(new);
        self.clear_var(new);
        let old_entries: Vec<((Var, Var), Entry)> = self
            .entries
            .iter()
            .filter(|((r, s), _)| r == old || s == old)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        for ((r, s), e) in old_entries {
            self.entries.remove(&(r.clone(), s.clone()));
            let nr = if r == old { new.to_string() } else { r };
            let ns = if s == old { new.to_string() } else { s };
            if nr != ns {
                self.entries.insert((nr, ns), e);
            }
        }
        self.vars.retain(|x| x != old);
    }

    /// Pairwise join over the union of variable sets. A variable absent on
    /// one side is ⊥ there (unreachable on that path), so the other side's
    /// relationships pass through unchanged.
    pub fn join(&self, other: &PathMatrix) -> PathMatrix {
        let mut vars = self.vars.clone();
        for v in &other.vars {
            if !vars.contains(v) {
                vars.push(v.clone());
            }
        }
        let mut out = PathMatrix {
            vars: vars.clone(),
            entries: BTreeMap::new(),
        };
        for r in &vars {
            for s in &vars {
                if r == s {
                    continue;
                }
                let a_has = self.has_var(r) && self.has_var(s);
                let b_has = other.has_var(r) && other.has_var(s);
                let e = match (a_has, b_has) {
                    (true, true) => self.get(r, s).join(&other.get(r, s)),
                    (true, false) => self.get(r, s),
                    (false, true) => other.get(r, s),
                    (false, false) => Entry::none(),
                };
                out.set(r, s, e);
            }
        }
        out
    }

    /// All variables `y` such that a recorded single `field` link leads from
    /// `y`'s node to `x`'s node (`y -f-> x`). These witness existing
    /// incoming edges during abstraction validation.
    pub fn incoming_via(&self, field: &str, x: &str) -> Vec<Var> {
        self.vars
            .iter()
            .filter(|y| y.as_str() != x && self.get(y, x).has_single_link(field))
            .cloned()
            .collect()
    }

    /// Record a definite single link `r -f-> s`, with the alias verdict for
    /// the endpoints supplied by the caller.
    pub fn add_link(&mut self, r: &str, s: &str, field: &str, alias: Alias) {
        let mut e = self.get(r, s);
        e.add_path(Desc::one(field));
        e.alias = alias;
        self.set(r, s, e.clone());
        let mut back = self.get(s, r);
        back.alias = alias;
        self.set(s, r, back);
    }

    /// Render the matrix in the paper's tabular format.
    pub fn render(&self) -> String {
        let mut order = self.vars.clone();
        // Stable, readable order: unprimed before primed twin.
        order.sort_by_key(|v| (v.ends_with('\''), self.vars.iter().position(|x| x == v)));
        let width = order
            .iter()
            .map(|v| v.len())
            .chain(std::iter::once(4))
            .max()
            .unwrap()
            .max(
                order
                    .iter()
                    .flat_map(|r| order.iter().map(move |s| self.get(r, s).display().len()))
                    .max()
                    .unwrap_or(0),
            )
            + 1;
        let mut out = String::new();
        out.push_str(&format!("{:width$} ", ""));
        for v in &order {
            out.push_str(&format!("| {v:width$}"));
        }
        out.push('\n');
        out.push_str(&"-".repeat((width + 3) * (order.len() + 1)));
        out.push('\n');
        for r in &order {
            out.push_str(&format!("{r:width$} "));
            for s in &order {
                out.push_str(&format!("| {:width$}", self.get(r, s).display()));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for PathMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::{Alias, Desc, Entry};

    fn pm(vars: &[&str]) -> PathMatrix {
        let mut m = PathMatrix::new();
        for v in vars {
            m.add_var(*v);
        }
        m
    }

    #[test]
    fn diagonal_is_must() {
        let m = pm(&["p", "q"]);
        assert!(m.get("p", "p").must_alias());
        assert!(m.get("p", "q").is_none());
    }

    #[test]
    fn copy_var_duplicates_relationships() {
        let mut m = pm(&["head", "p", "q"]);
        m.set("head", "p", Entry::with_path(Alias::No, Desc::one("next")));
        m.copy_var("q", "p");
        assert!(m.get("q", "p").must_alias());
        assert!(m.get("p", "q").must_alias());
        assert_eq!(m.get("head", "q").paths, m.get("head", "p").paths);
    }

    #[test]
    fn rename_var_becomes_primed() {
        let mut m = pm(&["head", "p"]);
        m.set("head", "p", Entry::with_path(Alias::No, Desc::one("next")));
        m.rename_var("p", &primed("p"));
        assert!(!m.has_var("p"));
        assert!(m.has_var("p'"));
        assert_eq!(
            m.get("head", "p'").paths,
            std::collections::BTreeSet::from([Desc::one("next")])
        );
    }

    #[test]
    fn clear_var_removes_all_relationships() {
        let mut m = pm(&["p", "q"]);
        m.set("p", "q", Entry::maybe());
        m.set("q", "p", Entry::maybe());
        m.clear_var("p");
        assert!(m.get("p", "q").is_none());
        assert!(m.get("q", "p").is_none());
    }

    #[test]
    fn join_on_missing_var_passes_through() {
        let mut a = pm(&["p", "q"]);
        a.set("p", "q", Entry::with_path(Alias::No, Desc::one("next")));
        let b = pm(&["p"]); // q absent: ⊥ on this side
        let j = a.join(&b);
        assert_eq!(j.get("p", "q"), a.get("p", "q"));
    }

    #[test]
    fn join_merges_entries() {
        let mut a = pm(&["p", "q"]);
        a.set("p", "q", Entry::with_path(Alias::No, Desc::one("next")));
        let mut b = pm(&["p", "q"]);
        b.set("p", "q", Entry::with_path(Alias::No, Desc::plus("next")));
        let j = a.join(&b);
        assert_eq!(
            j.get("p", "q").paths,
            std::collections::BTreeSet::from([Desc::plus("next")])
        );
    }

    #[test]
    fn incoming_via_detects_witnesses() {
        let mut m = pm(&["p1", "p2", "t"]);
        m.add_link("p2", "t", "left", Alias::No);
        assert_eq!(m.incoming_via("left", "t"), vec!["p2".to_string()]);
        assert!(m.incoming_via("right", "t").is_empty());
    }

    #[test]
    fn render_contains_paper_entries() {
        let mut m = pm(&["head", "p"]);
        m.set("head", "p", Entry::with_path(Alias::No, Desc::plus("next")));
        let s = m.render();
        assert!(s.contains("next+"), "{s}");
        assert!(s.contains("head"), "{s}");
    }

    #[test]
    fn set_alias_is_symmetric() {
        let mut m = pm(&["a", "b"]);
        m.set_alias("a", "b", Alias::Maybe);
        assert_eq!(m.get("a", "b").alias, Alias::Maybe);
        assert_eq!(m.get("b", "a").alias, Alias::Maybe);
    }
}
