//! # adds-core — general path matrix analysis and parallelizing transforms
//!
//! The primary contribution of the ADDS paper: given IL programs whose
//! record types carry ADDS shape declarations (`adds-lang`), this crate
//!
//! 1. computes **interprocedural effect summaries** ([`summary`]),
//! 2. runs **general path matrix analysis** ([`analysis`]) — per-program-point
//!    path matrices ([`matrix`], [`paths`]) with **abstraction validation**
//!    ([`validate`]),
//! 3. answers **alias queries** and **loop dependence** questions
//!    ([`alias`], [`depend`]), and
//! 4. applies the **parallelizing transformations** of §4.3.3 and the
//!    companion papers ([`transform`]): strip-mining, loop unrolling,
//!    software pipelining.
//!
//! The [`driver`] module wires these into a source-to-source pipeline.

#![warn(missing_docs)]

pub mod alias;
pub mod analysis;
pub mod depend;
pub mod driver;
pub mod effects;
pub mod matrix;
pub mod paths;
pub mod summary;
pub mod transform;
pub mod validate;

pub use analysis::{analyze_function, FnAnalysis, LoopAnalysis, State};
pub use depend::{check_function, check_loop, ChasePattern, LoopCheck, Reason};
pub use driver::{compile, compile_typed, parallelize_program, parallelize_to_source, Compiled};
pub use effects::{Access, EffectSummary, Via};
pub use matrix::PathMatrix;
pub use paths::{Alias, Desc, Entry};
pub use summary::{Summaries, Summary};
pub use validate::{ValidationEvent, Violation, ViolationKind};
