//! Loop unrolling for pointer-chasing loops \[HG92\].
//!
//! ```text
//! while p <> NULL {            while p <> NULL {
//!     work(p);                     work(p);
//!     p = p->next;        ⇒        p = p->next;
//! }                                if p <> NULL {
//!                                      work(p);
//!                                      p = p->next;
//!                                  }
//!                              }
//! ```
//!
//! The transformation is semantics-preserving for any factor ≥ 1: each copy
//! is guarded. Its profit comes from fewer loop-condition evaluations and
//! branches per processed node; with *speculative traversability* the guard
//! on the pointer advance itself can be omitted (only the work is guarded),
//! which is how ADDS enables the more aggressive variant.

use crate::depend::ChasePattern;
use adds_lang::ast::*;
use adds_lang::source::Span;

/// Unroll the chase loop identified by `pattern` inside `func` by `factor`.
/// Returns the rewritten function, or `None` if the loop is not found.
pub fn unroll_loop(func: &FunDecl, pattern: &ChasePattern, factor: usize) -> Option<FunDecl> {
    assert!(factor >= 1, "unroll factor must be at least 1");
    let mut f = func.clone();
    let done = rewrite(&mut f.body, pattern, factor);
    done.then_some(f)
}

#[allow(clippy::collapsible_match)]
fn rewrite(b: &mut Block, pattern: &ChasePattern, factor: usize) -> bool {
    for s in &mut b.stmts {
        match s {
            Stmt::While { cond, body, .. } => {
                if is_chase_loop(cond, body, pattern) {
                    *body = unrolled_body(body, pattern, factor);
                    return true;
                }
                if rewrite(body, pattern, factor) {
                    return true;
                }
            }
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                if rewrite(then_blk, pattern, factor) {
                    return true;
                }
                if let Some(e) = else_blk {
                    if rewrite(e, pattern, factor) {
                        return true;
                    }
                }
            }
            Stmt::For { body, .. } => {
                if rewrite(body, pattern, factor) {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

fn is_chase_loop(cond: &Expr, body: &Block, pattern: &ChasePattern) -> bool {
    let cond_ok = matches!(
        cond,
        Expr::Binary { op: BinOp::Ne, lhs, rhs, .. }
            if matches!((lhs.as_ref(), rhs.as_ref()),
                (Expr::Var(v, _), Expr::Null(_)) if *v == pattern.var)
    );
    cond_ok && body.stmts.len() > pattern.advance_idx
}

fn unrolled_body(body: &Block, pattern: &ChasePattern, factor: usize) -> Block {
    let one_copy = body.stmts.clone();
    let mut stmts = one_copy.clone();
    for _ in 1..factor {
        // if p <> NULL { <copy> }
        stmts.push(Stmt::If {
            cond: Expr::Binary {
                op: BinOp::Ne,
                lhs: Box::new(Expr::Var(pattern.var.clone(), Span::default())),
                rhs: Box::new(Expr::Null(Span::default())),
                span: Span::default(),
            },
            then_blk: Block {
                stmts: one_copy.clone(),
                span: Span::default(),
            },
            else_blk: None,
            span: Span::default(),
        });
    }
    Block {
        stmts,
        span: body.span,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_function;
    use crate::depend::check_function;
    use crate::summary::Summaries;
    use adds_lang::programs;
    use adds_lang::types::{check, check_source};

    fn pattern_of(src: &str, func: &str) -> (adds_lang::types::TypedProgram, ChasePattern) {
        let tp = check_source(src).unwrap();
        let sums = Summaries::compute(&tp);
        let an = analyze_function(&tp, &sums, func).unwrap();
        let checks = check_function(&tp, &sums, &an, func);
        let pat = checks[0].pattern.clone().unwrap();
        (tp, pat)
    }

    #[test]
    fn unroll_by_two_duplicates_body_guarded() {
        let (tp, pat) = pattern_of(programs::LIST_SCALE_ADDS, "scale");
        let f = tp.program.func("scale").unwrap();
        let u = unroll_loop(f, &pat, 2).unwrap();
        let printed = adds_lang::pretty::function(&u);
        assert_eq!(printed.matches("p->coef = p->coef * c;").count(), 2);
        assert_eq!(printed.matches("p = p->next;").count(), 2);
        assert!(printed.contains("if p <> NULL"), "{printed}");
    }

    #[test]
    fn unroll_by_one_is_identity() {
        let (tp, pat) = pattern_of(programs::LIST_SCALE_ADDS, "scale");
        let f = tp.program.func("scale").unwrap();
        let u = unroll_loop(f, &pat, 1).unwrap();
        assert_eq!(
            adds_lang::pretty::function(&u),
            adds_lang::pretty::function(f)
        );
    }

    #[test]
    fn unrolled_function_type_checks() {
        let (tp, pat) = pattern_of(programs::LIST_SCALE_ADDS, "scale");
        let f = tp.program.func("scale").unwrap();
        let u = unroll_loop(f, &pat, 4).unwrap();
        let mut prog = tp.program.clone();
        *prog.funcs.iter_mut().find(|g| g.name == "scale").unwrap() = u;
        check(prog).expect("unrolled program type checks");
    }

    #[test]
    fn missing_loop_returns_none() {
        let (tp, mut pat) = pattern_of(programs::LIST_SCALE_ADDS, "scale");
        pat.var = "nonesuch".into();
        let f = tp.program.func("scale").unwrap();
        assert!(unroll_loop(f, &pat, 2).is_none());
    }
}
