//! Strip-mine loop parallelization (§4.3.3).
//!
//! Transforms a verified pointer-chasing loop
//!
//! ```text
//! p = particles;
//! while p <> NULL {
//!     compute_force_on(p, root, theta);
//!     p = p->next;
//! }
//! ```
//!
//! into the paper's form: each round processes `PEs` list nodes in parallel,
//! with PE *i* skipping *i* nodes ahead (FOR2 inside the helper), and the
//! master pointer then skipping `PEs` nodes (FOR1):
//!
//! ```text
//! while p <> NULL {
//!     parfor i = 0 to PEs - 1 {
//!         _bhl1_iteration(i, p, root, theta);
//!     }
//!     for i = 0 to PEs - 1 {
//!         p = p->next;
//!     }
//! }
//!
//! procedure _bhl1_iteration(i: int, p: Octree*, root: ..., theta: ...) {
//!     for k = 1 to i { p = p->next; }
//!     if p <> NULL { <body without the advance> }
//! }
//! ```
//!
//! Both FOR loops may run `p` past the end of the list; this relies on
//! **speculative traversability** (§3.2), which the execution substrate
//! guarantees for ADDS structures.

use super::*;
use crate::depend::{check_function, ChasePattern, LoopCheck};
use crate::effects::EffectSummary;
use crate::summary::Summaries;
use crate::FnAnalysis;
use adds_lang::ast::*;
use adds_lang::source::Span;
use adds_lang::types::{TypedProgram, PES_CONST};

/// Outcome of strip-mining one function.
#[derive(Clone, Debug)]
pub struct StripMined {
    /// The rewritten function.
    pub func: FunDecl,
    /// The generated per-PE helper procedures (one per parallelized loop).
    pub helpers: Vec<FunDecl>,
    /// Loops that were parallelized.
    pub parallelized: Vec<ChasePattern>,
    /// Loops that were left sequential, with reasons.
    pub skipped: Vec<LoopCheck>,
}

/// Strip-mine every parallelizable `while` loop of `func_name`.
///
/// Only loops whose [`LoopCheck`] verdict is `parallelizable` are touched;
/// the rest are reported in `skipped`.
pub fn strip_mine_function(
    tp: &TypedProgram,
    sums: &Summaries,
    an: &FnAnalysis,
    func_name: &str,
) -> Option<StripMined> {
    let f = tp.program.func(func_name)?;
    let checks = check_function(tp, sums, an, func_name);

    let mut out = StripMined {
        func: f.clone(),
        helpers: Vec::new(),
        parallelized: Vec::new(),
        skipped: Vec::new(),
    };

    let mut counter = 0usize;
    let body = rewrite_block(
        tp,
        &f.body,
        func_name,
        &checks,
        &mut out.helpers,
        &mut out.parallelized,
        &mut out.skipped,
        &mut counter,
    );
    out.func.body = body;
    Some(out)
}

#[allow(clippy::too_many_arguments)]
fn rewrite_block(
    tp: &TypedProgram,
    b: &Block,
    func_name: &str,
    checks: &[LoopCheck],
    helpers: &mut Vec<FunDecl>,
    parallelized: &mut Vec<ChasePattern>,
    skipped: &mut Vec<LoopCheck>,
    counter: &mut usize,
) -> Block {
    let mut stmts = Vec::new();
    for s in &b.stmts {
        match s {
            Stmt::While { cond, body, span } => {
                let check = checks.iter().find(|c| c.span.start == span.start);
                match check {
                    Some(c) if c.parallelizable => {
                        let pat = c.pattern.clone().expect("parallelizable implies pattern");
                        let fx = c.effects.as_ref().expect("parallelizable implies effects");
                        let (loop_stmt, helper) =
                            build_strip(tp, func_name, &pat, fx, cond, body, counter);
                        stmts.push(loop_stmt);
                        helpers.push(helper);
                        parallelized.push(pat);
                    }
                    other => {
                        if let Some(c) = other {
                            skipped.push(c.clone());
                        }
                        // Recurse into the sequential loop body.
                        let inner = rewrite_block(
                            tp,
                            body,
                            func_name,
                            checks,
                            helpers,
                            parallelized,
                            skipped,
                            counter,
                        );
                        stmts.push(Stmt::While {
                            cond: cond.clone(),
                            body: inner,
                            span: *span,
                        });
                    }
                }
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                span,
            } => stmts.push(Stmt::If {
                cond: cond.clone(),
                then_blk: rewrite_block(
                    tp,
                    then_blk,
                    func_name,
                    checks,
                    helpers,
                    parallelized,
                    skipped,
                    counter,
                ),
                else_blk: else_blk.as_ref().map(|e| {
                    rewrite_block(
                        tp,
                        e,
                        func_name,
                        checks,
                        helpers,
                        parallelized,
                        skipped,
                        counter,
                    )
                }),
                span: *span,
            }),
            Stmt::For {
                var,
                from,
                to,
                body,
                parallel,
                span,
            } => stmts.push(Stmt::For {
                var: var.clone(),
                from: from.clone(),
                to: to.clone(),
                body: rewrite_block(
                    tp,
                    body,
                    func_name,
                    checks,
                    helpers,
                    parallelized,
                    skipped,
                    counter,
                ),
                parallel: *parallel,
                span: *span,
            }),
            other => stmts.push(other.clone()),
        }
    }
    Block {
        stmts,
        span: b.span,
    }
}

/// `PEs - 1`
fn pes_minus_one() -> Expr {
    binary(BinOp::Sub, var(PES_CONST), int(1))
}

fn build_strip(
    tp: &TypedProgram,
    func_name: &str,
    pat: &ChasePattern,
    fx: &EffectSummary,
    cond: &Expr,
    body: &Block,
    counter: &mut usize,
) -> (Stmt, FunDecl) {
    *counter += 1;
    let helper_name = format!("_{}_loop{}_iteration", func_name, counter);

    // Work = body minus the advance statement.
    let mut work: Vec<Stmt> = body.stmts.clone();
    work.remove(pat.advance_idx);

    // Free variables of the work that must be passed to the helper, straight
    // from the dependence check's effect summary (everything the region
    // uses, writes, or re-binds that is not region-local).
    let mut extra_params: Vec<(String, Ty)> = Vec::new();
    for v in fx.free_value_vars() {
        if v == pat.var || v == PES_CONST {
            continue;
        }
        if let Some(ty) = tp.var_ty(func_name, &v) {
            extra_params.push((v.clone(), ty.clone()));
        }
    }

    // Helper: procedure _f_loopN_iteration(i: int, p: T*, <frees>)
    let mut params = vec![
        Param {
            name: "i".into(),
            ty: Ty::Int,
            span: Span::default(),
        },
        Param {
            name: pat.var.clone(),
            ty: Ty::Ptr(pat.record.clone()),
            span: Span::default(),
        },
    ];
    for (name, ty) in &extra_params {
        params.push(Param {
            name: name.clone(),
            ty: ty.clone(),
            span: Span::default(),
        });
    }

    // for k = 1 to i { p = p->next; }   (FOR2 — speculative)
    let skip_loop = Stmt::For {
        var: "k".into(),
        from: int(1),
        to: var("i"),
        body: block(vec![advance(&pat.var, &pat.field)]),
        parallel: false,
        span: Span::default(),
    };
    // if p <> NULL { work }
    let guarded = Stmt::If {
        cond: ne_null(&pat.var),
        then_blk: block(work),
        else_blk: None,
        span: Span::default(),
    };
    let helper = FunDecl {
        name: helper_name.clone(),
        params,
        ret: None,
        body: block(vec![skip_loop, guarded]),
        span: Span::default(),
    };

    // Call: _helper(i, p, frees...)
    let mut args = vec![var("i"), var(&pat.var)];
    for (name, _) in &extra_params {
        args.push(var(name));
    }
    let call = Stmt::Call(Call {
        callee: helper_name,
        args,
        span: Span::default(),
    });

    // parfor i = 0 to PEs-1 { _helper(i, p, ...); }
    let parfor = Stmt::For {
        var: "i".into(),
        from: int(0),
        to: pes_minus_one(),
        body: block(vec![call]),
        parallel: true,
        span: Span::default(),
    };
    // for i = 0 to PEs-1 { p = p->next; }   (FOR1 — speculative)
    let for1 = Stmt::For {
        var: "i".into(),
        from: int(0),
        to: pes_minus_one(),
        body: block(vec![advance(&pat.var, &pat.field)]),
        parallel: false,
        span: Span::default(),
    };

    let loop_stmt = Stmt::While {
        cond: cond.clone(),
        body: block(vec![parfor, for1]),
        span: Span::default(),
    };
    (loop_stmt, helper)
}

/// Strip-mine a whole program: every parallelizable loop of every function.
/// Returns the transformed program and per-function reports.
pub fn strip_mine_program(
    tp: &TypedProgram,
    sums: &Summaries,
    analyses: &std::collections::BTreeMap<String, FnAnalysis>,
) -> (Program, Vec<StripMined>) {
    let mut prog = tp.program.clone();
    let mut reports = Vec::new();
    let mut new_funcs = Vec::new();
    for f in &mut prog.funcs {
        let Some(an) = analyses.get(&f.name) else {
            continue;
        };
        if let Some(sm) = strip_mine_function(tp, sums, an, &f.name) {
            if !sm.parallelized.is_empty() {
                *f = sm.func.clone();
                new_funcs.extend(sm.helpers.clone());
            }
            reports.push(sm);
        }
    }
    prog.funcs.extend(new_funcs);
    (prog, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_function;
    use adds_lang::programs;
    use adds_lang::types::{check, check_source};

    fn strip(src: &str, func: &str) -> (TypedProgram, StripMined) {
        let tp = check_source(src).unwrap();
        let sums = Summaries::compute(&tp);
        let an = analyze_function(&tp, &sums, func).unwrap();
        let sm = strip_mine_function(&tp, &sums, &an, func).unwrap();
        (tp, sm)
    }

    #[test]
    fn scale_loop_is_strip_mined() {
        let (_tp, sm) = strip(programs::LIST_SCALE_ADDS, "scale");
        assert_eq!(sm.parallelized.len(), 1);
        assert_eq!(sm.helpers.len(), 1);
        let printed = adds_lang::pretty::function(&sm.func);
        assert!(printed.contains("parfor i = 0 to PEs - 1"), "{printed}");
        assert!(printed.contains("for i = 0 to PEs - 1"), "{printed}");
        let helper = adds_lang::pretty::function(&sm.helpers[0]);
        assert!(helper.contains("for k = 1 to i"), "{helper}");
        assert!(helper.contains("if p <> NULL"), "{helper}");
        assert!(helper.contains("p->coef = p->coef * c;"), "{helper}");
    }

    #[test]
    fn helper_receives_free_variables() {
        let (_tp, sm) = strip(programs::LIST_SCALE_ADDS, "scale");
        let h = &sm.helpers[0];
        let names: Vec<&str> = h.params.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["i", "p", "c"]);
        assert_eq!(h.params[2].ty, Ty::Int);
    }

    #[test]
    fn bhl1_transformation_matches_paper_shape() {
        let (_tp, sm) = strip(programs::BARNES_HUT, "bhl1");
        assert_eq!(sm.parallelized.len(), 1);
        let printed = adds_lang::pretty::function(&sm.func);
        // The paper's transformed loop (§4.3.3).
        assert!(printed.contains("while p <> NULL"), "{printed}");
        assert!(printed.contains("parfor i = 0 to PEs - 1"), "{printed}");
        let helper = adds_lang::pretty::function(&sm.helpers[0]);
        assert!(
            helper.contains("compute_force_on(p, root, theta);"),
            "{helper}"
        );
        // Helper params: i, p, then the frees (root, theta).
        let names: Vec<&str> = sm.helpers[0]
            .params
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        assert_eq!(names, vec!["i", "p", "root", "theta"]);
    }

    #[test]
    fn orth_row_loop_is_strip_mined_end_to_end() {
        // The nested-chase tentpole: the outer row loop of the orthogonal
        // list is licensed (the inner `across` walk is a summarized local
        // effect) and strip-mined; the inner loop rides along inside the
        // helper, and the transformed program re-typechecks.
        let (_tp, sm) = strip(programs::ORTH_ROW_SCALE, "scale_rows");
        let outer = sm.parallelized.iter().find(|p| p.var == "r");
        assert!(outer.is_some(), "skipped: {:?}", sm.skipped);
        assert_eq!(outer.unwrap().field, "down");
        let printed = adds_lang::pretty::function(&sm.func);
        assert!(printed.contains("parfor i = 0 to PEs - 1"), "{printed}");
        let helper = adds_lang::pretty::function(&sm.helpers[0]);
        assert!(helper.contains("while p <> NULL"), "{helper}");
        assert!(helper.contains("p = p->across;"), "{helper}");
        // Helper params: i, the row cursor, then the frees (c, p).
        let names: Vec<&str> = sm.helpers[0]
            .params
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        assert_eq!(names, vec!["i", "r", "c", "p"]);

        let tp = check_source(programs::ORTH_ROW_SCALE).unwrap();
        let sums = Summaries::compute(&tp);
        let mut analyses = std::collections::BTreeMap::new();
        for f in &tp.program.funcs {
            analyses.insert(
                f.name.clone(),
                analyze_function(&tp, &sums, &f.name).unwrap(),
            );
        }
        let (prog, _) = strip_mine_program(&tp, &sums, &analyses);
        check(prog).expect("transformed orth program type checks");
    }

    #[test]
    fn non_parallelizable_loops_are_left_alone() {
        let (_tp, sm) = strip(programs::LIST_SUM, "sum");
        assert!(sm.parallelized.is_empty());
        assert_eq!(sm.skipped.len(), 1);
        assert!(sm.helpers.is_empty());
        let printed = adds_lang::pretty::function(&sm.func);
        assert!(!printed.contains("parfor"), "{printed}");
    }

    #[test]
    fn transformed_program_type_checks() {
        let tp = check_source(programs::BARNES_HUT).unwrap();
        let sums = Summaries::compute(&tp);
        let mut analyses = std::collections::BTreeMap::new();
        for f in &tp.program.funcs {
            analyses.insert(
                f.name.clone(),
                analyze_function(&tp, &sums, &f.name).unwrap(),
            );
        }
        let (prog, reports) = strip_mine_program(&tp, &sums, &analyses);
        let par_fns: Vec<&str> = reports
            .iter()
            .filter(|r| !r.parallelized.is_empty())
            .map(|r| r.func.name.as_str())
            .collect();
        assert!(par_fns.contains(&"bhl1"), "{par_fns:?}");
        assert!(par_fns.contains(&"bhl2"), "{par_fns:?}");
        // The whole transformed program must re-typecheck.
        check(prog).expect("transformed program type checks");
    }

    #[test]
    fn transformed_program_round_trips_through_printer() {
        let tp = check_source(programs::LIST_SCALE_ADDS).unwrap();
        let sums = Summaries::compute(&tp);
        let mut analyses = std::collections::BTreeMap::new();
        for f in &tp.program.funcs {
            analyses.insert(
                f.name.clone(),
                analyze_function(&tp, &sums, &f.name).unwrap(),
            );
        }
        let (prog, _) = strip_mine_program(&tp, &sums, &analyses);
        let printed = adds_lang::pretty::program(&prog);
        let reparsed = adds_lang::parse_program(&printed).unwrap();
        assert_eq!(adds_lang::pretty::program(&reparsed), printed);
        check(reparsed).expect("printed transform re-typechecks");
    }
}
