//! Software pipelining of pointer loops \[HHN92\].
//!
//! The traversal (`p = p->next`) is the loop-carried dependence; the
//! processing of each node is independent. Pipelining skews the two so the
//! next node is fetched *before* the current node is processed, overlapping
//! pointer-chasing latency with useful work:
//!
//! ```text
//! p = head;                     p = head;
//! while p <> NULL {             if p <> NULL {
//!     work(p);           ⇒          q = p->next;
//!     p = p->next;                  while q <> NULL {
//! }                                     work(p);
//!                                       p = q;
//!                                       q = q->next;
//!                                   }
//!                                   work(p);
//!                               }
//! ```
//!
//! Legality needs exactly the alias fact the path matrix provides: `work(p)`
//! must not modify `q = p->next`'s target link (no writes to the advance
//! field, nodes distinct).

use crate::depend::{ChasePattern, LoopCheck};
use adds_lang::ast::*;
use adds_lang::source::Span;

/// Pipeline the chase loop identified by `check` inside `func`.
/// `lookahead_var` names the prefetched pointer (e.g. `"q"`); it must not
/// collide with an existing variable.
///
/// Legality is read off the dependence check's effect summary rather than
/// re-scanning the body: the loop must match the chase pattern and the body
/// must not write the advance field (the only fact pipelining needs — the
/// prefetched link must survive the work).
pub fn pipeline_loop(func: &FunDecl, check: &LoopCheck, lookahead_var: &str) -> Option<FunDecl> {
    let pattern = check.pattern.as_ref()?;
    let fx = check.effects.as_ref()?;
    if fx.writes_field(&pattern.field) {
        return None;
    }
    let mut f = func.clone();
    let done = rewrite(&mut f.body, pattern, lookahead_var);
    done.then_some(f)
}

#[allow(clippy::collapsible_match)]
fn rewrite(b: &mut Block, pat: &ChasePattern, q: &str) -> bool {
    for s in &mut b.stmts {
        match s {
            Stmt::While { cond, body, span } => {
                if is_chase_loop(cond, pat) {
                    *s = pipelined(body, pat, q, *span);
                    return true;
                }
                if rewrite(body, pat, q) {
                    return true;
                }
            }
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                if rewrite(then_blk, pat, q) {
                    return true;
                }
                if let Some(e) = else_blk {
                    if rewrite(e, pat, q) {
                        return true;
                    }
                }
            }
            Stmt::For { body, .. } => {
                if rewrite(body, pat, q) {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

fn is_chase_loop(cond: &Expr, pat: &ChasePattern) -> bool {
    matches!(
        cond,
        Expr::Binary { op: BinOp::Ne, lhs, rhs, .. }
            if matches!((lhs.as_ref(), rhs.as_ref()),
                (Expr::Var(v, _), Expr::Null(_)) if *v == pat.var)
    )
}

fn sp() -> Span {
    Span::default()
}

fn ne_null(v: &str) -> Expr {
    Expr::Binary {
        op: BinOp::Ne,
        lhs: Box::new(Expr::Var(v.to_string(), sp())),
        rhs: Box::new(Expr::Null(sp())),
        span: sp(),
    }
}

fn pipelined(body: &Block, pat: &ChasePattern, q: &str, span: Span) -> Stmt {
    let mut work = body.stmts.clone();
    work.remove(pat.advance_idx);

    // q = p->next;
    let fetch_q = Stmt::Assign {
        lhs: LValue::var(q, sp()),
        rhs: Expr::Field {
            base: Box::new(Expr::Var(pat.var.clone(), sp())),
            field: pat.field.clone(),
            index: None,
            span: sp(),
        },
        span: sp(),
    };
    // p = q;
    let shift = Stmt::Assign {
        lhs: LValue::var(&pat.var, sp()),
        rhs: Expr::Var(q.to_string(), sp()),
        span: sp(),
    };
    // q = q->next;
    let fetch_next = Stmt::Assign {
        lhs: LValue::var(q, sp()),
        rhs: Expr::Field {
            base: Box::new(Expr::Var(q.to_string(), sp())),
            field: pat.field.clone(),
            index: None,
            span: sp(),
        },
        span: sp(),
    };

    let mut kernel = work.clone();
    kernel.push(shift);
    kernel.push(fetch_next);

    let steady = Stmt::While {
        cond: ne_null(q),
        body: Block {
            stmts: kernel,
            span: sp(),
        },
        span: sp(),
    };

    // Epilogue: process the final node.
    let mut then_stmts = vec![fetch_q, steady];
    then_stmts.extend(work);

    Stmt::If {
        cond: ne_null(&pat.var),
        then_blk: Block {
            stmts: then_stmts,
            span: sp(),
        },
        else_blk: None,
        span,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_function;
    use crate::depend::check_function;
    use crate::summary::Summaries;
    use adds_lang::programs;
    use adds_lang::types::{check, check_source};

    fn check_of(src: &str, func: &str) -> (adds_lang::types::TypedProgram, LoopCheck) {
        let tp = check_source(src).unwrap();
        let sums = Summaries::compute(&tp);
        let an = analyze_function(&tp, &sums, func).unwrap();
        let checks = check_function(&tp, &sums, &an, func);
        let check = checks[0].clone();
        (tp, check)
    }

    #[test]
    fn pipelined_shape() {
        let (tp, check) = check_of(programs::LIST_SCALE_ADDS, "scale");
        let f = tp.program.func("scale").unwrap();
        let p = pipeline_loop(f, &check, "q").unwrap();
        let printed = adds_lang::pretty::function(&p);
        assert!(printed.contains("q = p->next;"), "{printed}");
        assert!(printed.contains("while q <> NULL"), "{printed}");
        assert!(printed.contains("p = q;"), "{printed}");
        assert!(printed.contains("q = q->next;"), "{printed}");
        // work appears twice: kernel + epilogue.
        assert_eq!(printed.matches("p->coef = p->coef * c;").count(), 2);
    }

    #[test]
    fn pipelined_function_type_checks() {
        let (tp, lc) = check_of(programs::LIST_SCALE_ADDS, "scale");
        let f = tp.program.func("scale").unwrap();
        let p = pipeline_loop(f, &lc, "q").unwrap();
        let mut prog = tp.program.clone();
        *prog.funcs.iter_mut().find(|g| g.name == "scale").unwrap() = p;
        check(prog).expect("pipelined program type checks");
    }

    #[test]
    fn missing_loop_returns_none() {
        let (tp, mut check) = check_of(programs::LIST_SCALE_ADDS, "scale");
        check.pattern.as_mut().unwrap().var = "zz".into();
        let f = tp.program.func("scale").unwrap();
        assert!(pipeline_loop(f, &check, "q").is_none());
    }

    #[test]
    fn advance_field_write_is_refused_via_summary() {
        // The effect summary shows the body writing the advance field; the
        // prefetched link would be stale, so pipelining must refuse.
        let src = "
            type L [X] { int v; L *next is uniquely forward along X; };
            procedure cut(head: L*) {
                var p: L*;
                p = head;
                while p <> NULL {
                    p->next = NULL;
                    p = p->next;
                }
            }";
        let (tp, check) = check_of(src, "cut");
        let f = tp.program.func("cut").unwrap();
        assert!(pipeline_loop(f, &check, "q").is_none());
    }
}
