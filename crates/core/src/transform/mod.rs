//! Parallelizing and optimizing transformations enabled by the analysis.
//!
//! * [`stripmine`] — the paper's §4.3.3 transformation: strip-mine a
//!   pointer-chasing loop by the number of processors and run the strip in
//!   parallel (MIMD loop parallelization).
//! * [`unroll`] — loop unrolling for pointer loops \[HG92\].
//! * [`pipeline`] — software pipelining of traversal vs. processing
//!   \[HHN92\].
//!
//! All three require the loop to be a verified [`ChasePattern`]
//! (see [`crate::depend`]); strip-mining additionally requires full
//! independence of iterations.

pub mod pipeline;
pub mod stripmine;
pub mod unroll;

use adds_lang::ast::*;
use adds_lang::source::Span;

/// Shared helpers for building synthetic AST.
pub(crate) fn var(name: &str) -> Expr {
    Expr::Var(name.to_string(), Span::default())
}

pub(crate) fn int(v: i64) -> Expr {
    Expr::Int(v, Span::default())
}

pub(crate) fn field(base: Expr, f: &str) -> Expr {
    Expr::Field {
        base: Box::new(base),
        field: f.to_string(),
        index: None,
        span: Span::default(),
    }
}

pub(crate) fn ne_null(v: &str) -> Expr {
    Expr::Binary {
        op: BinOp::Ne,
        lhs: Box::new(var(v)),
        rhs: Box::new(Expr::Null(Span::default())),
        span: Span::default(),
    }
}

pub(crate) fn binary(op: BinOp, l: Expr, r: Expr) -> Expr {
    Expr::Binary {
        op,
        lhs: Box::new(l),
        rhs: Box::new(r),
        span: Span::default(),
    }
}

pub(crate) fn assign(lhs: LValue, rhs: Expr) -> Stmt {
    Stmt::Assign {
        lhs,
        rhs,
        span: Span::default(),
    }
}

pub(crate) fn assign_var(name: &str, rhs: Expr) -> Stmt {
    assign(LValue::var(name, Span::default()), rhs)
}

/// `p = p->f`
pub(crate) fn advance(p: &str, f: &str) -> Stmt {
    assign_var(p, field(var(p), f))
}

pub(crate) fn block(stmts: Vec<Stmt>) -> Block {
    Block {
        stmts,
        span: Span::default(),
    }
}

/// Variables referenced (read) anywhere in a block.
pub(crate) fn free_vars(b: &Block, out: &mut std::collections::BTreeSet<String>) {
    fn expr(e: &Expr, out: &mut std::collections::BTreeSet<String>) {
        match e {
            Expr::Var(v, _) => {
                out.insert(v.clone());
            }
            Expr::Field { base, index, .. } => {
                expr(base, out);
                if let Some(i) = index {
                    expr(i, out);
                }
            }
            Expr::Unary { operand, .. } => expr(operand, out),
            Expr::Binary { lhs, rhs, .. } => {
                expr(lhs, out);
                expr(rhs, out);
            }
            Expr::Call(c) => {
                for a in &c.args {
                    expr(a, out);
                }
            }
            _ => {}
        }
    }
    fn stmt(s: &Stmt, out: &mut std::collections::BTreeSet<String>) {
        match s {
            Stmt::VarDecl { init, .. } => {
                if let Some(e) = init {
                    expr(e, out);
                }
            }
            Stmt::Assign { lhs, rhs, .. } => {
                if !lhs.is_var() {
                    out.insert(lhs.base.clone());
                }
                for acc in &lhs.path {
                    if let Some(i) = &acc.index {
                        expr(i, out);
                    }
                }
                expr(rhs, out);
            }
            Stmt::While { cond, body, .. } => {
                expr(cond, out);
                free_vars(body, out);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                expr(cond, out);
                free_vars(then_blk, out);
                if let Some(e) = else_blk {
                    free_vars(e, out);
                }
            }
            Stmt::For { from, to, body, .. } => {
                expr(from, out);
                expr(to, out);
                free_vars(body, out);
            }
            Stmt::Return { value, .. } => {
                if let Some(e) = value {
                    expr(e, out);
                }
            }
            Stmt::Call(c) => {
                for a in &c.args {
                    expr(a, out);
                }
            }
        }
    }
    for s in &b.stmts {
        stmt(s, out);
    }
}

/// Variables declared or bound inside a block (loop-private).
pub(crate) fn bound_vars(b: &Block, out: &mut std::collections::BTreeSet<String>) {
    for s in &b.stmts {
        match s {
            Stmt::VarDecl { name, .. } => {
                out.insert(name.clone());
            }
            Stmt::For { var, body, .. } => {
                out.insert(var.clone());
                bound_vars(body, out);
            }
            Stmt::While { body, .. } => bound_vars(body, out),
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                bound_vars(then_blk, out);
                if let Some(e) = else_blk {
                    bound_vars(e, out);
                }
            }
            _ => {}
        }
    }
}
