//! Parallelizing and optimizing transformations enabled by the analysis.
//!
//! * [`stripmine`] — the paper's §4.3.3 transformation: strip-mine a
//!   pointer-chasing loop by the number of processors and run the strip in
//!   parallel (MIMD loop parallelization).
//! * [`unroll`] — loop unrolling for pointer loops \[HG92\].
//! * [`pipeline`] — software pipelining of traversal vs. processing
//!   \[HHN92\].
//!
//! All three require the loop to be a verified [`crate::depend::ChasePattern`]
//! (see [`crate::depend`]); strip-mining additionally requires full
//! independence of iterations.

pub mod pipeline;
pub mod stripmine;
pub mod unroll;

use adds_lang::ast::*;
use adds_lang::source::Span;

/// Shared helpers for building synthetic AST.
pub(crate) fn var(name: &str) -> Expr {
    Expr::Var(name.to_string(), Span::default())
}

pub(crate) fn int(v: i64) -> Expr {
    Expr::Int(v, Span::default())
}

pub(crate) fn field(base: Expr, f: &str) -> Expr {
    Expr::Field {
        base: Box::new(base),
        field: f.to_string(),
        index: None,
        span: Span::default(),
    }
}

pub(crate) fn ne_null(v: &str) -> Expr {
    Expr::Binary {
        op: BinOp::Ne,
        lhs: Box::new(var(v)),
        rhs: Box::new(Expr::Null(Span::default())),
        span: Span::default(),
    }
}

pub(crate) fn binary(op: BinOp, l: Expr, r: Expr) -> Expr {
    Expr::Binary {
        op,
        lhs: Box::new(l),
        rhs: Box::new(r),
        span: Span::default(),
    }
}

pub(crate) fn assign(lhs: LValue, rhs: Expr) -> Stmt {
    Stmt::Assign {
        lhs,
        rhs,
        span: Span::default(),
    }
}

pub(crate) fn assign_var(name: &str, rhs: Expr) -> Stmt {
    assign(LValue::var(name, Span::default()), rhs)
}

/// `p = p->f`
pub(crate) fn advance(p: &str, f: &str) -> Stmt {
    assign_var(p, field(var(p), f))
}

pub(crate) fn block(stmts: Vec<Stmt>) -> Block {
    Block {
        stmts,
        span: Span::default(),
    }
}
