//! Bottom-up interprocedural effect summaries.
//!
//! For every function we compute which *parameters'* structures it reads and
//! writes, at field granularity, and whether it mutates pointer fields
//! (changes shape). This is the information the paper appeals to in §4.3.2:
//! "analysis of compute_force would show that the data accessed via root
//! (and all nodes derived from root) are used in a read-only manner."
//!
//! The domain is deliberately small: each pointer-typed local is mapped to a
//! *provenance* — which parameters it may equal (`direct`), which parameters'
//! structures it may point into (`reach`), and whether it may point to
//! freshly allocated nodes. Effects are `(param, field, depth, kind)`
//! tuples; recursion is handled by a fixpoint over the call graph.

use adds_lang::ast::*;
use adds_lang::types::TypedProgram;
use std::collections::{BTreeMap, BTreeSet};

/// Whether an access touches the parameter's own node or something reachable
/// from it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Depth {
    /// On the parameter's own node (`p->f`).
    Direct,
    /// Anywhere reachable from the parameter.
    Reachable,
}

/// One field access attributed to a parameter.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FieldUse {
    /// Which parameter (by position).
    pub param: usize,
    /// Which field.
    pub field: String,
    /// Directly on the parameter's node, or anywhere reachable.
    pub depth: Depth,
}

/// Where a function's return value may come from.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RetSource {
    /// May be (an alias of) parameter `i` itself.
    Param(usize),
    /// May point into the structure reachable from parameter `i`.
    ReachableFrom(usize),
    /// May be a freshly allocated node.
    Fresh,
    /// May be NULL.
    Null,
}

/// The effect summary of one function.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Summary {
    /// Fields the function may read through each parameter.
    pub reads: BTreeSet<FieldUse>,
    /// Scalar fields the function may write through each parameter.
    pub writes: BTreeSet<FieldUse>,
    /// Writes to pointer fields — shape mutations (§3.3.1).
    pub ptr_writes: BTreeSet<FieldUse>,
    /// Where the returned pointer may come from.
    pub returns: BTreeSet<RetSource>,
    /// Parameters whose nodes are stored into some heap location by this
    /// function (they *escape* into another structure). A fresh return value
    /// may reach captured parameters, which is what makes the paper's
    /// `root =?` entries conservative but correct.
    pub captures: BTreeSet<usize>,
}

impl Summary {
    /// Does this function mutate any pointer field of any parameter's
    /// structure?
    pub fn mutates_shape(&self) -> bool {
        !self.ptr_writes.is_empty()
    }

    /// Fields written (at any depth) via parameter `i`.
    pub fn fields_written_via(&self, param: usize) -> BTreeSet<&str> {
        self.writes
            .iter()
            .chain(self.ptr_writes.iter())
            .filter(|u| u.param == param)
            .map(|u| u.field.as_str())
            .collect()
    }

    /// Fields read via parameter `i` at `Reachable` depth.
    pub fn reachable_reads_via(&self, param: usize) -> BTreeSet<&str> {
        self.reads
            .iter()
            .filter(|u| u.param == param && u.depth == Depth::Reachable)
            .map(|u| u.field.as_str())
            .collect()
    }

    /// Are all writes via parameter `i` at `Direct` depth (the param's own
    /// node) — the condition "writes only to the node denoted by p"?
    pub fn writes_only_direct(&self, param: usize) -> bool {
        self.writes
            .iter()
            .chain(self.ptr_writes.iter())
            .filter(|u| u.param == param)
            .all(|u| u.depth == Depth::Direct)
    }
}

/// Abstract provenance of a pointer value.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Prov {
    /// May be exactly parameter i's node.
    pub direct: BTreeSet<usize>,
    /// May be a node reachable (≥1 link) from parameter i.
    pub reach: BTreeSet<usize>,
    /// The return may be a freshly allocated node.
    pub fresh: bool,
    /// The return may be NULL.
    pub null: bool,
}

impl Prov {
    fn of_param(i: usize) -> Prov {
        Prov {
            direct: BTreeSet::from([i]),
            ..Default::default()
        }
    }

    fn fresh() -> Prov {
        Prov {
            fresh: true,
            ..Default::default()
        }
    }

    fn null() -> Prov {
        Prov {
            null: true,
            ..Default::default()
        }
    }

    fn merge(&mut self, other: &Prov) -> bool {
        let before = self.clone();
        self.direct.extend(other.direct.iter().copied());
        self.reach.extend(other.reach.iter().copied());
        self.fresh |= other.fresh;
        self.null |= other.null;
        *self != before
    }

    /// Provenance after one field dereference: anything direct becomes
    /// reachable; reachable stays reachable.
    fn deref(&self) -> Prov {
        let mut reach = self.reach.clone();
        reach.extend(self.direct.iter().copied());
        Prov {
            direct: BTreeSet::new(),
            reach,
            fresh: self.fresh,
            null: false,
        }
    }
}

/// All function summaries for a program.
#[derive(Clone, Debug, Default)]
pub struct Summaries {
    map: BTreeMap<String, Summary>,
}

impl Summaries {
    /// The summary for `func`.
    pub fn get(&self, func: &str) -> Option<&Summary> {
        self.map.get(func)
    }

    /// Compute summaries for every function, iterating to a fixpoint so
    /// (mutual) recursion is handled.
    pub fn compute(tp: &TypedProgram) -> Summaries {
        let mut out = Summaries::default();
        for f in &tp.program.funcs {
            out.map.insert(f.name.clone(), Summary::default());
        }
        loop {
            let mut changed = false;
            for f in &tp.program.funcs {
                let s = summarize_function(tp, f, &out);
                let slot = out.map.get_mut(&f.name).expect("pre-seeded");
                if *slot != s {
                    *slot = s;
                    changed = true;
                }
            }
            if !changed {
                return out;
            }
        }
    }
}

fn summarize_function(tp: &TypedProgram, f: &FunDecl, sums: &Summaries) -> Summary {
    let mut cx = Cx {
        tp,
        sums,
        f,
        prov: BTreeMap::new(),
        summary: Summary::default(),
    };
    for (i, p) in f.params.iter().enumerate() {
        if p.ty.is_pointer() {
            cx.prov.insert(p.name.clone(), Prov::of_param(i));
        }
    }
    // Provenances can grow through loops: iterate the whole body until the
    // provenance map and summary stabilize.
    loop {
        let before = (cx.prov.clone(), cx.summary.clone());
        cx.block(&f.body);
        if before == (cx.prov.clone(), cx.summary.clone()) {
            return cx.summary;
        }
    }
}

struct Cx<'a> {
    tp: &'a TypedProgram,
    sums: &'a Summaries,
    f: &'a FunDecl,
    prov: BTreeMap<String, Prov>,
    summary: Summary,
}

impl<'a> Cx<'a> {
    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::VarDecl { name, init, .. } => {
                if let Some(e) = init {
                    let p = self.expr(e);
                    if self.is_ptr_var(name) {
                        self.bind(name, &p);
                    }
                }
            }
            Stmt::Assign { lhs, rhs, .. } => {
                let rhs_prov = self.expr(rhs);
                if lhs.is_var() {
                    if self.is_ptr_var(&lhs.base) {
                        self.bind(&lhs.base, &rhs_prov);
                    }
                    return;
                }
                // Heap write: walk to the final base, recording reads of the
                // intermediate links, then record the write.
                let mut base_prov = self.var_prov(&lhs.base);
                let mut rec_ty = self.var_record(&lhs.base);
                for (k, acc) in lhs.path.iter().enumerate() {
                    if let Some(idx) = &acc.index {
                        self.expr(idx);
                    }
                    let last = k + 1 == lhs.path.len();
                    if last {
                        let is_ptr_field = rec_ty
                            .as_deref()
                            .and_then(|r| self.tp.field_ty(r, &acc.field))
                            .is_some_and(|t| t.is_pointer());
                        if is_ptr_field {
                            // The stored value escapes into a structure.
                            self.summary.captures.extend(rhs_prov.direct.iter());
                            self.summary.captures.extend(rhs_prov.reach.iter());
                        }
                        self.record_write(&base_prov, &acc.field, is_ptr_field);
                    } else {
                        self.record_read(&base_prov, &acc.field);
                        rec_ty = rec_ty
                            .as_deref()
                            .and_then(|r| self.tp.field_ty(r, &acc.field))
                            .and_then(|t| t.pointee().map(str::to_string));
                        base_prov = base_prov.deref();
                    }
                }
            }
            Stmt::While { cond, body, .. } => {
                self.expr(cond);
                self.block(body);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                self.expr(cond);
                self.block(then_blk);
                if let Some(e) = else_blk {
                    self.block(e);
                }
            }
            Stmt::For { from, to, body, .. } => {
                self.expr(from);
                self.expr(to);
                self.block(body);
            }
            Stmt::Return { value, .. } => {
                if let Some(e) = value {
                    let p = self.expr(e);
                    self.record_return(&p);
                }
            }
            Stmt::Call(c) => {
                self.call(c);
            }
        }
    }

    /// Evaluate an expression for its effects, returning its provenance
    /// (meaningful only for pointer-typed expressions).
    fn expr(&mut self, e: &Expr) -> Prov {
        match e {
            Expr::Int(..) | Expr::Real(..) | Expr::Bool(..) => Prov::default(),
            Expr::Null(_) => Prov::null(),
            Expr::New(..) => Prov::fresh(),
            Expr::Var(v, _) => self.var_prov(v),
            Expr::Field {
                base, field, index, ..
            } => {
                if let Some(idx) = index {
                    self.expr(idx);
                }
                let bp = self.expr(base);
                self.record_read(&bp, field);
                bp.deref()
            }
            Expr::Unary { operand, .. } => {
                self.expr(operand);
                Prov::default()
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
                Prov::default()
            }
            Expr::Call(c) => self.call(c),
        }
    }

    fn call(&mut self, c: &Call) -> Prov {
        let arg_provs: Vec<Prov> = c.args.iter().map(|a| self.expr(a)).collect();
        let Some(callee) = self.sums.get(&c.callee).cloned() else {
            // Intrinsic: no pointer effects.
            return Prov::default();
        };
        // Map callee effects through argument provenance.
        for u in &callee.reads {
            if let Some(ap) = arg_provs.get(u.param) {
                self.record_use(ap, &u.field, u.depth, Kind::Read);
            }
        }
        for u in &callee.writes {
            if let Some(ap) = arg_provs.get(u.param) {
                self.record_use(ap, &u.field, u.depth, Kind::Write);
            }
        }
        for u in &callee.ptr_writes {
            if let Some(ap) = arg_provs.get(u.param) {
                self.record_use(ap, &u.field, u.depth, Kind::PtrWrite);
            }
        }
        for j in &callee.captures {
            if let Some(ap) = arg_provs.get(*j) {
                self.summary.captures.extend(ap.direct.iter());
                self.summary.captures.extend(ap.reach.iter());
            }
        }
        // Return provenance.
        let mut ret = Prov::default();
        for src in &callee.returns {
            match src {
                RetSource::Param(i) => {
                    if let Some(ap) = arg_provs.get(*i) {
                        ret.merge(ap);
                    }
                }
                RetSource::ReachableFrom(i) => {
                    if let Some(ap) = arg_provs.get(*i) {
                        ret.merge(&ap.deref());
                    }
                }
                RetSource::Fresh => ret.fresh = true,
                RetSource::Null => ret.null = true,
            }
        }
        ret
    }

    fn record_return(&mut self, p: &Prov) {
        for i in &p.direct {
            self.summary.returns.insert(RetSource::Param(*i));
        }
        for i in &p.reach {
            self.summary.returns.insert(RetSource::ReachableFrom(*i));
        }
        if p.fresh {
            self.summary.returns.insert(RetSource::Fresh);
        }
        if p.null {
            self.summary.returns.insert(RetSource::Null);
        }
    }

    fn record_read(&mut self, p: &Prov, field: &str) {
        self.record_use(p, field, Depth::Direct, Kind::Read);
    }

    fn record_write(&mut self, p: &Prov, field: &str, is_ptr: bool) {
        self.record_use(
            p,
            field,
            Depth::Direct,
            if is_ptr { Kind::PtrWrite } else { Kind::Write },
        );
    }

    /// Attribute an access through provenance `p`. `base_depth` is the depth
    /// of the access relative to `p` itself; direct provenance keeps it,
    /// reach provenance lifts it to `Reachable`.
    fn record_use(&mut self, p: &Prov, field: &str, base_depth: Depth, kind: Kind) {
        let set = match kind {
            Kind::Read => &mut self.summary.reads,
            Kind::Write => &mut self.summary.writes,
            Kind::PtrWrite => &mut self.summary.ptr_writes,
        };
        for i in &p.direct {
            set.insert(FieldUse {
                param: *i,
                field: field.to_string(),
                depth: base_depth,
            });
        }
        for i in &p.reach {
            set.insert(FieldUse {
                param: *i,
                field: field.to_string(),
                depth: Depth::Reachable,
            });
        }
        // Accesses to purely fresh or null provenance have no external
        // effect.
    }

    fn bind(&mut self, var: &str, p: &Prov) {
        self.prov.entry(var.to_string()).or_default().merge(p);
    }

    fn var_prov(&self, v: &str) -> Prov {
        self.prov.get(v).cloned().unwrap_or_default()
    }

    fn is_ptr_var(&self, v: &str) -> bool {
        self.tp
            .var_ty(&self.f.name, v)
            .is_some_and(|t| t.is_pointer())
    }

    fn var_record(&self, v: &str) -> Option<String> {
        self.tp
            .var_ty(&self.f.name, v)
            .and_then(|t| t.pointee().map(str::to_string))
    }
}

#[derive(Clone, Copy)]
enum Kind {
    Read,
    Write,
    PtrWrite,
}

#[cfg(test)]
mod tests {
    use super::*;
    use adds_lang::programs;
    use adds_lang::types::check_source;

    fn summaries(src: &str) -> (TypedProgram, Summaries) {
        let tp = check_source(src).unwrap();
        let s = Summaries::compute(&tp);
        (tp, s)
    }

    #[test]
    fn scale_writes_only_coef_directly() {
        let (_tp, s) = summaries(programs::LIST_SCALE_ADDS);
        let sum = s.get("scale").unwrap();
        assert!(!sum.mutates_shape());
        // head is param 0: the loop variable p derives from head, so writes
        // land at Reachable depth (and Direct for the first node).
        let written: BTreeSet<&str> = sum.fields_written_via(0);
        assert_eq!(written, BTreeSet::from(["coef"]));
        // next is read but never written.
        assert!(sum.reads.iter().any(|u| u.field == "next"));
        assert!(!sum.writes.iter().any(|u| u.field == "next"));
    }

    #[test]
    fn compute_force_reads_tree_read_only() {
        let (_tp, s) = summaries(programs::BARNES_HUT);
        let sum = s.get("compute_force_on").unwrap();
        assert!(!sum.mutates_shape());
        // Writes go only to param 0 (p), at its own node.
        assert!(sum.writes_only_direct(0));
        assert_eq!(
            sum.fields_written_via(0),
            BTreeSet::from(["fx", "fy", "fz"])
        );
        // Param 1 (the tree root) is read-only.
        assert!(sum.fields_written_via(1).is_empty());
        let reads = sum.reachable_reads_via(1);
        assert!(reads.contains("mass"), "{reads:?}");
        assert!(reads.contains("subtrees"), "{reads:?}");
        // The tree read set never includes the force fields.
        assert!(!reads.contains("fx"));
    }

    #[test]
    fn insert_particle_mutates_shape() {
        let (_tp, s) = summaries(programs::BARNES_HUT);
        let sum = s.get("insert_particle").unwrap();
        assert!(sum.mutates_shape());
        assert!(sum
            .ptr_writes
            .iter()
            .any(|u| u.field == "subtrees" && u.param == 1));
    }

    #[test]
    fn build_tree_summary_includes_callee_effects() {
        let (_tp, s) = summaries(programs::BARNES_HUT);
        let sum = s.get("build_tree").unwrap();
        // build_tree never mutates pointer fields of the *particles'* own
        // structure — all tree links live in freshly allocated internal
        // nodes ("the next field is never updated in any of these
        // subroutines", §4.3.2)...
        assert!(!sum.ptr_writes.iter().any(|u| u.field == "next"));
        // ...but the particles are captured under the fresh tree.
        assert!(sum.captures.contains(&0));
        // Returns: fresh (new root).
        assert!(sum.returns.contains(&RetSource::Fresh));
        // next is read while walking the particle list but never written.
        assert!(sum.reads.iter().any(|u| u.field == "next" && u.param == 0));
        assert!(!sum.writes.iter().any(|u| u.field == "next"));
    }

    #[test]
    fn insert_particle_captures_the_particle() {
        let (_tp, s) = summaries(programs::BARNES_HUT);
        let sum = s.get("insert_particle").unwrap();
        assert!(sum.captures.contains(&0), "{:?}", sum.captures);
    }

    #[test]
    fn compute_new_vel_pos_touches_only_own_node() {
        let (_tp, s) = summaries(programs::BARNES_HUT);
        let sum = s.get("compute_new_vel_pos").unwrap();
        assert!(!sum.mutates_shape());
        assert!(sum.writes_only_direct(0));
        assert_eq!(
            sum.fields_written_via(0),
            BTreeSet::from(["vx", "vy", "vz", "x", "y", "z"])
        );
        assert!(sum.writes.iter().all(|u| u.depth == Depth::Direct));
    }

    #[test]
    fn recursive_accumulate_force_reaches_fixpoint() {
        let (_tp, s) = summaries(programs::BARNES_HUT);
        let sum = s.get("accumulate_force").unwrap();
        // The recursion distributes param-1 reads across the whole subtree.
        assert!(sum
            .reads
            .iter()
            .any(|u| u.param == 1 && u.field == "subtrees" && u.depth == Depth::Reachable));
        assert!(!sum.mutates_shape());
    }

    #[test]
    fn subtree_move_is_shape_mutation() {
        let (_tp, s) = summaries(programs::SUBTREE_MOVE);
        let sum = s.get("move_subtree").unwrap();
        assert!(sum.mutates_shape());
        let fields: BTreeSet<&str> = sum.ptr_writes.iter().map(|u| u.field.as_str()).collect();
        assert_eq!(fields, BTreeSet::from(["left"]));
    }

    #[test]
    fn expand_box_returns_fresh_or_param() {
        let (_tp, s) = summaries(programs::BARNES_HUT);
        let sum = s.get("expand_box").unwrap();
        assert!(sum.returns.contains(&RetSource::Fresh));
        assert!(sum.returns.contains(&RetSource::Param(1)));
    }
}
