//! Composable per-region effect summaries.
//!
//! The dependence test of §4.3.2–4.3.3 needs to know what a loop body *does*
//! to the heap: which nodes it writes (keyed by an abstract access path from
//! a region-entry variable), which fields it reads through loop-invariant
//! roots, whether it mutates pointer fields, which scalars it carries across
//! iterations, and how its cursors advance. Historically `core::depend`
//! answered those questions with one monolithic AST walk that gave up on any
//! inner control flow; this module instead computes a [`EffectSummary`]
//! bottom-up over blocks, ifs, and *inner loops*, with a join/widen algebra,
//! so an inner `while` (an inner cursor chasing its own link field) becomes
//! a summarized local effect rather than a rejection.
//!
//! The abstract domain is deliberately small:
//!
//! * a *place* is where a pointer variable may point — a region-entry
//!   *root* variable plus a [`Via`] describing the links traversed from it;
//! * an [`Access`] attributes one field read/write to a root and a via;
//! * inner loops are handled by iterating the body transfer function to a
//!   fixpoint on the place environment (star-closing the traversed field
//!   set) and then recording effects once from the widened environment.
//!
//! `core::depend` queries the summary to license or reject strip-mining;
//! `core::transform` consumes the same summary (free-variable and
//! advance-relation queries) instead of re-scanning loop bodies.

use crate::summary::{Depth, RetSource, Summaries};
use adds_lang::ast::*;
use adds_lang::types::TypedProgram;
use std::collections::{BTreeMap, BTreeSet};

/// Pseudo-root for nodes allocated inside the region (iteration-private
/// until linked into a structure, which is a pointer write and tracked
/// separately).
pub const FRESH_ROOT: &str = "$fresh";

/// Pseudo-root for reads whose provenance was lost (e.g. a pointer joined
/// from two different roots). Writes through unknown provenance are recorded
/// as [`EffectSummary::opaque`] notes instead.
pub const UNKNOWN_ROOT: &str = "?";

/// The links an access may traverse from its root.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Via {
    /// Zero or more links drawn from this field set. The empty set denotes
    /// *exactly the root's node*.
    Fields(BTreeSet<String>),
    /// An unknown chain of links (anything reachable from the root).
    Any,
}

impl Via {
    /// The empty traversal: the root's own node.
    pub fn direct() -> Via {
        Via::Fields(BTreeSet::new())
    }

    /// Is this the root's own node, with no links traversed?
    pub fn is_direct(&self) -> bool {
        matches!(self, Via::Fields(s) if s.is_empty())
    }

    /// The traversal extended by one `field` link.
    fn step(&self, field: &str) -> Via {
        match self {
            Via::Fields(s) => {
                let mut s = s.clone();
                s.insert(field.to_string());
                Via::Fields(s)
            }
            Via::Any => Via::Any,
        }
    }

    /// Least upper bound.
    fn join(&self, other: &Via) -> Via {
        match (self, other) {
            (Via::Fields(a), Via::Fields(b)) => Via::Fields(a.union(b).cloned().collect()),
            _ => Via::Any,
        }
    }
}

impl std::fmt::Display for Via {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Via::Fields(s) if s.is_empty() => Ok(()),
            Via::Fields(s) => {
                let fields: Vec<&str> = s.iter().map(String::as_str).collect();
                write!(f, "[{}*]", fields.join(","))
            }
            Via::Any => write!(f, "[*]"),
        }
    }
}

/// One field access, attributed to a region-entry root variable.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Access {
    /// The region-entry pointer variable the access is rooted at (or
    /// [`FRESH_ROOT`] / [`UNKNOWN_ROOT`]).
    pub root: String,
    /// The links traversed from the root to the accessed node.
    pub via: Via,
    /// The accessed field.
    pub field: String,
}

impl Access {
    /// Render as `root.field`, `root[g*].field`, or `root[*].field`.
    pub fn render(&self) -> String {
        format!("{}{}.{}", self.root, self.via, self.field)
    }
}

/// Where a pointer variable may point, relative to the region entry.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Place {
    /// Somewhere in `via(root)` where `root` is a region-entry variable.
    Rooted { root: String, via: Via },
    /// A node allocated inside the region.
    Fresh,
    /// Definitely NULL (dereferences trap; no heap effect to record).
    Null,
    /// Provenance lost (join of different roots, unknown call result, …).
    Opaque,
}

impl Place {
    fn join(&self, other: &Place) -> Place {
        match (self, other) {
            (a, b) if a == b => a.clone(),
            (Place::Null, p) | (p, Place::Null) => p.clone(),
            (Place::Rooted { root: r1, via: v1 }, Place::Rooted { root: r2, via: v2 })
                if r1 == r2 =>
            {
                Place::Rooted {
                    root: r1.clone(),
                    via: v1.join(v2),
                }
            }
            _ => Place::Opaque,
        }
    }
}

type Env = BTreeMap<String, Place>;

fn join_env(a: &Env, b: &Env) -> Env {
    let mut out = Env::new();
    for (k, pa) in a {
        match b.get(k) {
            Some(pb) => {
                out.insert(k.clone(), pa.join(pb));
            }
            // Bound on one path only: the entry value may survive, so the
            // variable's place is the join with "whatever it was" — which
            // for a free variable is itself. Conservatively join with the
            // free-variable place.
            None => {
                out.insert(
                    k.clone(),
                    pa.join(&Place::Rooted {
                        root: k.clone(),
                        via: Via::direct(),
                    }),
                );
            }
        }
    }
    for (k, pb) in b {
        if !a.contains_key(k) {
            out.insert(
                k.clone(),
                pb.join(&Place::Rooted {
                    root: k.clone(),
                    via: Via::direct(),
                }),
            );
        }
    }
    out
}

/// The effect summary of one region (a loop body, a block, a branch).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EffectSummary {
    /// Heap reads (scalar and link fields), keyed by access path.
    pub reads: BTreeSet<Access>,
    /// Heap writes to scalar fields.
    pub writes: BTreeSet<Access>,
    /// Heap writes to pointer fields — shape mutations.
    pub ptr_writes: BTreeSet<Access>,
    /// Free scalar variables read by the region.
    pub scalar_reads: BTreeSet<String>,
    /// Free scalar variables written by the region.
    pub scalar_writes: BTreeSet<String>,
    /// Variables declared inside the region (iteration-private).
    pub locals: BTreeSet<String>,
    /// Every free variable whose *value* the region uses (pointer roots,
    /// scalars, call arguments) — what a hoisted helper must receive.
    pub uses: BTreeSet<String>,
    /// Free pointer variables whose region-entry value may be observed:
    /// used before any rebinding, or re-bound on only one path of a branch
    /// (loop-invariant roots, or carried cursors when also in
    /// [`EffectSummary::ptr_rebound`]).
    pub ptr_reads_before_bind: BTreeSet<String>,
    /// Free pointer variables re-bound inside the region.
    pub ptr_rebound: BTreeSet<String>,
    /// Cursor advance relations of summarized inner chase loops:
    /// `cursor -> advance fields`.
    pub advances: BTreeMap<String, BTreeSet<String>>,
    /// The region contains a `return`.
    pub returns: bool,
    /// Precision-loss notes: effects that could not be attributed to a root.
    pub opaque: BTreeSet<String>,
}

impl EffectSummary {
    /// Merge `other` into `self` — the compose operation of the algebra
    /// (set union on every component; used for branches and sequencing).
    pub fn absorb(&mut self, other: &EffectSummary) {
        self.reads.extend(other.reads.iter().cloned());
        self.writes.extend(other.writes.iter().cloned());
        self.ptr_writes.extend(other.ptr_writes.iter().cloned());
        self.scalar_reads.extend(other.scalar_reads.iter().cloned());
        self.scalar_writes
            .extend(other.scalar_writes.iter().cloned());
        self.locals.extend(other.locals.iter().cloned());
        self.uses.extend(other.uses.iter().cloned());
        self.ptr_reads_before_bind
            .extend(other.ptr_reads_before_bind.iter().cloned());
        self.ptr_rebound.extend(other.ptr_rebound.iter().cloned());
        for (k, v) in &other.advances {
            self.advances
                .entry(k.clone())
                .or_default()
                .extend(v.iter().cloned());
        }
        self.returns |= other.returns;
        self.opaque.extend(other.opaque.iter().cloned());
    }

    /// All fields written (scalar and pointer), ignoring provenance.
    pub fn written_fields(&self) -> BTreeSet<&str> {
        self.writes
            .iter()
            .chain(self.ptr_writes.iter())
            .map(|a| a.field.as_str())
            .collect()
    }

    /// Does the region write `field` anywhere (scalar or pointer)?
    pub fn writes_field(&self, field: &str) -> bool {
        self.writes
            .iter()
            .chain(self.ptr_writes.iter())
            .any(|a| a.field == field)
    }

    /// The free variables a hoisted copy of the region must receive:
    /// everything used, written, or re-bound that is not region-local.
    pub fn free_value_vars(&self) -> BTreeSet<String> {
        let mut out: BTreeSet<String> = self.uses.clone();
        out.extend(self.scalar_writes.iter().cloned());
        out.extend(self.ptr_rebound.iter().cloned());
        out.retain(|v| !self.locals.contains(v));
        out.remove(FRESH_ROOT);
        out.remove(UNKNOWN_ROOT);
        out
    }
}

enum Kind {
    Read,
    Write,
    PtrWrite,
}

/// Summarize a loop body, skipping the advance statement at `advance_idx`
/// (the statement the chase pattern accounts for separately).
pub fn summarize_loop_body(
    tp: &TypedProgram,
    sums: &Summaries,
    func: &str,
    body: &Block,
    advance_idx: usize,
) -> EffectSummary {
    let cx = Cx { tp, sums, func };
    let mut env = Env::new();
    let mut fx = EffectSummary::default();
    for (i, s) in body.stmts.iter().enumerate() {
        if i == advance_idx {
            continue;
        }
        cx.stmt(s, &mut env, &mut fx);
    }
    fx
}

/// Summarize an arbitrary block (no statement skipped).
pub fn summarize_block(
    tp: &TypedProgram,
    sums: &Summaries,
    func: &str,
    body: &Block,
) -> EffectSummary {
    let cx = Cx { tp, sums, func };
    let mut env = Env::new();
    let mut fx = EffectSummary::default();
    cx.block(body, &mut env, &mut fx);
    fx
}

/// Bound on the env-fixpoint rounds for inner loops. The place lattice is
/// finite (field sets over the program's field universe, then `Any`/
/// `Opaque`), so this is a safety net, not a precision knob.
const MAX_WIDEN_ROUNDS: usize = 64;

struct Cx<'a> {
    tp: &'a TypedProgram,
    sums: &'a Summaries,
    func: &'a str,
}

impl<'a> Cx<'a> {
    fn is_ptr(&self, v: &str) -> bool {
        self.tp.var_ty(self.func, v).is_some_and(|t| t.is_pointer())
    }

    /// The place of variable `v`, registering the free-variable use.
    fn lookup(&self, v: &str, env: &mut Env, fx: &mut EffectSummary) -> Place {
        if let Some(p) = env.get(v) {
            return p.clone();
        }
        // A free variable used at its region-entry value.
        if !fx.locals.contains(v) {
            fx.uses.insert(v.to_string());
            fx.ptr_reads_before_bind.insert(v.to_string());
        }
        Place::Rooted {
            root: v.to_string(),
            via: Via::direct(),
        }
    }

    fn bind(&self, v: &str, place: Place, env: &mut Env, fx: &mut EffectSummary) {
        if !fx.locals.contains(v) {
            fx.ptr_rebound.insert(v.to_string());
        }
        env.insert(v.to_string(), place);
    }

    fn record(&self, place: &Place, field: &str, kind: Kind, fx: &mut EffectSummary) {
        let (root, via) = match place {
            Place::Rooted { root, via } => (root.clone(), via.clone()),
            Place::Fresh => (FRESH_ROOT.to_string(), Via::Any),
            Place::Null => return,
            Place::Opaque => match kind {
                Kind::Read => (UNKNOWN_ROOT.to_string(), Via::Any),
                Kind::Write | Kind::PtrWrite => {
                    fx.opaque.insert(format!(
                        "write to `{field}` through a pointer of unknown provenance"
                    ));
                    return;
                }
            },
        };
        let a = Access {
            root,
            via,
            field: field.to_string(),
        };
        match kind {
            Kind::Read => fx.reads.insert(a),
            Kind::Write => fx.writes.insert(a),
            Kind::PtrWrite => fx.ptr_writes.insert(a),
        };
    }

    fn read_scalar(&self, v: &str, fx: &mut EffectSummary) {
        if !fx.locals.contains(v) {
            fx.scalar_reads.insert(v.to_string());
            fx.uses.insert(v.to_string());
        }
    }

    // ------------------------------------------------------------ structure

    fn block(&self, b: &Block, env: &mut Env, fx: &mut EffectSummary) {
        for s in &b.stmts {
            self.stmt(s, env, fx);
        }
    }

    fn stmt(&self, s: &Stmt, env: &mut Env, fx: &mut EffectSummary) {
        match s {
            Stmt::VarDecl { name, init, .. } => {
                fx.locals.insert(name.clone());
                let place = init
                    .as_ref()
                    .map(|e| self.expr(e, env, fx))
                    .unwrap_or(Place::Null);
                if self.is_ptr(name) {
                    env.insert(name.clone(), place);
                }
            }
            Stmt::Assign { lhs, rhs, .. } => {
                let rhs_place = self.expr(rhs, env, fx);
                if lhs.is_var() {
                    if self.is_ptr(&lhs.base) {
                        self.bind(&lhs.base, rhs_place, env, fx);
                    } else if !fx.locals.contains(&lhs.base) {
                        fx.scalar_writes.insert(lhs.base.clone());
                    }
                    return;
                }
                // Heap write: walk the base chain (recording link reads),
                // then the final store.
                let mut place = self.lookup(&lhs.base.clone(), env, fx);
                let mut rec = self
                    .tp
                    .var_ty(self.func, &lhs.base)
                    .and_then(|t| t.pointee().map(str::to_string));
                let depth = lhs.path.len();
                for (k, acc) in lhs.path.iter().enumerate() {
                    if let Some(i) = &acc.index {
                        self.expr(i, env, fx);
                    }
                    if k + 1 == depth {
                        let is_ptr_field = rec
                            .as_deref()
                            .and_then(|r| self.tp.field_ty(r, &acc.field))
                            .is_some_and(|t| t.is_pointer());
                        let kind = if is_ptr_field {
                            Kind::PtrWrite
                        } else {
                            Kind::Write
                        };
                        self.record(&place, &acc.field, kind, fx);
                    } else {
                        self.record(&place, &acc.field, Kind::Read, fx);
                        rec = rec
                            .as_deref()
                            .and_then(|r| self.tp.field_ty(r, &acc.field))
                            .and_then(|t| t.pointee().map(str::to_string));
                        place = match &place {
                            Place::Rooted { root, via } => Place::Rooted {
                                root: root.clone(),
                                via: via.step(&acc.field),
                            },
                            other => other.clone(),
                        };
                    }
                }
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                self.expr(cond, env, fx);
                let pre = env.clone();
                let mut e1 = env.clone();
                self.block(then_blk, &mut e1, fx);
                let e2 = match else_blk {
                    Some(e) => {
                        let mut e2 = env.clone();
                        self.block(e, &mut e2, fx);
                        e2
                    }
                    None => env.clone(),
                };
                // A free pointer bound on only ONE path keeps its
                // region-entry value on the other: the entry value may
                // survive the branch and be observed afterwards, which is a
                // cross-iteration use when the variable is also re-bound.
                for v in e1.keys().chain(e2.keys()) {
                    if !pre.contains_key(v)
                        && !fx.locals.contains(v)
                        && (e1.contains_key(v) != e2.contains_key(v))
                        && self.is_ptr(v)
                    {
                        fx.uses.insert(v.clone());
                        fx.ptr_reads_before_bind.insert(v.clone());
                    }
                }
                *env = join_env(&e1, &e2);
            }
            Stmt::While { cond, body, .. } => {
                // Record the inner cursor's advance relation when the loop
                // is itself a chase (`while q <> NULL { …; q = q->g; }`).
                if let Some(q) = chase_cond_var(cond) {
                    if let Some(Stmt::Assign { lhs, rhs, .. }) = body.stmts.last() {
                        if lhs.is_var() && lhs.base == q {
                            if let Some((b, path)) = rhs.as_pointer_path() {
                                if b == q && path.len() == 1 {
                                    fx.advances
                                        .entry(q.clone())
                                        .or_default()
                                        .insert(path[0].clone());
                                }
                            }
                        }
                    }
                }
                self.loop_region(std::slice::from_ref(cond), body, env, fx);
            }
            Stmt::For {
                var,
                from,
                to,
                body,
                ..
            } => {
                fx.locals.insert(var.clone());
                self.loop_region(&[from.clone(), to.clone()], body, env, fx);
            }
            Stmt::Return { value, .. } => {
                if let Some(e) = value {
                    self.expr(e, env, fx);
                }
                fx.returns = true;
            }
            Stmt::Call(c) => {
                self.call(c, env, fx);
            }
        }
    }

    /// An inner loop: iterate the body transfer function on the place
    /// environment to a fixpoint (widening cursor places to their traversed
    /// field closure), then record effects once from the widened
    /// environment. `heads` are the expressions evaluated each round (the
    /// condition, or a `for` loop's bounds).
    fn loop_region(&self, heads: &[Expr], body: &Block, env: &mut Env, fx: &mut EffectSummary) {
        let entry = env.clone();
        let mut cur = entry.clone();
        for round in 0..MAX_WIDEN_ROUNDS {
            let mut trial = cur.clone();
            let mut scratch = fx.clone();
            for h in heads {
                self.expr(h, &mut trial, &mut scratch);
            }
            self.block(body, &mut trial, &mut scratch);
            let widened = join_env(&cur, &trial);
            if widened == cur {
                break;
            }
            cur = widened;
            if round + 1 == MAX_WIDEN_ROUNDS {
                // Safety net: give up on anything still moving.
                for (_, p) in cur.iter_mut() {
                    *p = Place::Opaque;
                }
            }
        }
        // One recording pass from the widened environment.
        *env = cur;
        for h in heads {
            self.expr(h, env, fx);
        }
        self.block(body, env, fx);
        // The loop may run zero times.
        *env = join_env(&entry, env);
    }

    // ---------------------------------------------------------- expressions

    fn expr(&self, e: &Expr, env: &mut Env, fx: &mut EffectSummary) -> Place {
        match e {
            Expr::Int(..) | Expr::Real(..) | Expr::Bool(..) => Place::Null,
            Expr::Null(_) => Place::Null,
            Expr::New(..) => Place::Fresh,
            Expr::Var(v, _) => {
                if self.is_ptr(v) {
                    self.lookup(v, env, fx)
                } else {
                    self.read_scalar(v, fx);
                    Place::Null
                }
            }
            Expr::Field {
                base, field, index, ..
            } => {
                if let Some(i) = index {
                    self.expr(i, env, fx);
                }
                let bp = self.expr(base, env, fx);
                self.record(&bp, field, Kind::Read, fx);
                match &bp {
                    Place::Rooted { root, via } => Place::Rooted {
                        root: root.clone(),
                        via: via.step(field),
                    },
                    other => other.clone(),
                }
            }
            Expr::Unary { operand, .. } => {
                self.expr(operand, env, fx);
                Place::Null
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs, env, fx);
                self.expr(rhs, env, fx);
                Place::Null
            }
            Expr::Call(c) => self.call(c, env, fx),
        }
    }

    /// Map a callee's interprocedural summary ([`crate::summary`]) through
    /// the argument places.
    fn call(&self, c: &Call, env: &mut Env, fx: &mut EffectSummary) -> Place {
        let arg_places: Vec<Place> = c.args.iter().map(|a| self.expr(a, env, fx)).collect();
        let Some(sum) = self.sums.get(&c.callee) else {
            // Intrinsic: pure.
            return Place::Opaque;
        };
        let through = |place: &Place, depth: Depth| -> Place {
            match depth {
                Depth::Direct => place.clone(),
                Depth::Reachable => match place {
                    Place::Rooted { root, .. } => Place::Rooted {
                        root: root.clone(),
                        via: Via::Any,
                    },
                    other => other.clone(),
                },
            }
        };
        for u in &sum.reads {
            if let Some(p) = arg_places.get(u.param) {
                self.record(&through(p, u.depth), &u.field, Kind::Read, fx);
            }
        }
        for u in &sum.writes {
            if let Some(p) = arg_places.get(u.param) {
                self.record(&through(p, u.depth), &u.field, Kind::Write, fx);
            }
        }
        for u in &sum.ptr_writes {
            if let Some(p) = arg_places.get(u.param) {
                self.record(&through(p, u.depth), &u.field, Kind::PtrWrite, fx);
            }
        }
        // Return-value provenance.
        let mut ret: Option<Place> = None;
        let mut add = |p: Place| {
            ret = Some(match ret.take() {
                None => p,
                Some(q) => q.join(&p),
            });
        };
        for src in &sum.returns {
            match src {
                RetSource::Param(i) => {
                    if let Some(p) = arg_places.get(*i) {
                        add(p.clone());
                    }
                }
                RetSource::ReachableFrom(i) => {
                    if let Some(p) = arg_places.get(*i) {
                        add(through(p, Depth::Reachable));
                    }
                }
                RetSource::Fresh => add(Place::Fresh),
                RetSource::Null => add(Place::Null),
            }
        }
        ret.unwrap_or(Place::Opaque)
    }
}

/// Extract `q` from a `q <> NULL` / `NULL <> q` loop condition.
pub(crate) fn chase_cond_var(cond: &Expr) -> Option<String> {
    let Expr::Binary {
        op: BinOp::Ne,
        lhs,
        rhs,
        ..
    } = cond
    else {
        return None;
    };
    match (lhs.as_ref(), rhs.as_ref()) {
        (Expr::Var(v, _), Expr::Null(_)) | (Expr::Null(_), Expr::Var(v, _)) => Some(v.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adds_lang::programs;
    use adds_lang::types::check_source;

    fn body_summary(src: &str, func: &str, advance_idx: usize) -> EffectSummary {
        let tp = check_source(src).unwrap();
        let sums = Summaries::compute(&tp);
        let f = tp.program.func(func).unwrap();
        // The single top-level while loop's body.
        let body = f
            .body
            .stmts
            .iter()
            .find_map(|s| match s {
                Stmt::While { body, .. } => Some(body),
                _ => None,
            })
            .expect("function has a top-level while loop");
        summarize_loop_body(&tp, &sums, func, body, advance_idx)
    }

    #[test]
    fn flat_scale_body_is_direct() {
        let fx = body_summary(programs::LIST_SCALE_ADDS, "scale", 1);
        assert!(fx.ptr_writes.is_empty());
        let w: Vec<String> = fx.writes.iter().map(Access::render).collect();
        assert_eq!(w, vec!["p.coef"]);
        assert!(fx.scalar_reads.contains("c"));
        assert!(fx.ptr_rebound.is_empty());
    }

    #[test]
    fn nested_row_walk_is_star_closed() {
        let fx = body_summary(programs::ORTH_ROW_SCALE, "scale_rows", 2);
        // The inner cursor's writes are attributed to the outer cursor `r`
        // via the star-closed `across` chain (which covers `r`'s own node).
        let w: Vec<String> = fx.writes.iter().map(Access::render).collect();
        assert_eq!(w, vec!["r[across*].data"]);
        // `p` is a region cursor: re-bound before any use of its entry
        // value, and its advance relation is summarized.
        assert!(fx.ptr_rebound.contains("p"));
        assert!(!fx.ptr_reads_before_bind.contains("p"));
        assert_eq!(
            fx.advances.get("p"),
            Some(&BTreeSet::from(["across".to_string()]))
        );
        assert!(fx.ptr_writes.is_empty());
    }

    #[test]
    fn call_effects_map_through_places() {
        let fx = body_summary(programs::BARNES_HUT, "bhl1", 1);
        // compute_force_on(p, root, theta): writes land on p's own node,
        // reads through root are reachable.
        assert!(fx.writes.iter().all(|a| a.root == "p" && a.via.is_direct()));
        assert!(fx
            .reads
            .iter()
            .any(|a| a.root == "root" && a.via == Via::Any && a.field == "mass"));
        assert!(fx.scalar_reads.contains("theta"));
        assert!(fx.uses.contains("root"));
    }

    #[test]
    fn branch_join_loses_exactness_not_root() {
        let src = "
            type L [X] { int v; L *next is uniquely forward along X; };
            procedure f(head: L*, b: bool) {
                var p: L*;
                p = head;
                while p <> NULL {
                    if b { p->v = 1; } else { p->next->v = 2; }
                    p = p->next;
                }
            }";
        let tp = check_source(src).unwrap();
        let sums = Summaries::compute(&tp);
        let f = tp.program.func("f").unwrap();
        let Stmt::While { body, .. } = &f.body.stmts[2] else {
            panic!()
        };
        let fx = summarize_loop_body(&tp, &sums, "f", body, 1);
        let w: Vec<String> = fx.writes.iter().map(Access::render).collect();
        assert_eq!(w, vec!["p.v", "p[next*].v"]);
    }

    #[test]
    fn free_value_vars_cover_helper_params() {
        let fx = body_summary(programs::BARNES_HUT, "bhl1", 1);
        let free = fx.free_value_vars();
        assert!(free.contains("root"));
        assert!(free.contains("theta"));
        assert!(free.contains("p"));
    }

    #[test]
    fn returns_and_scalar_carries_are_seen() {
        let fx = body_summary(programs::LIST_SUM, "sum", 1);
        assert!(fx.scalar_reads.contains("s"));
        assert!(fx.scalar_writes.contains("s"));
    }
}
