//! Alias queries over analysis results — the consumer-facing face of the
//! path matrix (§3.3.2: "the PM can be used for alias analysis to determine
//! whether two pointer variables are potential aliases").

use crate::analysis::State;

/// May `a` and `b` point to the same node at this program point?
pub fn may_alias(state: &State, a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    if !state.pm.has_var(a) || !state.pm.has_var(b) {
        // Unknown variables: conservatively yes.
        return true;
    }
    state.pm.get(a, b).may_alias()
}

/// Must `a` and `b` point to the same node at this program point?
pub fn must_alias(state: &State, a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    state.pm.has_var(a) && state.pm.has_var(b) && state.pm.get(a, b).must_alias()
}

/// Are `a` and `b` proven to never alias at this program point?
pub fn no_alias(state: &State, a: &str, b: &str) -> bool {
    a != b && state.pm.has_var(a) && state.pm.has_var(b) && !state.pm.get(a, b).may_alias()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_function;
    use crate::summary::Summaries;
    use adds_lang::programs;
    use adds_lang::types::check_source;

    fn bottom_state() -> State {
        let tp = check_source(programs::LIST_SCALE_ADDS).unwrap();
        let sums = Summaries::compute(&tp);
        let an = analyze_function(&tp, &sums, "scale").unwrap();
        an.loops[0].bottom.clone()
    }

    #[test]
    fn list_walk_proves_no_alias() {
        let st = bottom_state();
        assert!(no_alias(&st, "head", "p"));
        assert!(no_alias(&st, "p'", "p"));
        assert!(!may_alias(&st, "head", "p"));
    }

    #[test]
    fn reflexive_queries() {
        let st = bottom_state();
        assert!(may_alias(&st, "p", "p"));
        assert!(must_alias(&st, "p", "p"));
        assert!(!no_alias(&st, "p", "p"));
    }

    #[test]
    fn unknown_vars_are_conservative() {
        let st = bottom_state();
        assert!(may_alias(&st, "head", "mystery"));
        assert!(!must_alias(&st, "head", "mystery"));
        assert!(!no_alias(&st, "head", "mystery"));
    }
}
