//! The path algebra of general path matrix analysis.
//!
//! A path matrix entry `PM(r, s)` describes the relationship between the
//! nodes pointed to by `r` and `s`: whether they may/must be **aliases**, and
//! any **paths** of field links known to lead from `r`'s node to `s`'s node.
//! The paper prints entries like `=`, `=?`, `next`, `next+`; this module
//! gives those a lattice structure with join (for control-flow merges and
//! loop widening) and composition (for traversal statements).

use std::collections::BTreeSet;
use std::fmt;

/// May/must aliasing between two pointers.
///
/// `No` is the strong claim — it is what licenses parallelization — so the
/// lattice order is `No ⊑ Maybe` with `Must` an exact (incomparable) element
/// that joins with anything else to `Maybe`-or-better via [`Alias::join`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Alias {
    /// Definitely not the same node (paper: blank entry).
    No,
    /// Definitely the same node (paper: `=`).
    Must,
    /// Possibly the same node (paper: `=?`).
    Maybe,
}

impl Alias {
    /// Least upper bound of two alias facts.
    pub fn join(self, other: Alias) -> Alias {
        use Alias::*;
        match (self, other) {
            (No, No) => No,
            (Must, Must) => Must,
            // Mixing "same" and "different" (or anything with Maybe)
            // yields uncertainty.
            _ => Maybe,
        }
    }

    /// Could the two pointers denote the same node?
    pub fn may_alias(self) -> bool {
        !matches!(self, Alias::No)
    }
}

/// How many links a path descriptor stands for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Len {
    /// Exactly one link (paper: `f`).
    One,
    /// One or more links (paper: `f+`).
    AtLeastOne,
    /// Zero or more links (paper-adjacent: `f*`; arises from joining `=`
    /// with `f+` at loop merges).
    AtLeastZero,
}

impl Len {
    /// Least upper bound of two length facts.
    pub fn join(self, other: Len) -> Len {
        use Len::*;
        match (self, other) {
            (One, One) => One,
            (AtLeastZero, _) | (_, AtLeastZero) => AtLeastZero,
            _ => AtLeastOne,
        }
    }

    /// Concatenation of two path lengths.
    pub fn compose(self, other: Len) -> Len {
        use Len::*;
        match (self, other) {
            // 1 + 1 ≥ 1, anything + ≥1 is ≥ 1, ...
            (AtLeastZero, AtLeastZero) => AtLeastZero,
            _ => AtLeastOne,
        }
    }

    /// May the path have zero length (i.e. allow the endpoints to be equal)?
    pub fn may_be_empty(self) -> bool {
        matches!(self, Len::AtLeastZero)
    }
}

/// A path descriptor: a set of fields the path uses, and a length bound.
/// `One`/`AtLeastOne` over a single field render as the paper's `f` / `f+`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Desc {
    /// The fields the path may traverse.
    pub fields: BTreeSet<String>,
    /// How many links the path may span.
    pub len: Len,
}

impl Desc {
    /// A path of exactly one `field` link.
    pub fn one(field: impl Into<String>) -> Desc {
        Desc {
            fields: BTreeSet::from([field.into()]),
            len: Len::One,
        }
    }

    /// A path of one or more `field` links (`field+`).
    pub fn plus(field: impl Into<String>) -> Desc {
        Desc {
            fields: BTreeSet::from([field.into()]),
            len: Len::AtLeastOne,
        }
    }

    /// A path of zero or more `field` links (`field*`).
    pub fn star(field: impl Into<String>) -> Desc {
        Desc {
            fields: BTreeSet::from([field.into()]),
            len: Len::AtLeastZero,
        }
    }

    /// Does the path use `field`?
    pub fn uses(&self, field: &str) -> bool {
        self.fields.contains(field)
    }

    /// Join two descriptors over the same journey (same endpoints).
    pub fn join(&self, other: &Desc) -> Desc {
        Desc {
            fields: self.fields.union(&other.fields).cloned().collect(),
            len: self.len.join(other.len),
        }
    }

    /// Concatenate `self` (r→s) with `other` (s→t) into r→t.
    pub fn compose(&self, other: &Desc) -> Desc {
        Desc {
            fields: self.fields.union(&other.fields).cloned().collect(),
            len: self.len.compose(other.len),
        }
    }

    /// Extend the path by one extra link along `field`.
    pub fn step(&self, field: &str) -> Desc {
        self.compose(&Desc::one(field))
    }
}

impl fmt::Display for Desc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let suffix = match self.len {
            Len::One => "",
            Len::AtLeastOne => "+",
            Len::AtLeastZero => "*",
        };
        if self.fields.len() == 1 {
            write!(f, "{}{suffix}", self.fields.first().unwrap())
        } else {
            let list: Vec<&str> = self.fields.iter().map(String::as_str).collect();
            write!(f, "{{{}}}{suffix}", list.join(","))
        }
    }
}

/// A path matrix entry: the alias verdict plus the set of *must-exist* paths
/// from the row variable's node to the column variable's node.
///
/// Path descriptors are must-information (the links definitely exist right
/// now); the alias field is the may-information queried by parallelization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// The alias fact between the two pointers.
    pub alias: Alias,
    /// Known explicit paths from the row node to the column node.
    pub paths: BTreeSet<Desc>,
}

/// Cap on distinct descriptors per entry; beyond it we merge into one
/// widened descriptor so fixpoints stay small.
const MAX_DESCS: usize = 4;

impl Entry {
    /// Nothing known to relate the two pointers (and they are not aliases):
    /// the paper's blank entry.
    pub fn none() -> Entry {
        Entry {
            alias: Alias::No,
            paths: BTreeSet::new(),
        }
    }

    /// Definitely the same node.
    pub fn must() -> Entry {
        Entry {
            alias: Alias::Must,
            paths: BTreeSet::new(),
        }
    }

    /// Possibly the same node, no path information.
    pub fn maybe() -> Entry {
        Entry {
            alias: Alias::Maybe,
            paths: BTreeSet::new(),
        }
    }

    /// A known path with an alias verdict supplied by the caller (which
    /// knows the field directions).
    pub fn with_path(alias: Alias, desc: Desc) -> Entry {
        Entry {
            alias,
            paths: BTreeSet::from([desc]),
        }
    }

    /// Proven: no alias and no recorded path.
    pub fn is_none(&self) -> bool {
        self.alias == Alias::No && self.paths.is_empty()
    }

    /// Could the two pointers denote the same node?
    pub fn may_alias(&self) -> bool {
        self.alias.may_alias()
    }

    /// Proven: the two pointers denote the same node.
    pub fn must_alias(&self) -> bool {
        self.alias == Alias::Must
    }

    /// Does any recorded path use `field`?
    pub fn uses_field(&self, field: &str) -> bool {
        self.paths.iter().any(|d| d.uses(field))
    }

    /// Is there a recorded path consisting of exactly one `field` link?
    /// (Used for the functional-field must-alias derivation and for
    /// detecting existing incoming edges during validation.)
    pub fn has_single_link(&self, field: &str) -> bool {
        self.paths
            .iter()
            .any(|d| d.len == Len::One && d.fields.len() == 1 && d.uses(field))
    }

    /// Record another explicit path (joining with an existing one on the
    /// same fields).
    pub fn add_path(&mut self, desc: Desc) {
        // Merge with an existing descriptor over the same field set.
        if let Some(existing) = self.paths.iter().find(|d| d.fields == desc.fields).cloned() {
            if existing.len == desc.len {
                return;
            }
            self.paths.remove(&existing);
            self.paths.insert(existing.join(&desc));
            return;
        }
        self.paths.insert(desc);
        if self.paths.len() > MAX_DESCS {
            // Widen: collapse everything into a single descriptor.
            let merged = self
                .paths
                .iter()
                .cloned()
                .reduce(|a, b| a.join(&b))
                .expect("non-empty");
            self.paths = BTreeSet::from([merged]);
        }
    }

    /// Remove all path descriptors that use `field` (the edge may have been
    /// overwritten). Returns true if anything was removed.
    pub fn remove_paths_using(&mut self, field: &str) -> bool {
        let before = self.paths.len();
        self.paths.retain(|d| !d.uses(field));
        self.paths.len() != before
    }

    /// Control-flow join.
    pub fn join(&self, other: &Entry) -> Entry {
        let alias = self.alias.join(other.alias);
        let mut paths = BTreeSet::new();
        // A path survives a join only if it exists on both sides; paths over
        // the same field set join their length bounds. `Must` on one side is
        // a zero-length path: joining it with `f`/`f+` yields `f*`.
        for d in &self.paths {
            if let Some(o) = other.paths.iter().find(|o| o.fields == d.fields) {
                paths.insert(d.join(o));
            } else if other.alias == Alias::Must {
                paths.insert(Desc {
                    fields: d.fields.clone(),
                    len: d.len.join(Len::AtLeastZero),
                });
            }
        }
        if self.alias == Alias::Must {
            for o in &other.paths {
                if !paths.iter().any(|p| p.fields == o.fields) {
                    paths.insert(Desc {
                        fields: o.fields.clone(),
                        len: o.len.join(Len::AtLeastZero),
                    });
                }
            }
        }
        let mut e = Entry {
            alias,
            paths: BTreeSet::new(),
        };
        for d in paths {
            e.add_path(d);
        }
        e
    }

    /// Render like the paper: `=`, `=?`, `next`, `next+`, or blank.
    pub fn display(&self) -> String {
        match self.alias {
            Alias::Must => "=".to_string(),
            Alias::Maybe => {
                // Prefer showing a star-path when that is the reason for
                // uncertainty; otherwise the paper's `=?`.
                if self.paths.len() == 1 {
                    let d = self.paths.first().unwrap();
                    if d.len == Len::AtLeastZero {
                        return d.to_string();
                    }
                }
                "=?".to_string()
            }
            Alias::No => self
                .paths
                .iter()
                .map(Desc::to_string)
                .collect::<Vec<_>>()
                .join(","),
        }
    }
}

impl fmt::Display for Entry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alias_join_table() {
        use Alias::*;
        assert_eq!(No.join(No), No);
        assert_eq!(Must.join(Must), Must);
        assert_eq!(No.join(Must), Maybe);
        assert_eq!(Maybe.join(No), Maybe);
        assert_eq!(Maybe.join(Must), Maybe);
    }

    #[test]
    fn len_join_and_compose() {
        use Len::*;
        assert_eq!(One.join(One), One);
        assert_eq!(One.join(AtLeastOne), AtLeastOne);
        assert_eq!(One.join(AtLeastZero), AtLeastZero);
        assert_eq!(One.compose(One), AtLeastOne);
        assert_eq!(AtLeastZero.compose(AtLeastZero), AtLeastZero);
        assert_eq!(AtLeastZero.compose(One), AtLeastOne);
    }

    #[test]
    fn desc_display_matches_paper() {
        assert_eq!(Desc::one("next").to_string(), "next");
        assert_eq!(Desc::plus("next").to_string(), "next+");
        assert_eq!(Desc::star("next").to_string(), "next*");
        let multi = Desc::one("subtrees").step("next");
        assert_eq!(multi.to_string(), "{next,subtrees}+");
    }

    #[test]
    fn entry_display_matches_paper() {
        assert_eq!(Entry::must().display(), "=");
        assert_eq!(Entry::maybe().display(), "=?");
        assert_eq!(Entry::none().display(), "");
        assert_eq!(
            Entry::with_path(Alias::No, Desc::plus("next")).display(),
            "next+"
        );
        assert_eq!(
            Entry::with_path(Alias::Maybe, Desc::star("next")).display(),
            "next*"
        );
    }

    #[test]
    fn one_joined_with_plus_is_plus() {
        let a = Entry::with_path(Alias::No, Desc::one("next"));
        let b = Entry::with_path(Alias::No, Desc::plus("next"));
        let j = a.join(&b);
        assert_eq!(j.alias, Alias::No);
        assert_eq!(j.paths, BTreeSet::from([Desc::plus("next")]));
    }

    #[test]
    fn must_joined_with_path_is_star() {
        // `=` ⊔ `next` = `next*` — the head/p' merge at a loop head.
        let a = Entry::must();
        let b = Entry::with_path(Alias::No, Desc::one("next"));
        let j = a.join(&b);
        assert_eq!(j.alias, Alias::Maybe);
        assert_eq!(j.paths, BTreeSet::from([Desc::star("next")]));
        assert_eq!(j.display(), "next*");
    }

    #[test]
    fn join_drops_one_sided_paths() {
        let a = Entry::with_path(Alias::No, Desc::one("next"));
        let b = Entry::none();
        let j = a.join(&b);
        assert!(j.paths.is_empty());
        assert_eq!(j.alias, Alias::No);
    }

    #[test]
    fn add_path_merges_same_fields() {
        let mut e = Entry::none();
        e.add_path(Desc::one("next"));
        e.add_path(Desc::plus("next"));
        assert_eq!(e.paths.len(), 1);
        assert_eq!(e.paths.first().unwrap().len, Len::AtLeastOne);
    }

    #[test]
    fn widening_caps_descriptor_count() {
        let mut e = Entry::none();
        for f in ["a", "b", "c", "d", "e"] {
            e.add_path(Desc::one(f));
        }
        assert_eq!(e.paths.len(), 1);
        let d = e.paths.first().unwrap();
        assert_eq!(d.fields.len(), 5);
    }

    #[test]
    fn remove_paths_using_field() {
        let mut e = Entry::none();
        e.add_path(Desc::one("left"));
        e.add_path(Desc::one("next"));
        assert!(e.remove_paths_using("left"));
        assert!(!e.uses_field("left"));
        assert!(e.uses_field("next"));
        assert!(!e.remove_paths_using("left"));
    }

    #[test]
    fn single_link_detection() {
        let mut e = Entry::none();
        e.add_path(Desc::plus("next"));
        assert!(!e.has_single_link("next"));
        let mut e = Entry::none();
        e.add_path(Desc::one("next"));
        assert!(e.has_single_link("next"));
    }
}
