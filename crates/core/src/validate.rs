//! Abstraction validation (§3.3.1).
//!
//! ADDS declarations assert *invariants* (disjoint subtrees, acyclic unique
//! chains) that imperative programs routinely break and re-establish. The
//! analysis must notice the break — so no transformation relies on an invalid
//! property — and notice the repair, without treating either as an error.
//!
//! A [`Violation`] records one broken property. Sharing violations carry the
//! *holder* variables (every pointer known to hold an incoming edge to the
//! shared node); when a later statement overwrites a holder's edge, the
//! violation is repaired.

use adds_lang::source::Span;
use std::collections::BTreeSet;
use std::fmt;

/// Which declared property a store broke.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolationKind {
    /// A node acquired (or may have acquired) two incoming links along a
    /// `uniquely` field — subtrees are no longer disjoint.
    Sharing,
    /// A store may have closed a cycle along a `forward`/`backward`
    /// (acyclic) field.
    Cycle,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::Sharing => write!(f, "sharing"),
            ViolationKind::Cycle => write!(f, "cycle"),
        }
    }
}

/// One active break in the declared abstraction.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Which property is broken.
    pub kind: ViolationKind,
    /// Record type whose declaration is violated.
    pub type_name: String,
    /// The field whose route property is violated.
    pub field: String,
    /// Variables holding the offending edges. Overwriting `h->field` for a
    /// holder `h` repairs a sharing violation.
    pub holders: BTreeSet<String>,
    /// Where the break happened.
    pub at: Span,
}

impl Violation {
    /// Is the declared property of `type_name` (as needed through `field`)
    /// affected by this violation?
    pub fn affects(&self, type_name: &str, field: &str) -> bool {
        self.type_name == type_name && self.field == field
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} violation on `{}` field `{}` (holders: {})",
            self.kind,
            self.type_name,
            self.field,
            self.holders
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

/// A timeline event reported by the analyzer: the abstraction broke or was
/// repaired at a given statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationEvent {
    /// A store broke a declared property.
    Broken {
        /// The offending statement.
        at: Span,
        /// What broke.
        violation: Violation,
    },
    /// A later store restored the property.
    Repaired {
        /// The repairing statement.
        at: Span,
        /// What was repaired.
        violation: Violation,
    },
}

impl ValidationEvent {
    /// The statement where the event happened.
    pub fn span(&self) -> Span {
        match self {
            ValidationEvent::Broken { at, .. } | ValidationEvent::Repaired { at, .. } => *at,
        }
    }

    /// Is this a break (as opposed to a repair)?
    pub fn is_broken(&self) -> bool {
        matches!(self, ValidationEvent::Broken { .. })
    }
}

impl fmt::Display for ValidationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationEvent::Broken { violation, .. } => {
                write!(f, "abstraction BROKEN: {violation}")
            }
            ValidationEvent::Repaired { violation, .. } => {
                write!(f, "abstraction REPAIRED: {violation}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v() -> Violation {
        Violation {
            kind: ViolationKind::Sharing,
            type_name: "BinTree".into(),
            field: "left".into(),
            holders: BTreeSet::from(["p1".to_string(), "p2".to_string()]),
            at: Span::default(),
        }
    }

    #[test]
    fn affects_matches_type_and_field() {
        let v = v();
        assert!(v.affects("BinTree", "left"));
        assert!(!v.affects("BinTree", "right"));
        assert!(!v.affects("Octree", "left"));
    }

    #[test]
    fn display_mentions_holders() {
        let s = v().to_string();
        assert!(s.contains("p1"));
        assert!(s.contains("p2"));
        assert!(s.contains("sharing"));
    }

    #[test]
    fn event_kind_predicates() {
        let e = ValidationEvent::Broken {
            at: Span::default(),
            violation: v(),
        };
        assert!(e.is_broken());
        let e = ValidationEvent::Repaired {
            at: Span::default(),
            violation: v(),
        };
        assert!(!e.is_broken());
    }
}
