//! Loop dependence testing for pointer-chasing loops (§4.3.2–4.3.3).
//!
//! A loop of the shape
//!
//! ```text
//! while p <> NULL { body(p); p = p->f; }
//! ```
//!
//! is parallelizable when the analysis can show that no two iterations
//! conflict. The conditions implemented here are the paper's:
//!
//! 1. `f` is `uniquely forward` and the abstraction for it is **valid** at
//!    loop entry, so `p = p->f` always moves to a *new* node
//!    (the path matrix fixpoint must show `PM(p', p)` no-alias);
//! 2. the body **writes only to the node denoted by `p`** (directly), never
//!    through other variables, and mutates **no pointer fields** anywhere;
//! 3. any data read through *other* (loop-invariant) pointers — e.g. the
//!    octree via `root` — is read-only **in the fields the body writes**:
//!    the written field set must be disjoint from every reachable read set,
//!    since `p`'s node may itself be reachable from those pointers;
//! 4. no scalar loop-carried dependence (accumulators disqualify the loop).

use crate::analysis::FnAnalysis;
use crate::summary::{Depth, Summaries};
use adds_lang::ast::*;
use adds_lang::source::Span;
use adds_lang::types::TypedProgram;
use std::collections::BTreeSet;

/// The recognized pointer-chase pattern of a loop.
#[derive(Clone, Debug, PartialEq)]
pub struct ChasePattern {
    /// The loop-carried pointer variable (`p`).
    pub var: String,
    /// Its record type.
    pub record: String,
    /// The advancing field (`next`).
    pub field: String,
    /// Index (in `body.stmts`) of the advance statement `p = p->field`.
    pub advance_idx: usize,
}

/// Verdict for one loop.
#[derive(Clone, Debug)]
pub struct LoopCheck {
    /// The loop's source span.
    pub span: Span,
    /// The recognized chase pattern, if any.
    pub pattern: Option<ChasePattern>,
    /// Whether strip-mining is licensed.
    pub parallelizable: bool,
    /// Human-readable reasons when not parallelizable.
    pub reasons: Vec<String>,
}

/// Check every `while` loop of `func` for strip-mine parallelizability.
pub fn check_function(
    tp: &TypedProgram,
    sums: &Summaries,
    an: &FnAnalysis,
    func: &str,
) -> Vec<LoopCheck> {
    let Some(f) = tp.program.func(func) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    collect_whiles(&f.body, &mut |cond, body, span| {
        out.push(check_loop_inner(tp, sums, an, func, cond, body, span));
    });
    out
}

/// Check a single `while` loop (identified by its span) of `func`.
pub fn check_loop(
    tp: &TypedProgram,
    sums: &Summaries,
    an: &FnAnalysis,
    func: &str,
    span: Span,
) -> Option<LoopCheck> {
    check_function(tp, sums, an, func)
        .into_iter()
        .find(|c| c.span.start == span.start)
}

fn collect_whiles(b: &Block, visit: &mut impl FnMut(&Expr, &Block, Span)) {
    for s in &b.stmts {
        match s {
            Stmt::While { cond, body, span } => {
                visit(cond, body, *span);
                collect_whiles(body, visit);
            }
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                collect_whiles(then_blk, visit);
                if let Some(e) = else_blk {
                    collect_whiles(e, visit);
                }
            }
            Stmt::For { body, .. } => collect_whiles(body, visit),
            _ => {}
        }
    }
}

fn check_loop_inner(
    tp: &TypedProgram,
    sums: &Summaries,
    an: &FnAnalysis,
    func: &str,
    cond: &Expr,
    body: &Block,
    span: Span,
) -> LoopCheck {
    let mut reasons = Vec::new();

    // ---- pattern: `while p <> NULL` -----------------------------------
    let var = match chase_cond_var(cond) {
        Some(v) => v,
        None => {
            return LoopCheck {
                span,
                pattern: None,
                parallelizable: false,
                reasons: vec!["loop condition is not `p <> NULL`".into()],
            }
        }
    };
    let record = match tp.var_ty(func, &var) {
        Some(Ty::Ptr(r)) => r.clone(),
        _ => {
            return LoopCheck {
                span,
                pattern: None,
                parallelizable: false,
                reasons: vec![format!("`{var}` is not a pointer variable")],
            }
        }
    };

    // ---- pattern: advance statement `p = p->f` -------------------------
    let mut advance: Option<(usize, String)> = None;
    for (i, s) in body.stmts.iter().enumerate() {
        if let Stmt::Assign { lhs, rhs, .. } = s {
            if lhs.is_var() && lhs.base == var {
                match rhs.as_pointer_path() {
                    Some((base, fields)) if base == var && fields.len() == 1 => {
                        if advance.is_some() {
                            reasons.push(format!("`{var}` is advanced more than once"));
                        }
                        advance = Some((i, fields[0].clone()));
                    }
                    _ => reasons.push(format!(
                        "`{var}` is assigned something other than `{var}-><field>`"
                    )),
                }
            }
        } else if assigns_var_deep(s, &var) {
            reasons.push(format!("`{var}` is assigned inside nested control flow"));
        }
    }
    let Some((advance_idx, field)) = advance else {
        reasons.push(format!("no advance statement `{var} = {var}-><field>`"));
        return LoopCheck {
            span,
            pattern: None,
            parallelizable: false,
            reasons,
        };
    };
    if advance_idx + 1 != body.stmts.len() {
        reasons.push("advance statement is not the last statement of the body".into());
    }
    let pattern = ChasePattern {
        var: var.clone(),
        record: record.clone(),
        field: field.clone(),
        advance_idx,
    };

    // ---- condition 1: uniquely-forward advance + valid abstraction -----
    let adds_ty = tp.adds.get(&record);
    match adds_ty {
        Some(t) if t.is_uniquely_forward(&field) => {}
        Some(_) => reasons.push(format!(
            "field `{field}` of `{record}` is not declared `uniquely forward`"
        )),
        None => reasons.push(format!("`{record}` has no ADDS declaration")),
    }
    if let Some(lp) = an.loop_at(span) {
        if !lp.head.abstraction_valid(&record, &field) {
            reasons.push(format!(
                "abstraction for `{record}.{field}` is broken at loop entry"
            ));
        }
        // The fixpoint must show consecutive iterations on distinct nodes.
        let primed = crate::matrix::primed(&var);
        if lp.bottom.pm.has_var(&primed) && lp.bottom.pm.get(&primed, &var).may_alias() {
            reasons.push(format!(
                "analysis cannot prove `{var}` moves to a new node each iteration"
            ));
        }
    } else {
        reasons.push("loop was not analyzed".into());
    }

    // ---- conditions 2-4: body effects ----------------------------------
    let effects = body_effects(tp, sums, func, body, advance_idx, &var, &mut reasons);

    // 2: writes only direct-to-p; no pointer writes at all.
    if !effects.ptr_write_free {
        reasons.push("body mutates pointer fields (shape changes)".into());
    }
    for w in &effects.foreign_writes {
        reasons.push(format!(
            "body writes through `{w}`, not only through `{var}`"
        ));
    }
    if effects.writes_reachable {
        reasons.push(format!(
            "body writes to nodes *reachable* from `{var}`, not just `{var}`'s node"
        ));
    }

    // 3: field disjointness between written fields and reachable reads.
    let overlap: Vec<&String> = effects
        .written_fields
        .intersection(&effects.reachable_read_fields)
        .collect();
    if !overlap.is_empty() {
        reasons.push(format!(
            "written fields {:?} are also read through other pointers",
            overlap
        ));
    }
    // The advance field must never be written.
    if effects.written_fields.contains(&field) {
        reasons.push(format!("body writes the advance field `{field}`"));
    }

    // 4: scalar loop-carried dependences.
    for v in &effects.carried_scalars {
        reasons.push(format!(
            "scalar `{v}` carries a dependence across iterations"
        ));
    }

    LoopCheck {
        span,
        pattern: Some(pattern),
        parallelizable: reasons.is_empty(),
        reasons,
    }
}

/// Does `cond` have the shape `p <> NULL` (or `NULL <> p`)?
fn chase_cond_var(cond: &Expr) -> Option<String> {
    let Expr::Binary {
        op: BinOp::Ne,
        lhs,
        rhs,
        ..
    } = cond
    else {
        return None;
    };
    match (lhs.as_ref(), rhs.as_ref()) {
        (Expr::Var(v, _), Expr::Null(_)) | (Expr::Null(_), Expr::Var(v, _)) => Some(v.clone()),
        _ => None,
    }
}

fn assigns_var_deep(s: &Stmt, var: &str) -> bool {
    match s {
        Stmt::Assign { lhs, .. } => lhs.is_var() && lhs.base == var,
        Stmt::VarDecl { name, .. } => name == var,
        Stmt::While { body, .. } | Stmt::For { body, .. } => {
            body.stmts.iter().any(|s| assigns_var_deep(s, var))
        }
        Stmt::If {
            then_blk, else_blk, ..
        } => {
            then_blk.stmts.iter().any(|s| assigns_var_deep(s, var))
                || else_blk
                    .as_ref()
                    .is_some_and(|b| b.stmts.iter().any(|s| assigns_var_deep(s, var)))
        }
        _ => false,
    }
}

#[derive(Default)]
struct BodyEffects {
    /// Scalar fields written via the chase variable.
    written_fields: BTreeSet<String>,
    /// Fields read at reachable depth through any pointer (chase var or
    /// invariant pointers like `root`).
    reachable_read_fields: BTreeSet<String>,
    /// Pointer vars other than the chase var written through.
    foreign_writes: BTreeSet<String>,
    writes_reachable: bool,
    ptr_write_free: bool,
    carried_scalars: BTreeSet<String>,
}

fn body_effects(
    tp: &TypedProgram,
    sums: &Summaries,
    func: &str,
    body: &Block,
    advance_idx: usize,
    var: &str,
    reasons: &mut Vec<String>,
) -> BodyEffects {
    let mut fx = BodyEffects {
        ptr_write_free: true,
        ..Default::default()
    };

    // Scalars declared inside the body are iteration-private.
    let mut local_scalars: BTreeSet<String> = BTreeSet::new();
    let mut assigned_scalars: BTreeSet<String> = BTreeSet::new();
    let mut read_scalars: BTreeSet<String> = BTreeSet::new();

    for (i, s) in body.stmts.iter().enumerate() {
        if i == advance_idx {
            continue;
        }
        stmt_effects(
            tp,
            sums,
            func,
            s,
            var,
            &mut fx,
            &mut local_scalars,
            &mut assigned_scalars,
            &mut read_scalars,
            reasons,
        );
    }

    for v in assigned_scalars {
        if !local_scalars.contains(&v) && read_scalars.contains(&v) {
            fx.carried_scalars.insert(v);
        }
    }
    fx
}

#[allow(clippy::too_many_arguments)]
fn stmt_effects(
    tp: &TypedProgram,
    sums: &Summaries,
    func: &str,
    s: &Stmt,
    var: &str,
    fx: &mut BodyEffects,
    local_scalars: &mut BTreeSet<String>,
    assigned_scalars: &mut BTreeSet<String>,
    read_scalars: &mut BTreeSet<String>,
    reasons: &mut Vec<String>,
) {
    let is_ptr = |v: &str| tp.var_ty(func, v).is_some_and(|t| t.is_pointer());
    match s {
        Stmt::VarDecl { name, init, .. } => {
            if !is_ptr(name) {
                local_scalars.insert(name.clone());
            }
            if let Some(e) = init {
                expr_effects(tp, sums, func, e, var, fx, read_scalars, reasons);
            }
        }
        Stmt::Assign { lhs, rhs, .. } => {
            expr_effects(tp, sums, func, rhs, var, fx, read_scalars, reasons);
            if lhs.is_var() {
                if is_ptr(&lhs.base) {
                    // Pointer-variable rebinding inside the body (other than
                    // the advance) makes tracking imprecise.
                    reasons.push(format!(
                        "pointer variable `{}` is re-bound inside the body",
                        lhs.base
                    ));
                } else {
                    assigned_scalars.insert(lhs.base.clone());
                }
                return;
            }
            // Heap write through lhs.base.
            let depth = lhs.path.len();
            let last = lhs.path.last().expect("field lvalue");
            let written_is_ptr = lvalue_field_is_pointer(tp, func, lhs);
            if written_is_ptr {
                fx.ptr_write_free = false;
            }
            if lhs.base == var {
                if depth > 1 {
                    fx.writes_reachable = true;
                }
                fx.written_fields.insert(last.field.clone());
            } else {
                fx.foreign_writes.insert(lhs.base.clone());
            }
            // Reads of intermediate links count as reachable reads.
            for acc in &lhs.path[..depth - 1] {
                fx.reachable_read_fields.insert(acc.field.clone());
            }
        }
        Stmt::While { cond, body, .. } => {
            expr_effects(tp, sums, func, cond, var, fx, read_scalars, reasons);
            for s in &body.stmts {
                stmt_effects(
                    tp,
                    sums,
                    func,
                    s,
                    var,
                    fx,
                    local_scalars,
                    assigned_scalars,
                    read_scalars,
                    reasons,
                );
            }
        }
        Stmt::For { from, to, body, .. } => {
            expr_effects(tp, sums, func, from, var, fx, read_scalars, reasons);
            expr_effects(tp, sums, func, to, var, fx, read_scalars, reasons);
            for s in &body.stmts {
                stmt_effects(
                    tp,
                    sums,
                    func,
                    s,
                    var,
                    fx,
                    local_scalars,
                    assigned_scalars,
                    read_scalars,
                    reasons,
                );
            }
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            expr_effects(tp, sums, func, cond, var, fx, read_scalars, reasons);
            for s in then_blk
                .stmts
                .iter()
                .chain(else_blk.iter().flat_map(|b| b.stmts.iter()))
            {
                stmt_effects(
                    tp,
                    sums,
                    func,
                    s,
                    var,
                    fx,
                    local_scalars,
                    assigned_scalars,
                    read_scalars,
                    reasons,
                );
            }
        }
        Stmt::Return { value, .. } => {
            if let Some(e) = value {
                expr_effects(tp, sums, func, e, var, fx, read_scalars, reasons);
            }
            reasons.push("body returns out of the loop".into());
        }
        Stmt::Call(c) => {
            call_effects(tp, sums, func, c, var, fx, read_scalars, reasons);
        }
    }
}

fn lvalue_field_is_pointer(tp: &TypedProgram, func: &str, lv: &LValue) -> bool {
    let Some(mut rec) = tp
        .var_ty(func, &lv.base)
        .and_then(|t| t.pointee().map(str::to_string))
    else {
        return false;
    };
    for (i, acc) in lv.path.iter().enumerate() {
        match tp.field_ty(&rec, &acc.field) {
            Some(Ty::Ptr(t)) => {
                if i + 1 == lv.path.len() {
                    return true;
                }
                rec = t;
            }
            _ => return false,
        }
    }
    false
}

#[allow(clippy::too_many_arguments)]
fn expr_effects(
    tp: &TypedProgram,
    sums: &Summaries,
    func: &str,
    e: &Expr,
    var: &str,
    fx: &mut BodyEffects,
    read_scalars: &mut BTreeSet<String>,
    reasons: &mut Vec<String>,
) {
    match e {
        Expr::Var(v, _) if !tp.var_ty(func, v).is_some_and(|t| t.is_pointer()) => {
            read_scalars.insert(v.clone());
        }
        Expr::Var(..) => {}
        Expr::Field {
            base, field, index, ..
        } => {
            expr_effects(tp, sums, func, base, var, fx, read_scalars, reasons);
            if let Some(i) = index {
                expr_effects(tp, sums, func, i, var, fx, read_scalars, reasons);
            }
            // Depth > 1 or non-chase base ⇒ reachable read.
            match base.as_ref() {
                Expr::Var(v, _) if v == var => {
                    // direct read of p's field — always safe vs other
                    // iterations' direct writes (distinct nodes).
                }
                _ => {
                    fx.reachable_read_fields.insert(field.clone());
                }
            }
            // Reading a link field from p directly still matters if another
            // iteration *writes* that link — covered by written∩read on the
            // advance field check; record link reads through p too when they
            // lead onward (conservatively treat nested reads above).
        }
        Expr::Unary { operand, .. } => {
            expr_effects(tp, sums, func, operand, var, fx, read_scalars, reasons)
        }
        Expr::Binary { lhs, rhs, .. } => {
            expr_effects(tp, sums, func, lhs, var, fx, read_scalars, reasons);
            expr_effects(tp, sums, func, rhs, var, fx, read_scalars, reasons);
        }
        Expr::Call(c) => call_effects(tp, sums, func, c, var, fx, read_scalars, reasons),
        _ => {}
    }
}

#[allow(clippy::too_many_arguments)]
fn call_effects(
    tp: &TypedProgram,
    sums: &Summaries,
    func: &str,
    c: &Call,
    var: &str,
    fx: &mut BodyEffects,
    read_scalars: &mut BTreeSet<String>,
    reasons: &mut Vec<String>,
) {
    for a in &c.args {
        expr_effects(tp, sums, func, a, var, fx, read_scalars, reasons);
    }
    let Some(sum) = sums.get(&c.callee) else {
        return; // intrinsic: pure
    };
    if sum.mutates_shape() {
        fx.ptr_write_free = false;
    }
    // Map callee effects through the arguments.
    for (j, a) in c.args.iter().enumerate() {
        let arg_var = match a {
            Expr::Var(v, _) => Some(v.clone()),
            _ => a.as_pointer_path().map(|(b, _)| b),
        };
        let Some(av) = arg_var else { continue };
        if !tp.var_ty(func, &av).is_some_and(|t| t.is_pointer()) {
            continue;
        }
        let arg_is_direct_chase = av == var && matches!(a, Expr::Var(..));
        // Writes.
        for u in sum.writes.iter().chain(sum.ptr_writes.iter()) {
            if u.param != j {
                continue;
            }
            if arg_is_direct_chase {
                if u.depth == Depth::Direct {
                    fx.written_fields.insert(u.field.clone());
                } else {
                    fx.writes_reachable = true;
                    fx.written_fields.insert(u.field.clone());
                }
            } else {
                fx.foreign_writes.insert(av.clone());
            }
        }
        // Reads: direct reads of the chase var's node are iteration-private;
        // everything else is potentially shared.
        for u in &sum.reads {
            if u.param != j {
                continue;
            }
            if arg_is_direct_chase && u.depth == Depth::Direct {
                continue;
            }
            fx.reachable_read_fields.insert(u.field.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_function;
    use adds_lang::programs;
    use adds_lang::types::check_source;

    fn checks(src: &str, func: &str) -> Vec<LoopCheck> {
        let tp = check_source(src).unwrap();
        let sums = Summaries::compute(&tp);
        let an = analyze_function(&tp, &sums, func).unwrap();
        check_function(&tp, &sums, &an, func)
    }

    #[test]
    fn scale_loop_is_parallelizable() {
        let cs = checks(programs::LIST_SCALE_ADDS, "scale");
        assert_eq!(cs.len(), 1);
        assert!(cs[0].parallelizable, "{:?}", cs[0].reasons);
        let p = cs[0].pattern.as_ref().unwrap();
        assert_eq!(p.var, "p");
        assert_eq!(p.field, "next");
    }

    #[test]
    fn scale_without_adds_is_not() {
        let cs = checks(programs::LIST_SCALE_PLAIN, "scale");
        assert!(!cs[0].parallelizable);
        assert!(cs[0].reasons.iter().any(|r| r.contains("uniquely forward")));
    }

    #[test]
    fn bhl1_is_parallelizable() {
        let cs = checks(programs::BARNES_HUT, "bhl1");
        assert_eq!(cs.len(), 1);
        assert!(cs[0].parallelizable, "{:?}", cs[0].reasons);
    }

    #[test]
    fn bhl2_is_parallelizable() {
        let cs = checks(programs::BARNES_HUT, "bhl2");
        assert!(cs[0].parallelizable, "{:?}", cs[0].reasons);
    }

    #[test]
    fn build_tree_loop_is_rejected() {
        let cs = checks(programs::BARNES_HUT, "build_tree");
        let c = cs
            .iter()
            .find(|c| c.pattern.as_ref().is_some_and(|p| p.var == "p"))
            .unwrap();
        assert!(!c.parallelizable);
        assert!(
            c.reasons.iter().any(|r| r.contains("pointer fields")
                || r.contains("re-bound")
                || r.contains("writes through")),
            "{:?}",
            c.reasons
        );
    }

    #[test]
    fn accumulator_loop_is_rejected() {
        let cs = checks(programs::LIST_SUM, "sum");
        assert!(!cs[0].parallelizable);
        assert!(
            cs[0].reasons.iter().any(|r| r.contains("scalar")),
            "{:?}",
            cs[0].reasons
        );
    }

    #[test]
    fn force_writing_positions_would_be_rejected() {
        // A corrupted BHL1 whose "force" computation writes x — which other
        // iterations read through the tree. Field disjointness must fail.
        let src = "
            type O [down][leaves] {
                real mass, x, fx;
                bool is_leaf;
                O *kids[8] is uniquely forward along down;
                O *next is uniquely forward along leaves;
            };
            procedure bad_force(p: O*, node: O*) {
                var i: int;
                if node == NULL { return; }
                p->x = p->x + node->x;
                for i = 0 to 7 {
                    bad_force(p, node->kids[i]);
                }
            }
            procedure loop1(particles: O*, root: O*) {
                var p: O*;
                p = particles;
                while p <> NULL {
                    bad_force(p, root);
                    p = p->next;
                }
            }";
        let cs = checks(src, "loop1");
        assert!(!cs[0].parallelizable);
        assert!(
            cs[0].reasons.iter().any(|r| r.contains("also read")),
            "{:?}",
            cs[0].reasons
        );
    }

    #[test]
    fn writing_the_advance_field_is_rejected() {
        let src = "
            type L [X] { int v; L *next is uniquely forward along X; };
            procedure cut(head: L*) {
                var p: L*;
                p = head;
                while p <> NULL {
                    p->next = NULL;
                    p = p->next;
                }
            }";
        let cs = checks(src, "cut");
        assert!(!cs[0].parallelizable);
    }

    #[test]
    fn broken_abstraction_disables_parallelization() {
        // The list is corrupted (a cycle is created) before the loop; the
        // uniquely-forward property can no longer be relied upon.
        let src = "
            type L [X] { int v; L *next is uniquely forward along X; };
            procedure walk(head: L*) {
                var p: L*;
                var q: L*;
                q = head->next;
                q->next = head;
                p = head;
                while p <> NULL {
                    p->v = 0;
                    p = p->next;
                }
            }";
        let cs = checks(src, "walk");
        assert!(!cs[0].parallelizable);
        assert!(
            cs[0].reasons.iter().any(|r| r.contains("broken")),
            "{:?}",
            cs[0].reasons
        );
    }

    #[test]
    fn non_chase_loops_are_classified() {
        let src = "
            type L [X] { int v; L *next is uniquely forward along X; };
            procedure f(head: L*, n: int) {
                var i: int;
                i = 0;
                while i < n {
                    i = i + 1;
                }
            }";
        let cs = checks(src, "f");
        assert!(!cs[0].parallelizable);
        assert!(cs[0].pattern.is_none());
    }
}
