//! Loop dependence testing for pointer-chasing loops (§4.3.2–4.3.3).
//!
//! A loop of the shape
//!
//! ```text
//! while p <> NULL { body(p); p = p->f; }
//! ```
//!
//! is parallelizable when the analysis can show that no two iterations
//! conflict. The conditions implemented here are the paper's:
//!
//! 1. `f` is `uniquely forward` and the abstraction for it is **valid** at
//!    loop entry, so `p = p->f` always moves to a *new* node
//!    (the path matrix fixpoint must show `PM(p', p)` no-alias);
//! 2. the body **writes only within `p`'s iteration-local region**: either
//!    `p`'s own node, or nodes reached from it along a summarized inner
//!    chase whose link fields are uniquely forward on a dimension
//!    independent of `f` (so the regions of distinct iterations are
//!    disjoint) — and it mutates **no pointer fields** anywhere;
//! 3. any data read through *other* (loop-invariant) pointers — e.g. the
//!    octree via `root` — is read-only **in the fields the body writes**:
//!    the written field set must be disjoint from every reachable read set,
//!    since `p`'s node may itself be reachable from those pointers;
//! 4. no scalar or pointer value carries a dependence across iterations
//!    (accumulators and cursors read before being re-bound disqualify the
//!    loop).
//!
//! The check itself is small: it recognizes the chase pattern, then queries
//! the composed [`EffectSummary`] of the body (`core::effects`), which
//! summarizes blocks, branches, and inner loops bottom-up. Inner cursor
//! rebinding is a local effect of the summary, not a rejection — this is
//! what licenses the orthogonal-list row loop (`orth_row_scale`).

use crate::analysis::FnAnalysis;
use crate::effects::{self, Access, EffectSummary, Via, FRESH_ROOT};
use crate::summary::Summaries;
use adds_lang::ast::*;
use adds_lang::source::Span;
use adds_lang::types::TypedProgram;
use std::collections::BTreeSet;

/// The recognized pointer-chase pattern of a loop.
#[derive(Clone, Debug, PartialEq)]
pub struct ChasePattern {
    /// The loop-carried pointer variable (`p`).
    pub var: String,
    /// Its record type.
    pub record: String,
    /// The advancing field (`next`).
    pub field: String,
    /// Index (in `body.stmts`) of the advance statement `p = p->field`.
    pub advance_idx: usize,
}

/// A machine-readable reason a loop was not parallelized. [`Reason::code`]
/// is the stable identifier reports key on; `Display` renders the
/// human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reason {
    /// The loop condition is not `p <> NULL`.
    NotChaseCondition,
    /// The condition variable is not a pointer.
    NotPointerVar {
        /// The offending variable.
        var: String,
    },
    /// The cursor is advanced more than once per iteration.
    MultipleAdvance {
        /// The cursor variable.
        var: String,
    },
    /// The cursor is assigned something other than `var-><field>`.
    NonAdvanceAssign {
        /// The cursor variable.
        var: String,
    },
    /// The cursor is assigned inside nested control flow.
    CursorAssignedInNested {
        /// The cursor variable.
        var: String,
    },
    /// No advance statement was found.
    NoAdvance {
        /// The cursor variable.
        var: String,
    },
    /// The advance statement is not the last statement of the body.
    AdvanceNotLast,
    /// The advance field is not declared `uniquely forward`.
    NotUniquelyForward {
        /// The record type.
        record: String,
        /// The advance field.
        field: String,
    },
    /// The record carries no ADDS declaration at all.
    NoAddsDecl {
        /// The record type.
        record: String,
    },
    /// The route abstraction is broken at loop entry.
    AbstractionBroken {
        /// The record type.
        record: String,
        /// The advance field.
        field: String,
    },
    /// The path matrix fixpoint cannot prove the cursor moves to a new node.
    MayRevisit {
        /// The cursor variable.
        var: String,
    },
    /// The loop has no recorded analysis.
    NotAnalyzed,
    /// The body mutates pointer fields (shape changes).
    PtrFieldMutated,
    /// The body writes through a pointer other than the cursor.
    ForeignWrite {
        /// The loop-invariant root written through.
        root: String,
        /// The cursor variable.
        var: String,
    },
    /// The body writes beyond the cursor's node along a chain that is not
    /// provably iteration-local.
    UnlicensedReachableWrite {
        /// The cursor variable.
        var: String,
        /// The traversed link fields (empty for an unknown chain).
        via: Vec<String>,
    },
    /// Written fields are also read through other pointers.
    FieldConflict {
        /// The overlapping fields.
        fields: Vec<String>,
    },
    /// The body writes the advance field itself.
    AdvanceFieldWritten {
        /// The advance field.
        field: String,
    },
    /// A scalar carries a dependence across iterations.
    CarriedScalar {
        /// The scalar variable.
        var: String,
    },
    /// A pointer variable's value crosses iterations (read before re-bound,
    /// or live after the loop).
    CarriedPointer {
        /// The pointer variable.
        var: String,
    },
    /// The body returns out of the loop.
    ReturnsFromLoop,
    /// The effect summary lost precision.
    Opaque {
        /// What could not be summarized.
        note: String,
    },
}

impl Reason {
    /// The stable machine-readable code for this reason.
    pub fn code(&self) -> &'static str {
        match self {
            Reason::NotChaseCondition => "not_chase_condition",
            Reason::NotPointerVar { .. } => "not_pointer_var",
            Reason::MultipleAdvance { .. } => "multiple_advance",
            Reason::NonAdvanceAssign { .. } => "non_advance_assign",
            Reason::CursorAssignedInNested { .. } => "cursor_assigned_in_nested",
            Reason::NoAdvance { .. } => "no_advance",
            Reason::AdvanceNotLast => "advance_not_last",
            Reason::NotUniquelyForward { .. } => "not_uniquely_forward",
            Reason::NoAddsDecl { .. } => "no_adds_decl",
            Reason::AbstractionBroken { .. } => "abstraction_broken",
            Reason::MayRevisit { .. } => "may_revisit",
            Reason::NotAnalyzed => "not_analyzed",
            Reason::PtrFieldMutated => "ptr_field_mutated",
            Reason::ForeignWrite { .. } => "foreign_write",
            Reason::UnlicensedReachableWrite { .. } => "unlicensed_reachable_write",
            Reason::FieldConflict { .. } => "field_conflict",
            Reason::AdvanceFieldWritten { .. } => "advance_field_written",
            Reason::CarriedScalar { .. } => "carried_scalar",
            Reason::CarriedPointer { .. } => "carried_pointer",
            Reason::ReturnsFromLoop => "returns_from_loop",
            Reason::Opaque { .. } => "opaque",
        }
    }

    /// Substring test on the rendered message (convenience for tests and
    /// report filters that predate the structured codes).
    pub fn contains(&self, needle: &str) -> bool {
        self.to_string().contains(needle)
    }

    /// Every stable reason code, in variant declaration order. This is the
    /// service's public vocabulary: `docs/reasons.md` documents each entry
    /// and a test pins the two lists together so neither can drift.
    pub const ALL_CODES: &'static [&'static str] = &[
        "not_chase_condition",
        "not_pointer_var",
        "multiple_advance",
        "non_advance_assign",
        "cursor_assigned_in_nested",
        "no_advance",
        "advance_not_last",
        "not_uniquely_forward",
        "no_adds_decl",
        "abstraction_broken",
        "may_revisit",
        "not_analyzed",
        "ptr_field_mutated",
        "foreign_write",
        "unlicensed_reachable_write",
        "field_conflict",
        "advance_field_written",
        "carried_scalar",
        "carried_pointer",
        "returns_from_loop",
        "opaque",
    ];

    /// One sample of every variant, in declaration order (field contents
    /// are placeholders). The match below is intentionally exhaustive
    /// *without* a wildcard: adding a `Reason` variant fails compilation
    /// here until the sample list — and with it [`Reason::ALL_CODES`] and
    /// `docs/reasons.md` — is updated.
    pub fn samples() -> Vec<Reason> {
        let v = || "p".to_string();
        let samples = vec![
            Reason::NotChaseCondition,
            Reason::NotPointerVar { var: v() },
            Reason::MultipleAdvance { var: v() },
            Reason::NonAdvanceAssign { var: v() },
            Reason::CursorAssignedInNested { var: v() },
            Reason::NoAdvance { var: v() },
            Reason::AdvanceNotLast,
            Reason::NotUniquelyForward {
                record: "T".to_string(),
                field: "next".to_string(),
            },
            Reason::NoAddsDecl {
                record: "T".to_string(),
            },
            Reason::AbstractionBroken {
                record: "T".to_string(),
                field: "next".to_string(),
            },
            Reason::MayRevisit { var: v() },
            Reason::NotAnalyzed,
            Reason::PtrFieldMutated,
            Reason::ForeignWrite {
                root: "head".to_string(),
                var: v(),
            },
            Reason::UnlicensedReachableWrite {
                var: v(),
                via: vec!["next".to_string()],
            },
            Reason::FieldConflict {
                fields: vec!["data".to_string()],
            },
            Reason::AdvanceFieldWritten {
                field: "next".to_string(),
            },
            Reason::CarriedScalar { var: v() },
            Reason::CarriedPointer { var: v() },
            Reason::ReturnsFromLoop,
            Reason::Opaque {
                note: "note".to_string(),
            },
        ];
        // Exhaustiveness guard: every variant must appear above. A new
        // variant makes this match non-exhaustive and the build fails,
        // pointing the author at the sample list and ALL_CODES.
        for s in &samples {
            match s {
                Reason::NotChaseCondition
                | Reason::NotPointerVar { .. }
                | Reason::MultipleAdvance { .. }
                | Reason::NonAdvanceAssign { .. }
                | Reason::CursorAssignedInNested { .. }
                | Reason::NoAdvance { .. }
                | Reason::AdvanceNotLast
                | Reason::NotUniquelyForward { .. }
                | Reason::NoAddsDecl { .. }
                | Reason::AbstractionBroken { .. }
                | Reason::MayRevisit { .. }
                | Reason::NotAnalyzed
                | Reason::PtrFieldMutated
                | Reason::ForeignWrite { .. }
                | Reason::UnlicensedReachableWrite { .. }
                | Reason::FieldConflict { .. }
                | Reason::AdvanceFieldWritten { .. }
                | Reason::CarriedScalar { .. }
                | Reason::CarriedPointer { .. }
                | Reason::ReturnsFromLoop
                | Reason::Opaque { .. } => {}
            }
        }
        samples
    }
}

impl std::fmt::Display for Reason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reason::NotChaseCondition => write!(f, "loop condition is not `p <> NULL`"),
            Reason::NotPointerVar { var } => write!(f, "`{var}` is not a pointer variable"),
            Reason::MultipleAdvance { var } => write!(f, "`{var}` is advanced more than once"),
            Reason::NonAdvanceAssign { var } => write!(
                f,
                "`{var}` is assigned something other than `{var}-><field>`"
            ),
            Reason::CursorAssignedInNested { var } => {
                write!(f, "`{var}` is assigned inside nested control flow")
            }
            Reason::NoAdvance { var } => {
                write!(f, "no advance statement `{var} = {var}-><field>`")
            }
            Reason::AdvanceNotLast => {
                write!(f, "advance statement is not the last statement of the body")
            }
            Reason::NotUniquelyForward { record, field } => write!(
                f,
                "field `{field}` of `{record}` is not declared `uniquely forward`"
            ),
            Reason::NoAddsDecl { record } => write!(f, "`{record}` has no ADDS declaration"),
            Reason::AbstractionBroken { record, field } => write!(
                f,
                "abstraction for `{record}.{field}` is broken at loop entry"
            ),
            Reason::MayRevisit { var } => write!(
                f,
                "analysis cannot prove `{var}` moves to a new node each iteration"
            ),
            Reason::NotAnalyzed => write!(f, "loop was not analyzed"),
            Reason::PtrFieldMutated => write!(f, "body mutates pointer fields (shape changes)"),
            Reason::ForeignWrite { root, var } => {
                write!(f, "body writes through `{root}`, not only through `{var}`")
            }
            Reason::UnlicensedReachableWrite { var, via } => {
                if via.is_empty() {
                    write!(
                        f,
                        "body writes to nodes *reachable* from `{var}` along an \
                         unknown chain, not just `{var}`'s node"
                    )
                } else {
                    write!(
                        f,
                        "body writes to nodes *reachable* from `{var}` via {{{}}}, and \
                         the chain is not provably iteration-local",
                        via.join(",")
                    )
                }
            }
            Reason::FieldConflict { fields } => write!(
                f,
                "written fields {fields:?} are also read through other pointers"
            ),
            Reason::AdvanceFieldWritten { field } => {
                write!(f, "body writes the advance field `{field}`")
            }
            Reason::CarriedScalar { var } => {
                write!(f, "scalar `{var}` carries a dependence across iterations")
            }
            Reason::CarriedPointer { var } => write!(
                f,
                "pointer variable `{var}` is re-bound inside the body and its \
                 value crosses iterations"
            ),
            Reason::ReturnsFromLoop => write!(f, "body returns out of the loop"),
            Reason::Opaque { note } => write!(f, "effect summary lost precision: {note}"),
        }
    }
}

/// Verdict for one loop.
#[derive(Clone, Debug)]
pub struct LoopCheck {
    /// The loop's source span.
    pub span: Span,
    /// The recognized chase pattern, if any.
    pub pattern: Option<ChasePattern>,
    /// Whether strip-mining is licensed.
    pub parallelizable: bool,
    /// Structured reasons when not parallelizable.
    pub reasons: Vec<Reason>,
    /// The composed effect summary of the body (minus the advance), when the
    /// chase pattern was recognized. Transformations consume this instead of
    /// re-scanning the body.
    pub effects: Option<EffectSummary>,
}

/// Check every `while` loop of `func` for strip-mine parallelizability.
pub fn check_function(
    tp: &TypedProgram,
    sums: &Summaries,
    an: &FnAnalysis,
    func: &str,
) -> Vec<LoopCheck> {
    let Some(f) = tp.program.func(func) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    collect_whiles(&f.body, &mut |cond, body, span| {
        out.push(check_loop_inner(tp, sums, an, f, func, cond, body, span));
    });
    out
}

/// Check a single `while` loop (identified by its span) of `func`.
pub fn check_loop(
    tp: &TypedProgram,
    sums: &Summaries,
    an: &FnAnalysis,
    func: &str,
    span: Span,
) -> Option<LoopCheck> {
    check_function(tp, sums, an, func)
        .into_iter()
        .find(|c| c.span.start == span.start)
}

fn collect_whiles(b: &Block, visit: &mut impl FnMut(&Expr, &Block, Span)) {
    for s in &b.stmts {
        match s {
            Stmt::While { cond, body, span } => {
                visit(cond, body, *span);
                collect_whiles(body, visit);
            }
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                collect_whiles(then_blk, visit);
                if let Some(e) = else_blk {
                    collect_whiles(e, visit);
                }
            }
            Stmt::For { body, .. } => collect_whiles(body, visit),
            _ => {}
        }
    }
}

fn failed(span: Span, reasons: Vec<Reason>) -> LoopCheck {
    LoopCheck {
        span,
        pattern: None,
        parallelizable: false,
        reasons,
        effects: None,
    }
}

#[allow(clippy::too_many_arguments)]
fn check_loop_inner(
    tp: &TypedProgram,
    sums: &Summaries,
    an: &FnAnalysis,
    f: &FunDecl,
    func: &str,
    cond: &Expr,
    body: &Block,
    span: Span,
) -> LoopCheck {
    let mut reasons = Vec::new();

    // ---- (a) recognize the chase pattern -------------------------------
    // `while p <> NULL`, with exactly one top-level advance `p = p->f` and
    // no other assignment to `p` anywhere in the body.
    let var = match effects::chase_cond_var(cond) {
        Some(v) => v,
        None => return failed(span, vec![Reason::NotChaseCondition]),
    };
    let record = match tp.var_ty(func, &var) {
        Some(Ty::Ptr(r)) => r.clone(),
        _ => return failed(span, vec![Reason::NotPointerVar { var }]),
    };

    let mut advance: Option<(usize, String)> = None;
    for (i, s) in body.stmts.iter().enumerate() {
        if let Stmt::Assign { lhs, rhs, .. } = s {
            if lhs.is_var() && lhs.base == var {
                match rhs.as_pointer_path() {
                    Some((base, fields)) if base == var && fields.len() == 1 => {
                        if advance.is_some() {
                            reasons.push(Reason::MultipleAdvance { var: var.clone() });
                        }
                        advance = Some((i, fields[0].clone()));
                    }
                    _ => reasons.push(Reason::NonAdvanceAssign { var: var.clone() }),
                }
            }
        } else if assigns_var_deep(s, &var) {
            reasons.push(Reason::CursorAssignedInNested { var: var.clone() });
        }
    }
    let Some((advance_idx, field)) = advance else {
        reasons.push(Reason::NoAdvance { var });
        return failed(span, reasons);
    };
    if advance_idx + 1 != body.stmts.len() {
        reasons.push(Reason::AdvanceNotLast);
    }
    let pattern = ChasePattern {
        var: var.clone(),
        record: record.clone(),
        field: field.clone(),
        advance_idx,
    };

    // ---- condition 1: uniquely-forward advance + valid abstraction -----
    match tp.adds.get(&record) {
        Some(t) if t.is_uniquely_forward(&field) => {}
        Some(_) => reasons.push(Reason::NotUniquelyForward {
            record: record.clone(),
            field: field.clone(),
        }),
        None => reasons.push(Reason::NoAddsDecl {
            record: record.clone(),
        }),
    }
    let analyzed_loop = an.loop_at(span);
    let loop_head = analyzed_loop.map(|lp| &lp.head);
    if let Some(lp) = analyzed_loop {
        if !lp.head.abstraction_valid(&record, &field) {
            reasons.push(Reason::AbstractionBroken {
                record: record.clone(),
                field: field.clone(),
            });
        }
        // The fixpoint must show consecutive iterations on distinct nodes.
        let primed = crate::matrix::primed(&var);
        if lp.bottom.pm.has_var(&primed) && lp.bottom.pm.get(&primed, &var).may_alias() {
            reasons.push(Reason::MayRevisit { var: var.clone() });
        }
    } else {
        reasons.push(Reason::NotAnalyzed);
    }

    // ---- (b) query the composed effect summary of the body -------------
    let fx = effects::summarize_loop_body(tp, sums, func, body, advance_idx);

    if fx.returns {
        reasons.push(Reason::ReturnsFromLoop);
    }
    for note in &fx.opaque {
        reasons.push(Reason::Opaque { note: note.clone() });
    }

    // Condition 2a: no pointer-field mutation anywhere.
    if !fx.ptr_writes.is_empty() {
        reasons.push(Reason::PtrFieldMutated);
    }

    // Condition 2b: every scalar write lands in the cursor's
    // iteration-local region.
    let mut written_fields: BTreeSet<String> = BTreeSet::new();
    let mut foreign_roots: BTreeSet<String> = BTreeSet::new();
    let mut unlicensed_vias: BTreeSet<Vec<String>> = BTreeSet::new();
    for a in fx.writes.iter().chain(fx.ptr_writes.iter()) {
        if a.root == FRESH_ROOT {
            continue; // nodes allocated this iteration are private
        }
        if a.root != var {
            foreign_roots.insert(a.root.clone());
            continue;
        }
        if region_is_iteration_local(tp, loop_head, &field, &a.via) {
            written_fields.insert(a.field.clone());
        } else {
            unlicensed_vias.insert(via_fields(&a.via));
            written_fields.insert(a.field.clone());
        }
    }
    for root in foreign_roots {
        reasons.push(Reason::ForeignWrite {
            root,
            var: var.clone(),
        });
    }
    for via in unlicensed_vias {
        reasons.push(Reason::UnlicensedReachableWrite {
            var: var.clone(),
            via,
        });
    }

    // Condition 3: field disjointness between written fields and reads that
    // may reach another iteration's region.
    let mut reachable_reads: BTreeSet<String> = BTreeSet::new();
    for a in &fx.reads {
        if a.root == FRESH_ROOT {
            continue;
        }
        if a.root == var && region_is_iteration_local(tp, loop_head, &field, &a.via) {
            continue; // the iteration's own region
        }
        reachable_reads.insert(a.field.clone());
    }
    let overlap: Vec<String> = written_fields
        .intersection(&reachable_reads)
        .cloned()
        .collect();
    if !overlap.is_empty() {
        reasons.push(Reason::FieldConflict { fields: overlap });
    }
    // The advance field must never be written.
    if written_fields.contains(&field) {
        reasons.push(Reason::AdvanceFieldWritten {
            field: field.clone(),
        });
    }

    // Condition 4: carried scalars and carried pointers.
    for v in fx.scalar_writes.intersection(&fx.scalar_reads) {
        reasons.push(Reason::CarriedScalar { var: v.clone() });
    }
    for v in &fx.ptr_rebound {
        if v == &var {
            continue; // the cursor's own rebinding is the (checked) advance
        }
        // A re-bound pointer is iteration-private only if the region never
        // uses its entry value and the variable is dead after the loop.
        if fx.ptr_reads_before_bind.contains(v) || var_used_outside_loop(f, span, v) {
            reasons.push(Reason::CarriedPointer { var: v.clone() });
        }
    }

    LoopCheck {
        span,
        pattern: Some(pattern),
        parallelizable: reasons.is_empty(),
        reasons,
        effects: Some(fx),
    }
}

fn via_fields(via: &Via) -> Vec<String> {
    match via {
        Via::Fields(s) => s.iter().cloned().collect(),
        Via::Any => Vec::new(),
    }
}

/// Is the region `via(p)` guaranteed disjoint from `via(q)` for distinct
/// iterations' cursors `p`, `q` (where `q = advance_field+(p)`)?
///
/// * The cursor's own node (`via` empty) always is: condition 1 proves the
///   cursor moves to a new node each iteration.
/// * A star-closed chain along exactly ONE link field `g` is
///   iteration-local when `g` is `uniquely forward` (two `g*` chains that
///   share a node must have one head inside the other's chain — uniqueness
///   forbids a second `g` predecessor), is not the advance field itself,
///   travels a dimension declared **independent** of the advance field's
///   dimension (`where X||Y`, so one cursor cannot sit inside the other's
///   chain: it would be reachable along both pure dimensions), and its
///   route abstraction is intact at loop entry.
/// * A chain mixing SEVERAL link fields is never licensed, even when each
///   field passes the test pairwise: per-field uniqueness allows a node to
///   carry one predecessor per field, so two mixed-field regions can merge
///   without either chain containing the other's head.
/// * An unknown chain (`Via::Any`) never is.
fn region_is_iteration_local(
    tp: &TypedProgram,
    loop_head: Option<&crate::analysis::State>,
    advance_field: &str,
    via: &Via,
) -> bool {
    let Via::Fields(fields) = via else {
        return false;
    };
    if fields.len() > 1 {
        return false;
    }
    fields.iter().all(|g| {
        g != advance_field
            && loop_head.is_some_and(|h| h.field_trustworthy(g))
            && field_uniquely_forward(tp, g)
            && fields_provably_independent(tp, g, advance_field)
    })
}

/// Is `g` declared `uniquely forward` in *every* record type that declares
/// it (and in at least one)?
fn field_uniquely_forward(tp: &TypedProgram, g: &str) -> bool {
    let mut seen = false;
    for t in tp.adds.types() {
        if t.field(g).is_some() {
            if !t.is_uniquely_forward(g) {
                return false;
            }
            seen = true;
        }
    }
    seen
}

/// Do `g` and `f` travel independent dimensions in every record type that
/// declares both (and in at least one)?
fn fields_provably_independent(tp: &TypedProgram, g: &str, f: &str) -> bool {
    let mut seen = false;
    for t in tp.adds.types() {
        if t.field(g).is_some() && t.field(f).is_some() {
            if !t.fields_on_independent_dims(g, f) {
                return false;
            }
            seen = true;
        }
    }
    seen
}

fn assigns_var_deep(s: &Stmt, var: &str) -> bool {
    match s {
        Stmt::Assign { lhs, .. } => lhs.is_var() && lhs.base == var,
        Stmt::VarDecl { name, .. } => name == var,
        Stmt::While { body, .. } | Stmt::For { body, .. } => {
            body.stmts.iter().any(|s| assigns_var_deep(s, var))
        }
        Stmt::If {
            then_blk, else_blk, ..
        } => {
            then_blk.stmts.iter().any(|s| assigns_var_deep(s, var))
                || else_blk
                    .as_ref()
                    .is_some_and(|b| b.stmts.iter().any(|s| assigns_var_deep(s, var)))
        }
        _ => false,
    }
}

/// Is `var`'s value used anywhere in `f` outside the loop at `loop_span`?
/// (Re-bound loop cursors must be dead after the loop for the strip-mined
/// form — where the cursor becomes helper-local — to preserve semantics.)
fn var_used_outside_loop(f: &FunDecl, loop_span: Span, var: &str) -> bool {
    fn expr_uses(e: &Expr, var: &str) -> bool {
        match e {
            Expr::Var(v, _) => v == var,
            Expr::Field { base, index, .. } => {
                expr_uses(base, var) || index.as_deref().is_some_and(|i| expr_uses(i, var))
            }
            Expr::Unary { operand, .. } => expr_uses(operand, var),
            Expr::Binary { lhs, rhs, .. } => expr_uses(lhs, var) || expr_uses(rhs, var),
            Expr::Call(c) => c.args.iter().any(|a| expr_uses(a, var)),
            _ => false,
        }
    }
    fn block_uses(b: &Block, loop_span: Span, var: &str) -> bool {
        b.stmts.iter().any(|s| stmt_uses(s, loop_span, var))
    }
    fn stmt_uses(s: &Stmt, loop_span: Span, var: &str) -> bool {
        match s {
            Stmt::While { cond, body, span } => {
                if span.start == loop_span.start {
                    return false; // the loop under test
                }
                expr_uses(cond, var) || block_uses(body, loop_span, var)
            }
            Stmt::Assign { lhs, rhs, .. } => {
                (!lhs.is_var() && lhs.base == var)
                    || lhs
                        .path
                        .iter()
                        .any(|a| a.index.as_deref().is_some_and(|i| expr_uses(i, var)))
                    || expr_uses(rhs, var)
            }
            Stmt::VarDecl { init, .. } => init.as_ref().is_some_and(|e| expr_uses(e, var)),
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                expr_uses(cond, var)
                    || block_uses(then_blk, loop_span, var)
                    || else_blk
                        .as_ref()
                        .is_some_and(|e| block_uses(e, loop_span, var))
            }
            Stmt::For { from, to, body, .. } => {
                expr_uses(from, var) || expr_uses(to, var) || block_uses(body, loop_span, var)
            }
            Stmt::Return { value, .. } => value.as_ref().is_some_and(|e| expr_uses(e, var)),
            Stmt::Call(c) => c.args.iter().any(|a| expr_uses(a, var)),
        }
    }
    block_uses(&f.body, loop_span, var)
}

/// Render a check's effect summary for reports: writes/reads as access
/// paths, plus the summarized inner advance relations.
pub fn render_effects(fx: &EffectSummary) -> (Vec<String>, Vec<String>, Vec<String>, Vec<String>) {
    let writes: Vec<String> = fx.writes.iter().map(Access::render).collect();
    let reads: Vec<String> = fx.reads.iter().map(Access::render).collect();
    let ptr_writes: Vec<String> = fx.ptr_writes.iter().map(Access::render).collect();
    let advances: Vec<String> = fx
        .advances
        .iter()
        .flat_map(|(q, gs)| gs.iter().map(move |g| format!("{q} via {g}")))
        .collect();
    (writes, reads, ptr_writes, advances)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_function;
    use adds_lang::programs;
    use adds_lang::types::check_source;

    fn checks(src: &str, func: &str) -> Vec<LoopCheck> {
        let tp = check_source(src).unwrap();
        let sums = Summaries::compute(&tp);
        let an = analyze_function(&tp, &sums, func).unwrap();
        check_function(&tp, &sums, &an, func)
    }

    #[test]
    fn scale_loop_is_parallelizable() {
        let cs = checks(programs::LIST_SCALE_ADDS, "scale");
        assert_eq!(cs.len(), 1);
        assert!(cs[0].parallelizable, "{:?}", cs[0].reasons);
        let p = cs[0].pattern.as_ref().unwrap();
        assert_eq!(p.var, "p");
        assert_eq!(p.field, "next");
    }

    #[test]
    fn scale_without_adds_is_not() {
        let cs = checks(programs::LIST_SCALE_PLAIN, "scale");
        assert!(!cs[0].parallelizable);
        assert!(cs[0].reasons.iter().any(|r| r.contains("uniquely forward")));
        assert!(cs[0]
            .reasons
            .iter()
            .any(|r| r.code() == "not_uniquely_forward"));
    }

    #[test]
    fn bhl1_is_parallelizable() {
        let cs = checks(programs::BARNES_HUT, "bhl1");
        assert_eq!(cs.len(), 1);
        assert!(cs[0].parallelizable, "{:?}", cs[0].reasons);
    }

    #[test]
    fn bhl2_is_parallelizable() {
        let cs = checks(programs::BARNES_HUT, "bhl2");
        assert!(cs[0].parallelizable, "{:?}", cs[0].reasons);
    }

    #[test]
    fn build_tree_loop_is_rejected() {
        let cs = checks(programs::BARNES_HUT, "build_tree");
        let c = cs
            .iter()
            .find(|c| c.pattern.as_ref().is_some_and(|p| p.var == "p"))
            .unwrap();
        assert!(!c.parallelizable);
        assert!(
            c.reasons.iter().any(|r| r.contains("pointer fields")
                || r.contains("re-bound")
                || r.contains("writes through")),
            "{:?}",
            c.reasons
        );
    }

    #[test]
    fn accumulator_loop_is_rejected() {
        let cs = checks(programs::LIST_SUM, "sum");
        assert!(!cs[0].parallelizable);
        assert!(
            cs[0].reasons.iter().any(|r| r.contains("scalar")),
            "{:?}",
            cs[0].reasons
        );
        assert!(cs[0].reasons.iter().any(|r| r.code() == "carried_scalar"));
    }

    #[test]
    fn force_writing_positions_would_be_rejected() {
        // A corrupted BHL1 whose "force" computation writes x — which other
        // iterations read through the tree. Field disjointness must fail.
        let src = "
            type O [down][leaves] {
                real mass, x, fx;
                bool is_leaf;
                O *kids[8] is uniquely forward along down;
                O *next is uniquely forward along leaves;
            };
            procedure bad_force(p: O*, node: O*) {
                var i: int;
                if node == NULL { return; }
                p->x = p->x + node->x;
                for i = 0 to 7 {
                    bad_force(p, node->kids[i]);
                }
            }
            procedure loop1(particles: O*, root: O*) {
                var p: O*;
                p = particles;
                while p <> NULL {
                    bad_force(p, root);
                    p = p->next;
                }
            }";
        let cs = checks(src, "loop1");
        assert!(!cs[0].parallelizable);
        assert!(
            cs[0].reasons.iter().any(|r| r.contains("also read")),
            "{:?}",
            cs[0].reasons
        );
        assert!(cs[0].reasons.iter().any(|r| r.code() == "field_conflict"));
    }

    #[test]
    fn writing_the_advance_field_is_rejected() {
        let src = "
            type L [X] { int v; L *next is uniquely forward along X; };
            procedure cut(head: L*) {
                var p: L*;
                p = head;
                while p <> NULL {
                    p->next = NULL;
                    p = p->next;
                }
            }";
        let cs = checks(src, "cut");
        assert!(!cs[0].parallelizable);
    }

    #[test]
    fn broken_abstraction_disables_parallelization() {
        // The list is corrupted (a cycle is created) before the loop; the
        // uniquely-forward property can no longer be relied upon.
        let src = "
            type L [X] { int v; L *next is uniquely forward along X; };
            procedure walk(head: L*) {
                var p: L*;
                var q: L*;
                q = head->next;
                q->next = head;
                p = head;
                while p <> NULL {
                    p->v = 0;
                    p = p->next;
                }
            }";
        let cs = checks(src, "walk");
        assert!(!cs[0].parallelizable);
        assert!(
            cs[0].reasons.iter().any(|r| r.contains("broken")),
            "{:?}",
            cs[0].reasons
        );
    }

    #[test]
    fn non_chase_loops_are_classified() {
        let src = "
            type L [X] { int v; L *next is uniquely forward along X; };
            procedure f(head: L*, n: int) {
                var i: int;
                i = 0;
                while i < n {
                    i = i + 1;
                }
            }";
        let cs = checks(src, "f");
        assert!(!cs[0].parallelizable);
        assert!(cs[0].pattern.is_none());
    }

    // ------------------------------------------------- nested chase loops

    #[test]
    fn orth_row_scale_outer_loop_is_licensed() {
        // The orthogonal-list row loop: the inner `across` walk is a
        // summarized local effect, and the `where X||Y` declaration proves
        // the row regions of distinct iterations disjoint.
        let cs = checks(programs::ORTH_ROW_SCALE, "scale_rows");
        let outer = cs
            .iter()
            .find(|c| c.pattern.as_ref().is_some_and(|p| p.var == "r"))
            .expect("outer loop recognized");
        assert!(outer.parallelizable, "{:?}", outer.reasons);
        let fx = outer.effects.as_ref().unwrap();
        assert!(fx.advances.contains_key("p"));
    }

    #[test]
    fn dependent_dims_block_the_nested_chase() {
        // Same program but without `where X||Y`: the row chain may run into
        // another iteration's region, so the outer loop must stay serial.
        let src = "
            type OrthList [X] [Y]
            {
                int data;
                OrthList *across is uniquely forward along X;
                OrthList *down is uniquely forward along Y;
            };
            procedure scale_rows(rows: OrthList*, c: int)
            {
                var r: OrthList*;
                var p: OrthList*;
                r = rows;
                while r <> NULL
                {
                    p = r;
                    while p <> NULL
                    {
                        p->data = p->data * c;
                        p = p->across;
                    }
                    r = r->down;
                }
            }";
        let cs = checks(src, "scale_rows");
        let outer = cs
            .iter()
            .find(|c| c.pattern.as_ref().is_some_and(|p| p.var == "r"))
            .unwrap();
        assert!(!outer.parallelizable);
        assert!(
            outer
                .reasons
                .iter()
                .any(|r| r.code() == "unlicensed_reachable_write"),
            "{:?}",
            outer.reasons
        );
    }

    #[test]
    fn inner_chase_along_the_advance_field_is_rejected() {
        // The inner loop chases the SAME field the outer loop advances on:
        // iteration regions overlap (a suffix of the outer chain).
        let src = "
            type L [X] { int v; L *next is uniquely forward along X; };
            procedure smear(head: L*) {
                var p: L*;
                var q: L*;
                p = head;
                while p <> NULL {
                    q = p;
                    while q <> NULL {
                        q->v = 0;
                        q = q->next;
                    }
                    p = p->next;
                }
            }";
        let cs = checks(src, "smear");
        let outer = cs
            .iter()
            .find(|c| c.pattern.as_ref().is_some_and(|p| p.var == "p"))
            .unwrap();
        assert!(!outer.parallelizable, "{:?}", outer.reasons);
    }

    #[test]
    fn cursor_read_before_rebinding_is_carried() {
        // `p` is used at its previous-iteration value before being re-bound:
        // a genuine cross-iteration pointer dependence.
        let src = "
            type OrthList [X] [Y] where X||Y
            {
                int data;
                OrthList *across is uniquely forward along X;
                OrthList *down is uniquely forward along Y;
            };
            procedure bad(rows: OrthList*) {
                var r: OrthList*;
                var p: OrthList*;
                r = rows;
                while r <> NULL {
                    p->data = 0;
                    p = r;
                    r = r->down;
                }
            }";
        let cs = checks(src, "bad");
        let outer = cs
            .iter()
            .find(|c| c.pattern.as_ref().is_some_and(|p| p.var == "r"))
            .unwrap();
        assert!(!outer.parallelizable);
        assert!(
            outer.reasons.iter().any(|r| r.code() == "carried_pointer"),
            "{:?}",
            outer.reasons
        );
    }

    #[test]
    fn conditionally_rebound_pointer_is_carried() {
        // `q` is re-bound only on one branch: when the branch is not taken,
        // the body observes the PREVIOUS iteration's `q` — a cross-iteration
        // pointer dependence no field-conflict check can see.
        let src = "
            type OrthList [X] [Y] where X||Y
            {
                int data, tag;
                OrthList *across is uniquely forward along X;
                OrthList *down is uniquely forward along Y;
            };
            procedure bad(rows: OrthList*, c: int) {
                var r: OrthList*;
                var q: OrthList*;
                r = rows;
                while r <> NULL {
                    if c <> 0 { q = r; }
                    r->data = q->tag;
                    r = r->down;
                }
            }";
        let cs = checks(src, "bad");
        let outer = cs
            .iter()
            .find(|c| c.pattern.as_ref().is_some_and(|p| p.var == "r"))
            .unwrap();
        assert!(!outer.parallelizable);
        assert!(
            outer.reasons.iter().any(|r| r.code() == "carried_pointer"),
            "{:?}",
            outer.reasons
        );
    }

    #[test]
    fn mixed_field_region_is_not_licensed() {
        // Both `across` (X) and `deep` (Z) are pairwise independent of the
        // advance dimension Y, but a region mixing the two fields can merge
        // with another iteration's region without violating either field's
        // uniqueness — only single-field chains are licensed.
        let src = "
            type T [X] [Y] [Z] where X||Y, Z||Y
            {
                int data;
                T *across is uniquely forward along X;
                T *deep is uniquely forward along Z;
                T *down is uniquely forward along Y;
            };
            procedure walk(rows: T*) {
                var r: T*;
                var p: T*;
                r = rows;
                while r <> NULL {
                    p = r;
                    while p <> NULL {
                        p->data = 0;
                        if p->data == 0 { p = p->across; } else { p = p->deep; }
                    }
                    r = r->down;
                }
            }";
        let cs = checks(src, "walk");
        let outer = cs
            .iter()
            .find(|c| c.pattern.as_ref().is_some_and(|p| p.var == "r"))
            .unwrap();
        assert!(
            !outer.parallelizable,
            "mixed-field region must not be licensed"
        );
        assert!(
            outer
                .reasons
                .iter()
                .any(|r| r.code() == "unlicensed_reachable_write"),
            "{:?}",
            outer.reasons
        );
    }

    #[test]
    fn rebound_cursor_live_after_loop_is_carried() {
        // `p`'s final value is read after the loop: hoisting it into a
        // helper would change the program's result.
        let src = "
            type OrthList [X] [Y] where X||Y
            {
                int data;
                OrthList *across is uniquely forward along X;
                OrthList *down is uniquely forward along Y;
            };
            function last(rows: OrthList*): OrthList* {
                var r: OrthList*;
                var p: OrthList*;
                r = rows;
                while r <> NULL {
                    p = r;
                    while p <> NULL {
                        p->data = 0;
                        p = p->across;
                    }
                    r = r->down;
                }
                return p;
            }";
        let cs = checks(src, "last");
        let outer = cs
            .iter()
            .find(|c| c.pattern.as_ref().is_some_and(|p| p.var == "r"))
            .unwrap();
        assert!(!outer.parallelizable);
        assert!(
            outer.reasons.iter().any(|r| r.code() == "carried_pointer"),
            "{:?}",
            outer.reasons
        );
    }

    #[test]
    fn every_reason_has_a_stable_code() {
        let cs = checks(programs::LIST_SCALE_PLAIN, "scale");
        for r in &cs[0].reasons {
            assert!(!r.code().is_empty());
            assert!(!r.to_string().is_empty());
        }
    }
}
