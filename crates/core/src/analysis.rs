//! General path matrix analysis (§3.3).
//!
//! An abstract interpreter over IL functions. At every program point it
//! maintains a [`State`]: the path matrix over live pointer variables plus
//! the set of active abstraction [`Violation`]s. ADDS declarations guide the
//! transfer functions ("pointer rules"): acyclic routes let `p = p->next`
//! prove movement to a new node, `uniquely` routes drive sharing detection,
//! field groups and dimension independence prove sibling disjointness.
//!
//! Loops are analyzed to a fixpoint. At each back-edge, every loop-carried
//! pointer `p` is snapshotted into a primed twin `p'`, so the fixpoint matrix
//! exposes the relation between consecutive iterations (`PM(p', p) = next`),
//! exactly as printed in §3.3.2 of the paper.

use crate::matrix::{primed, PathMatrix};
use crate::paths::{Alias, Desc, Entry};
use crate::summary::{RetSource, Summaries};
use crate::validate::{ValidationEvent, Violation, ViolationKind};
use adds_lang::adds::AddsFieldKind;
use adds_lang::ast::*;
use adds_lang::source::Span;
use adds_lang::types::TypedProgram;
use std::collections::{BTreeMap, BTreeSet};

/// Analysis state at one program point.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct State {
    /// The path matrix at this program point.
    pub pm: PathMatrix,
    /// ADDS properties currently broken (empty = abstraction valid).
    pub violations: BTreeSet<Violation>,
}

impl State {
    /// Control-flow join: the least state describing both inputs.
    pub fn join(&self, other: &State) -> State {
        State {
            pm: self.pm.join(&other.pm),
            violations: self.violations.union(&other.violations).cloned().collect(),
        }
    }

    /// Is the declared abstraction currently valid with respect to the
    /// route property of `type_name::field`?
    pub fn abstraction_valid(&self, type_name: &str, field: &str) -> bool {
        !self.violations.iter().any(|v| v.affects(type_name, field))
    }

    /// Is the abstraction fully valid (no active violations at all)?
    pub fn fully_valid(&self) -> bool {
        self.violations.is_empty()
    }

    /// May declared properties of `field` (acyclicity, uniqueness,
    /// disjointness) be *relied upon* right now? False while any violation
    /// involving the field is active — proofs must not use a property the
    /// program has temporarily broken (§3.3.1).
    pub fn field_trustworthy(&self, field: &str) -> bool {
        !self.violations.iter().any(|v| v.field == field)
    }
}

/// Result of analyzing one loop.
#[derive(Clone, Debug)]
pub struct LoopAnalysis {
    /// The loop's source span.
    pub span: Span,
    /// State at the loop head once the fixpoint is reached (iterations ≥ 1).
    pub head: State,
    /// State at the loop bottom after the *first* iteration — the paper's
    /// "after one iteration" matrix.
    pub first_bottom: State,
    /// State at the loop bottom once the fixpoint is reached — the paper's
    /// "fixed point" matrix.
    pub bottom: State,
}

/// Result of analyzing one function.
#[derive(Clone, Debug)]
pub struct FnAnalysis {
    /// Analyzed function name.
    pub func: String,
    /// State after each statement (in source order of the final pass).
    pub after: Vec<(Span, State)>,
    /// Every loop (any nesting depth), in source order.
    pub loops: Vec<LoopAnalysis>,
    /// Abstraction broken/repaired events, in analysis order.
    pub events: Vec<ValidationEvent>,
    /// State at function exit.
    pub exit: State,
}

impl FnAnalysis {
    /// State immediately after the statement covering `span`.
    pub fn state_after(&self, span: Span) -> Option<&State> {
        self.after
            .iter()
            .find(|(s, _)| s.start == span.start)
            .map(|(_, st)| st)
    }

    /// Analysis of the loop whose span starts at `span`.
    pub fn loop_at(&self, span: Span) -> Option<&LoopAnalysis> {
        self.loops.iter().find(|l| l.span.start == span.start)
    }
}

/// Per-field properties resolved from the ADDS environment, merged across
/// record types (conservatively) so descriptors can be interpreted without
/// carrying their record type.
#[derive(Clone, Debug, Default)]
struct FieldProps {
    direction: Option<Direction>,
    unique: bool,
    is_array: bool,
}

/// Analyze a single function of a typed program.
pub fn analyze_function(tp: &TypedProgram, sums: &Summaries, name: &str) -> Option<FnAnalysis> {
    let f = tp.program.func(name)?;
    let mut field_props: BTreeMap<String, FieldProps> = BTreeMap::new();
    for t in tp.adds.types() {
        for fld in &t.fields {
            if let AddsFieldKind::Pointer {
                array_len, route, ..
            } = &fld.kind
            {
                let p = field_props.entry(fld.name.clone()).or_insert(FieldProps {
                    direction: Some(route.direction),
                    unique: route.unique,
                    is_array: array_len.is_some(),
                });
                // Same field name in several types: merge conservatively.
                if p.direction != Some(route.direction) {
                    p.direction = Some(Direction::Unknown);
                }
                p.unique &= route.unique;
                p.is_array |= array_len.is_some();
            }
        }
    }

    let mut az = Analyzer {
        tp,
        sums,
        fname: name.to_string(),
        field_props,
        var_records: BTreeMap::new(),
        tmp: 0,
        after: Vec::new(),
        loops: Vec::new(),
        events: Vec::new(),
        recording: true,
    };

    let mut state = State::default();
    for (i, p) in f.params.iter().enumerate() {
        let Ty::Ptr(rec) = &p.ty else { continue };
        state.pm.add_var(&p.name);
        az.var_records.insert(p.name.clone(), rec.clone());
        // Same-typed parameters may alias on entry; differently-typed
        // records cannot.
        for q in &f.params[..i] {
            if let Ty::Ptr(qrec) = &q.ty {
                if qrec == rec {
                    state.pm.set_alias(&p.name, &q.name, Alias::Maybe);
                }
            }
        }
    }

    az.block(&f.body, &mut state);
    Some(FnAnalysis {
        func: name.to_string(),
        after: az.after,
        loops: az.loops,
        events: az.events,
        exit: state,
    })
}

struct Analyzer<'a> {
    tp: &'a TypedProgram,
    sums: &'a Summaries,
    fname: String,
    field_props: BTreeMap<String, FieldProps>,
    /// Record type of each pointer variable (params, locals, temps, primes).
    var_records: BTreeMap<String, String>,
    tmp: usize,
    after: Vec<(Span, State)>,
    loops: Vec<LoopAnalysis>,
    events: Vec<ValidationEvent>,
    /// Recording is disabled during the non-final fixpoint sweeps of loops.
    recording: bool,
}

impl<'a> Analyzer<'a> {
    fn props(&self, field: &str) -> FieldProps {
        self.field_props.get(field).cloned().unwrap_or_default()
    }

    fn is_acyclic(&self, field: &str) -> bool {
        matches!(
            self.props(field).direction,
            Some(Direction::Forward) | Some(Direction::Backward)
        )
    }

    fn var_record(&self, v: &str) -> Option<&str> {
        self.var_records.get(v).map(String::as_str)
    }

    /// Record type + field → pointer target record type.
    fn field_target(&self, rec: &str, field: &str) -> Option<String> {
        self.tp
            .field_ty(rec, field)
            .and_then(|t| t.pointee().map(str::to_string))
    }

    fn fresh_tmp(&mut self) -> String {
        self.tmp += 1;
        format!("$t{}", self.tmp)
    }

    fn record_after(&mut self, span: Span, state: &State) {
        if self.recording {
            self.after.push((span, state.clone()));
        }
    }

    // ------------------------------------------------------------- structure

    fn block(&mut self, b: &Block, state: &mut State) {
        for s in &b.stmts {
            self.stmt(s, state);
        }
    }

    fn stmt(&mut self, s: &Stmt, state: &mut State) {
        match s {
            Stmt::VarDecl {
                name, init, span, ..
            } => {
                if let Some(rec) = self
                    .tp
                    .var_ty(&self.fname, name)
                    .and_then(|t| t.pointee().map(str::to_string))
                {
                    self.var_records.insert(name.clone(), rec);
                    state.pm.add_var(name.clone());
                }
                if let Some(e) = init {
                    let lv = LValue::var(name.clone(), *span);
                    self.assign(&lv, e, *span, state);
                }
                self.record_after(*span, state);
            }
            Stmt::Assign { lhs, rhs, span } => {
                self.assign(lhs, rhs, *span, state);
                self.record_after(*span, state);
            }
            Stmt::While { cond, body, span } => {
                self.eval_for_effects(cond, state);
                self.analyze_loop(body, *span, state);
                self.record_after(*span, state);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                span,
            } => {
                self.eval_for_effects(cond, state);
                let mut s1 = state.clone();
                self.block(then_blk, &mut s1);
                let joined = match else_blk {
                    Some(e) => {
                        let mut s2 = state.clone();
                        self.block(e, &mut s2);
                        s1.join(&s2)
                    }
                    None => s1.join(state),
                };
                *state = joined;
                self.record_after(*span, state);
            }
            Stmt::For {
                from,
                to,
                body,
                span,
                ..
            } => {
                self.eval_for_effects(from, state);
                self.eval_for_effects(to, state);
                self.analyze_loop(body, *span, state);
                self.record_after(*span, state);
            }
            Stmt::Return { value, span } => {
                if let Some(e) = value {
                    self.eval_for_effects(e, state);
                }
                self.record_after(*span, state);
            }
            Stmt::Call(c) => {
                self.apply_call(c, state);
                self.record_after(c.span, state);
            }
        }
    }

    /// Fixpoint loop analysis with primed loop-carried variables.
    fn analyze_loop(&mut self, body: &Block, span: Span, state: &mut State) {
        let entry = state.clone();
        let carried = Self::assigned_pointer_vars(body, self.tp, &self.fname);
        for p in &carried {
            if let Some(rec) = self.var_record(p).map(str::to_string) {
                self.var_records.insert(primed(p), rec);
            }
        }

        let was_recording = self.recording;
        self.recording = false;

        let mut top = entry.clone();
        let mut first_bottom: Option<State> = None;
        let mut last_bottom = entry.clone();
        for _round in 0..100 {
            let mut b = top.clone();
            self.block(body, &mut b);
            if first_bottom.is_none() {
                first_bottom = Some(b.clone());
            }
            last_bottom = b.clone();
            // Back-edge: snapshot each carried pointer into its primed twin,
            // then merge with the entry state.
            let mut primed_state = b;
            for p in &carried {
                if primed_state.pm.has_var(p) {
                    primed_state.pm.copy_var(&primed(p), p);
                }
            }
            let new_top = entry.join(&primed_state);
            if new_top == top {
                break;
            }
            top = new_top;
        }

        // One final recorded pass from the converged loop head.
        self.recording = was_recording;
        if self.recording {
            let mut b = top.clone();
            self.block(body, &mut b);
            last_bottom = b;
        }

        if self.recording {
            self.loops.push(LoopAnalysis {
                span,
                head: top.clone(),
                first_bottom: first_bottom.clone().unwrap_or_else(|| top.clone()),
                bottom: last_bottom.clone(),
            });
        }

        // After the loop: either zero iterations (entry) or some iterations
        // (bottom). Primed twins are analysis-internal: drop them.
        let mut exit = entry.join(&last_bottom);
        for p in &carried {
            exit.pm.remove_var(&primed(p));
        }
        *state = exit;
    }

    fn assigned_pointer_vars(body: &Block, tp: &TypedProgram, fname: &str) -> Vec<String> {
        let mut out = Vec::new();
        fn walk(b: &Block, out: &mut Vec<String>) {
            for s in &b.stmts {
                match s {
                    Stmt::Assign { lhs, .. } if lhs.is_var() => out.push(lhs.base.clone()),
                    Stmt::VarDecl {
                        name,
                        init: Some(_),
                        ..
                    } => out.push(name.clone()),
                    Stmt::While { body, .. } | Stmt::For { body, .. } => walk(body, out),
                    Stmt::If {
                        then_blk, else_blk, ..
                    } => {
                        walk(then_blk, out);
                        if let Some(e) = else_blk {
                            walk(e, out);
                        }
                    }
                    _ => {}
                }
            }
        }
        walk(body, &mut out);
        out.sort();
        out.dedup();
        out.retain(|v| tp.var_ty(fname, v).is_some_and(|t| t.is_pointer()));
        out
    }

    // ------------------------------------------------------------ assignment

    fn assign(&mut self, lhs: &LValue, rhs: &Expr, span: Span, state: &mut State) {
        // Scalar assignments never change the path matrix, but evaluate the
        // RHS for call effects.
        let lhs_is_ptr = self.lvalue_is_pointer(lhs);
        if !lhs_is_ptr {
            self.eval_for_effects(rhs, state);
            return;
        }

        if lhs.is_var() {
            self.assign_var(&lhs.base.clone(), rhs, span, state);
        } else {
            self.assign_field(lhs, rhs, span, state);
        }
    }

    fn lvalue_is_pointer(&self, lv: &LValue) -> bool {
        let base_rec = self
            .tp
            .var_ty(&self.fname, &lv.base)
            .and_then(|t| t.pointee().map(str::to_string))
            .or_else(|| self.var_record(&lv.base).map(str::to_string));
        let Some(mut rec) = base_rec else {
            return false;
        };
        if lv.path.is_empty() {
            return true;
        }
        for acc in &lv.path {
            match self.tp.field_ty(&rec, &acc.field) {
                Some(Ty::Ptr(t)) => rec = t,
                _ => return false,
            }
        }
        true
    }

    /// `p = <rhs>` where `p` is a pointer variable.
    fn assign_var(&mut self, p: &str, rhs: &Expr, span: Span, state: &mut State) {
        state.pm.add_var(p);
        match rhs {
            Expr::Null(_) => {
                state.pm.clear_var(p);
            }
            Expr::New(rec, _) => {
                state.pm.clear_var(p);
                self.var_records.insert(p.to_string(), rec.clone());
            }
            Expr::Var(q, _) => {
                if !state.pm.has_var(q) {
                    // Unknown variable (e.g. scalar) — treat as unrelated.
                    state.pm.clear_var(p);
                    return;
                }
                state.pm.copy_var(p, q);
                if let Some(r) = self.var_record(q).map(str::to_string) {
                    self.var_records.insert(p.to_string(), r);
                }
            }
            Expr::Field { .. } => {
                let tmps = self.materialize_path(rhs, state);
                if let Some(rep) = tmps.last().cloned() {
                    state.pm.copy_var(p, &rep);
                    if let Some(r) = self.var_record(&rep).map(str::to_string) {
                        self.var_records.insert(p.to_string(), r);
                    }
                }
                self.drop_tmps(&tmps, state);
            }
            Expr::Call(c) => {
                self.apply_call_assign(p, c, state);
            }
            _ => {
                // Non-pointer expression assigned to pointer: type checker
                // rejects this; be safe anyway.
                state.pm.clear_var(p);
            }
        }
        let _ = span;
    }

    /// Materialize a pointer path expression `v->f1->f2...` into temps,
    /// returning them in order (last is the representative). Also used for
    /// pointer-typed call arguments.
    fn materialize_path(&mut self, e: &Expr, state: &mut State) -> Vec<String> {
        let Some((base, fields)) = Self::pointer_path_of(e) else {
            return Vec::new();
        };
        // Evaluate array indices for call effects.
        self.eval_indices(e, state);
        let mut tmps = Vec::new();
        let mut cur = base;
        for f in fields {
            let t = self.fresh_tmp();
            self.deref_into(&t, &cur, &f, state);
            tmps.push(t.clone());
            cur = t;
        }
        tmps
    }

    fn pointer_path_of(e: &Expr) -> Option<(String, Vec<String>)> {
        match e {
            Expr::Var(v, _) => Some((v.clone(), Vec::new())),
            Expr::Field { base, field, .. } => {
                let (b, mut path) = Self::pointer_path_of(base)?;
                path.push(field.clone());
                Some((b, path))
            }
            _ => None,
        }
    }

    fn eval_indices(&mut self, e: &Expr, state: &mut State) {
        if let Expr::Field { base, index, .. } = e {
            self.eval_indices(base, state);
            if let Some(i) = index {
                self.eval_for_effects(i, state);
            }
        }
    }

    fn drop_tmps(&mut self, tmps: &[String], state: &mut State) {
        for t in tmps {
            state.pm.remove_var(t);
            self.var_records.remove(t);
        }
    }

    /// `dst = src->field` — the traversal rule.
    fn deref_into(&mut self, dst: &str, src: &str, field: &str, state: &mut State) {
        state.pm.add_var(dst);
        state.pm.clear_var(dst);
        if let Some(rec) = self.var_record(src).map(str::to_string) {
            if let Some(target) = self.field_target(&rec, field) {
                self.var_records.insert(dst.to_string(), target);
            }
        }
        let props = self.props(field);

        if !state.pm.has_var(src) {
            return;
        }

        // Functional-field must-alias: if a single `field` link from `src`
        // to some x is already recorded, `src->field` IS x (fields are
        // functions of the node — except array fields).
        if !props.is_array {
            let vars: Vec<String> = state.pm.vars().to_vec();
            for x in &vars {
                if x != dst && state.pm.get(src, x).has_single_link(field) {
                    let x = x.clone();
                    state.pm.copy_var(dst, &x);
                    return;
                }
            }
        }

        let src_rec = self.var_record(src).map(str::to_string);
        let vars: Vec<String> = state.pm.vars().to_vec();
        for x in &vars {
            if x == dst {
                continue;
            }
            if x == src {
                // src -field-> dst: a definite single link; acyclic fields
                // guarantee the endpoints differ — but only while the
                // abstraction for `field` is intact.
                let alias = if self.is_acyclic(field) && state.field_trustworthy(field) {
                    Alias::No
                } else {
                    Alias::Maybe
                };
                state.pm.add_link(src, dst, field, alias);
                continue;
            }
            let e_xs = state.pm.get(x, src);
            // Compose x→src paths with the new link to get x→dst paths.
            let mut entry = Entry::none();
            if e_xs.must_alias() {
                entry.add_path(Desc::one(field));
            } else {
                for d in &e_xs.paths {
                    entry.add_path(d.step(field));
                }
            }
            // Alias verdict.
            entry.alias = if !entry.paths.is_empty() && self.paths_prove_distinct(&entry, state) {
                Alias::No
            } else if !entry.paths.is_empty() {
                Alias::Maybe
            } else {
                self.no_path_alias_verdict(x, src, field, src_rec.as_deref(), state)
            };
            let back_alias = entry.alias;
            state.pm.set(x, dst, entry);
            let mut back = state.pm.get(dst, x);
            back.alias = back_alias;
            state.pm.set(dst, x, back);
        }
    }

    /// A non-empty must-path proves the endpoints distinct when every field
    /// it uses travels an acyclic route in a consistent direction (all
    /// forward or all backward): such paths can never return to their start
    /// (§3.1, §3.3 — "freed from estimating needless cycles").
    fn paths_prove_distinct(&self, e: &Entry, state: &State) -> bool {
        !e.paths.is_empty()
            && e.paths.iter().all(|d| {
                !d.len.may_be_empty() && d.fields.iter().all(|f| state.field_trustworthy(f)) && {
                    let dirs: BTreeSet<_> =
                        d.fields.iter().map(|f| self.props(f).direction).collect();
                    dirs.len() == 1
                        && matches!(
                            dirs.first().unwrap(),
                            Some(Direction::Forward) | Some(Direction::Backward)
                        )
                }
            })
    }

    /// Alias verdict for `x` vs `src->field` when no path connects them.
    /// Disjointness can still be proven from the ADDS declaration: sibling
    /// links in the same group, or links along independent dimensions.
    fn no_path_alias_verdict(
        &self,
        x: &str,
        src: &str,
        field: &str,
        src_rec: Option<&str>,
        state: &State,
    ) -> Alias {
        let e_sx = state.pm.get(src, x);
        if let Some(rec) = src_rec {
            if let Some(t) = self.tp.adds.get(rec) {
                for d in &e_sx.paths {
                    if d.len == crate::paths::Len::One && d.fields.len() == 1 {
                        let g = d.fields.first().unwrap();
                        if g != field
                            && state.field_trustworthy(g)
                            && state.field_trustworthy(field)
                            && (t.same_group(g, field) || t.fields_on_independent_dims(g, field))
                        {
                            // x = src->g with g,field disjoint routes.
                            return Alias::No;
                        }
                    }
                }
            }
        }
        // Different record types can never alias.
        if let (Some(rx), Some(rs)) = (self.var_record(x), src_rec) {
            if let Some(tgt) = self.field_target(rs, field) {
                if rx != tgt {
                    return Alias::No;
                }
            }
        }
        // If x is provably unrelated to everything (e.g. fresh), x→dst
        // stays unknown-but-uncertain.
        Alias::Maybe
    }

    /// `p->f = <rhs>` (after base normalization) — the shape-mutation rule.
    fn assign_field(&mut self, lhs: &LValue, rhs: &Expr, span: Span, state: &mut State) {
        // Normalize the base chain so the write is `base->field = rhs`.
        let mut tmps = Vec::new();
        let mut base = lhs.base.clone();
        for acc in &lhs.path[..lhs.path.len() - 1] {
            if let Some(i) = &acc.index {
                self.eval_for_effects(i, state);
            }
            let t = self.fresh_tmp();
            self.deref_into(&t, &base, &acc.field, state);
            tmps.push(t.clone());
            base = t;
        }
        let last = lhs.path.last().expect("non-var lvalue");
        if let Some(i) = &last.index {
            self.eval_for_effects(i, state);
        }
        let field = last.field.clone();

        // Normalize RHS to a representative variable (or NULL).
        let rhs_rep: Option<String> = match rhs {
            Expr::Null(_) => None,
            Expr::Var(q, _) => Some(q.clone()),
            Expr::Field { .. } => {
                let chain = self.materialize_path(rhs, state);
                let rep = chain.last().cloned();
                tmps.extend(chain);
                rep
            }
            Expr::New(rec, _) => {
                let t = self.fresh_tmp();
                state.pm.add_var(&t);
                self.var_records.insert(t.clone(), rec.clone());
                tmps.push(t.clone());
                Some(t)
            }
            Expr::Call(c) => {
                let t = self.fresh_tmp();
                self.apply_call_assign(&t, c, state);
                tmps.push(t.clone());
                Some(t)
            }
            _ => {
                self.eval_for_effects(rhs, state);
                None
            }
        };

        self.pointer_store(&base, &field, rhs_rep.as_deref(), span, state);
        self.drop_tmps(&tmps, state);
    }

    /// The core `p->f = q` rule: validation, edge removal, edge addition,
    /// and repair detection.
    fn pointer_store(
        &mut self,
        p: &str,
        field: &str,
        q: Option<&str>,
        span: Span,
        state: &mut State,
    ) {
        let props = self.props(field);
        let p_rec = self.var_record(p).map(str::to_string);
        let type_name = p_rec.clone().unwrap_or_default();

        // --- repair detection: overwriting a holder's edge resolves
        //     sharing violations held by (aliases of) `p`.
        let repaired: Vec<Violation> = state
            .violations
            .iter()
            .filter(|v| {
                v.field == field
                    && v.kind == ViolationKind::Sharing
                    && v.holders
                        .iter()
                        .any(|h| h == p || (state.pm.has_var(h) && state.pm.get(h, p).must_alias()))
            })
            .cloned()
            .collect();
        for v in repaired {
            state.violations.remove(&v);
            if self.recording {
                self.events.push(ValidationEvent::Repaired {
                    at: span,
                    violation: v,
                });
            }
        }

        if let Some(q) = q {
            // --- validation: uniqueness (sharing) ---
            if props.unique && state.pm.has_var(q) {
                let witnesses: Vec<String> = state
                    .pm
                    .incoming_via(field, q)
                    .into_iter()
                    .filter(|y| !state.pm.get(y, p).must_alias() && y != p)
                    .collect();
                if !witnesses.is_empty() {
                    let mut holders: BTreeSet<String> = witnesses.iter().cloned().collect();
                    holders.insert(p.to_string());
                    let v = Violation {
                        kind: ViolationKind::Sharing,
                        type_name: type_name.clone(),
                        field: field.to_string(),
                        holders,
                        at: span,
                    };
                    if state.violations.insert(v.clone()) && self.recording {
                        self.events.push(ValidationEvent::Broken {
                            at: span,
                            violation: v,
                        });
                    }
                }
            }
            // --- validation: acyclicity (cycle) ---
            if self.is_acyclic(field) && state.pm.has_var(q) {
                let e_qp = state.pm.get(q, p);
                let cycle_possible = q == p || e_qp.must_alias() || !e_qp.paths.is_empty();
                if cycle_possible {
                    let v = Violation {
                        kind: ViolationKind::Cycle,
                        type_name: type_name.clone(),
                        field: field.to_string(),
                        holders: BTreeSet::from([p.to_string()]),
                        at: span,
                    };
                    if state.violations.insert(v.clone()) && self.recording {
                        self.events.push(ValidationEvent::Broken {
                            at: span,
                            violation: v,
                        });
                    }
                }
            }
        }

        // --- edge removal: the old `p->field` edge is overwritten, and any
        //     recorded path using `field` may have run through it.
        let vars: Vec<String> = state.pm.vars().to_vec();
        for r in &vars {
            for s in &vars {
                if r == s {
                    continue;
                }
                let mut e = state.pm.get(r, s);
                if e.uses_field(field) {
                    e.remove_paths_using(field);
                    state.pm.set(r, s, e);
                }
            }
        }

        // --- edge addition: p -field-> q, for all must-aliases.
        if let Some(q) = q {
            if state.pm.has_var(q) {
                let cycle_flagged = state
                    .violations
                    .iter()
                    .any(|v| v.kind == ViolationKind::Cycle && v.field == field);
                let alias = if self.is_acyclic(field) && !cycle_flagged {
                    Alias::No
                } else {
                    Alias::Maybe
                };
                let p_aliases: Vec<String> = vars
                    .iter()
                    .filter(|x| *x == p || state.pm.get(x, p).must_alias())
                    .cloned()
                    .collect();
                let q_aliases: Vec<String> = vars
                    .iter()
                    .filter(|x| *x == q || state.pm.get(x, q).must_alias())
                    .cloned()
                    .collect();
                for x in &p_aliases {
                    for y in &q_aliases {
                        if x != y {
                            state.pm.add_link(x, y, field, alias);
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------ calls

    /// Evaluate an expression only for its (call) effects on the state.
    fn eval_for_effects(&mut self, e: &Expr, state: &mut State) {
        match e {
            Expr::Call(c) => {
                self.apply_call(c, state);
            }
            Expr::Unary { operand, .. } => self.eval_for_effects(operand, state),
            Expr::Binary { lhs, rhs, .. } => {
                self.eval_for_effects(lhs, state);
                self.eval_for_effects(rhs, state);
            }
            Expr::Field { base, index, .. } => {
                self.eval_for_effects(base, state);
                if let Some(i) = index {
                    self.eval_for_effects(i, state);
                }
            }
            _ => {}
        }
    }

    /// Representative PM variables for each call argument (temps are created
    /// for pointer path arguments and must be dropped by the caller).
    fn arg_reps(&mut self, c: &Call, state: &mut State) -> (Vec<Option<String>>, Vec<String>) {
        let mut reps = Vec::new();
        let mut tmps = Vec::new();
        for a in &c.args {
            match a {
                Expr::Var(v, _) if state.pm.has_var(v) => reps.push(Some(v.clone())),
                Expr::Field { .. } => {
                    let chain = self.materialize_path(a, state);
                    reps.push(chain.last().cloned());
                    tmps.extend(chain);
                }
                other => {
                    self.eval_for_effects(other, state);
                    reps.push(None);
                }
            }
        }
        (reps, tmps)
    }

    /// Apply a call's heap effects (shape mutations invalidate affected
    /// path descriptors).
    fn apply_call(&mut self, c: &Call, state: &mut State) {
        let (_reps, tmps) = self.arg_reps(c, state);
        self.apply_call_mutations(c, state);
        self.drop_tmps(&tmps, state);
    }

    fn apply_call_mutations(&mut self, c: &Call, state: &mut State) {
        let Some(sum) = self.sums.get(&c.callee) else {
            return; // intrinsic: pure
        };
        if sum.ptr_writes.is_empty() {
            return;
        }
        let mutated: BTreeSet<String> = sum.ptr_writes.iter().map(|u| u.field.clone()).collect();
        let vars: Vec<String> = state.pm.vars().to_vec();
        for r in &vars {
            for s in &vars {
                if r == s {
                    continue;
                }
                let mut e = state.pm.get(r, s);
                let mut changed = false;
                for f in &mutated {
                    changed |= e.remove_paths_using(f);
                }
                if changed {
                    // The mutation may have rerouted the path: endpoints may
                    // now coincide only if the route could cycle back; the
                    // alias verdict between two *variables* is unaffected by
                    // heap writes, so keep it.
                    state.pm.set(r, s, e);
                }
            }
        }
    }

    /// `x = f(args)` — bind the return value.
    fn apply_call_assign(&mut self, x: &str, c: &Call, state: &mut State) {
        let (reps, tmps) = self.arg_reps(c, state);
        self.apply_call_mutations(c, state);

        state.pm.add_var(x);
        state.pm.clear_var(x);
        // Record type of x from the call's return type.
        if let Some(sig) = self.tp.sigs.get(&c.callee) {
            if let Some(Ty::Ptr(rec)) = &sig.ret {
                self.var_records.insert(x.to_string(), rec.clone());
            }
        }

        let Some(sum) = self.sums.get(&c.callee) else {
            self.drop_tmps(&tmps, state);
            return;
        };

        // Which arguments may the return value relate to? Params returned
        // directly or reachably; and, conservatively, captured params when a
        // fresh node is returned (the fresh structure may reach them — this
        // is what makes the paper's `root =?` entries).
        let mut alias_args: BTreeSet<usize> = BTreeSet::new();
        let fresh_returned = sum.returns.contains(&RetSource::Fresh);
        for src in &sum.returns {
            match src {
                RetSource::Param(i) | RetSource::ReachableFrom(i) => {
                    alias_args.insert(*i);
                }
                _ => {}
            }
        }
        if fresh_returned {
            alias_args.extend(sum.captures.iter().copied());
        }

        let vars: Vec<String> = state.pm.vars().to_vec();
        for y in &vars {
            if y == x {
                continue;
            }
            let related = alias_args.iter().any(|i| {
                reps.get(*i).and_then(|r| r.as_ref()).is_some_and(|rep| {
                    y == rep
                        || state.pm.get(y, rep).may_alias()
                        || !state.pm.get(y, rep).paths.is_empty()
                        || !state.pm.get(rep, y).paths.is_empty()
                })
            });
            if related {
                state.pm.set_alias(x, y, Alias::Maybe);
            }
        }
        self.drop_tmps(&tmps, state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adds_lang::programs;
    use adds_lang::types::check_source;

    fn analyze(src: &str, func: &str) -> FnAnalysis {
        let tp = check_source(src).unwrap();
        let sums = Summaries::compute(&tp);
        analyze_function(&tp, &sums, func).unwrap()
    }

    // ---------------------------------------------------------------- §3.3.2

    #[test]
    fn scale_without_adds_is_conservative() {
        let an = analyze(programs::LIST_SCALE_PLAIN, "scale");
        let lp = &an.loops[0];
        // With unknown directions, head/p may alias (=?).
        assert!(lp.bottom.pm.get("head", "p").may_alias());
        assert!(lp.bottom.pm.get("p'", "p").may_alias());
    }

    #[test]
    fn scale_with_adds_proves_no_aliasing() {
        let an = analyze(programs::LIST_SCALE_ADDS, "scale");
        let lp = &an.loops[0];
        // Fixed point (paper's third matrix): head→p is next+, p'→p is next,
        // head→p' is next+, and *none* of them may alias.
        let hp = lp.bottom.pm.get("head", "p");
        assert_eq!(hp.display(), "next+", "head→p:\n{}", lp.bottom.pm);
        assert!(!hp.may_alias());
        let pp = lp.bottom.pm.get("p'", "p");
        assert_eq!(pp.display(), "next", "p'→p:\n{}", lp.bottom.pm);
        assert!(!pp.may_alias());
        let hp2 = lp.bottom.pm.get("head", "p'");
        assert_eq!(hp2.display(), "next+", "head→p':\n{}", lp.bottom.pm);
        assert!(!hp2.may_alias());
    }

    #[test]
    fn scale_first_iteration_matrix() {
        let an = analyze(programs::LIST_SCALE_ADDS, "scale");
        let lp = &an.loops[0];
        // After one iteration (paper's second matrix): head→p is a single
        // next link.
        assert_eq!(lp.first_bottom.pm.get("head", "p").display(), "next");
    }

    #[test]
    fn scale_before_loop_head_aliases_p() {
        let an = analyze(programs::LIST_SCALE_ADDS, "scale");
        // After `p = head` (paper's first matrix): p and head are aliases.
        let (_, st) = &an.after[1]; // var decl, then assignment
        assert!(st.pm.get("head", "p").must_alias());
    }

    // ---------------------------------------------------------------- §3.3.1

    #[test]
    fn subtree_move_breaks_then_repairs() {
        let an = analyze(programs::SUBTREE_MOVE, "move_subtree");
        assert_eq!(an.events.len(), 2, "{:?}", an.events);
        assert!(an.events[0].is_broken());
        assert!(!an.events[1].is_broken());
        // Abstraction is valid again at exit.
        assert!(an.exit.fully_valid());
    }

    #[test]
    fn subtree_move_violation_names_left_field() {
        let an = analyze(programs::SUBTREE_MOVE, "move_subtree");
        let ValidationEvent::Broken { violation, .. } = &an.events[0] else {
            panic!()
        };
        assert_eq!(violation.field, "left");
        assert_eq!(violation.kind, ViolationKind::Sharing);
        assert!(violation.holders.contains("p1"));
        assert!(violation.holders.contains("p2"));
    }

    #[test]
    fn unrepaired_sharing_stays_invalid() {
        let src = "
            type BinTree [down] {
                int data;
                BinTree *left, *right is uniquely forward along down;
            };
            procedure bad(p1: BinTree*, p2: BinTree*) {
                p1->left = p2->left;
            }";
        let an = analyze(src, "bad");
        assert_eq!(an.events.len(), 1);
        assert!(!an.exit.fully_valid());
        assert!(!an.exit.abstraction_valid("BinTree", "left"));
        assert!(an.exit.abstraction_valid("BinTree", "right"));
    }

    #[test]
    fn cycle_store_is_detected() {
        let src = "
            type L [X] { int v; L *next is uniquely forward along X; };
            procedure mk_cycle(a: L*) {
                var b: L*;
                b = a->next;
                b->next = a;
            }";
        let an = analyze(src, "mk_cycle");
        assert!(an
            .events
            .iter()
            .any(|e| matches!(e, ValidationEvent::Broken { violation, .. }
                 if violation.kind == ViolationKind::Cycle)));
    }

    #[test]
    fn self_loop_is_a_cycle_violation() {
        let src = "
            type L [X] { int v; L *next is uniquely forward along X; };
            procedure mk_self(a: L*) {
                a->next = a;
            }";
        let an = analyze(src, "mk_self");
        assert!(!an.exit.abstraction_valid("L", "next"));
    }

    #[test]
    fn legitimate_append_keeps_abstraction_valid() {
        let src = "
            type L [X] { int v; L *next is uniquely forward along X; };
            procedure append_fresh(a: L*) {
                var n: L*;
                n = new L;
                a->next = n;
            }";
        let an = analyze(src, "append_fresh");
        assert!(an.exit.fully_valid(), "{:?}", an.events);
    }

    // ---------------------------------------------------------------- §4.3.2

    #[test]
    fn bhl1_matrix_matches_paper() {
        let an = analyze(programs::BARNES_HUT, "bhl1");
        let lp = &an.loops[0];
        let pm = &lp.bottom.pm;
        // particles→p: next+; particles→p': next+; p'→p: next.
        assert_eq!(pm.get("particles", "p").display(), "next+", "\n{pm}");
        assert_eq!(pm.get("particles", "p'").display(), "next+", "\n{pm}");
        assert_eq!(pm.get("p'", "p").display(), "next", "\n{pm}");
        // None of the list walkers alias.
        assert!(!pm.get("particles", "p").may_alias());
        assert!(!pm.get("p'", "p").may_alias());
        // root is a possible alias of all of them (the paper's =? column).
        assert!(pm.get("root", "particles").may_alias(), "\n{pm}");
        assert!(pm.get("root", "p").may_alias(), "\n{pm}");
    }

    #[test]
    fn bhl2_matrix_is_clean_too() {
        let an = analyze(programs::BARNES_HUT, "bhl2");
        let lp = &an.loops[0];
        assert!(!lp.bottom.pm.get("p'", "p").may_alias());
        assert_eq!(lp.bottom.pm.get("particles", "p").display(), "next+");
    }

    #[test]
    fn build_tree_loop_keeps_next_chain_facts() {
        let an = analyze(programs::BARNES_HUT, "build_tree");
        // The while loop over particles: despite insert_particle mutating
        // subtrees, the next-chain facts survive (next is never written).
        let lp = an
            .loops
            .iter()
            .find(|l| l.bottom.pm.has_var("p'"))
            .expect("particle loop analyzed");
        assert_eq!(lp.bottom.pm.get("p'", "p").display(), "next");
        assert!(!lp.bottom.pm.get("p'", "p").may_alias());
    }

    #[test]
    fn insert_particle_temporary_sharing_repaired() {
        let an = analyze(programs::BARNES_HUT, "insert_particle");
        // The paper's §4.3.2: `m->subtrees[qc] = child` shares the
        // competitor; `cur->subtrees[q] = m` repairs it.
        let breaks: Vec<_> = an.events.iter().filter(|e| e.is_broken()).collect();
        let repairs: Vec<_> = an.events.iter().filter(|e| !e.is_broken()).collect();
        assert!(
            !breaks.is_empty(),
            "expected a sharing break: {:?}",
            an.events
        );
        assert!(!repairs.is_empty(), "expected a repair: {:?}", an.events);
    }

    #[test]
    fn exit_state_drops_primed_vars() {
        let an = analyze(programs::LIST_SCALE_ADDS, "scale");
        assert!(!an.exit.pm.has_var("p'"));
        assert!(an.exit.pm.has_var("p"));
    }

    #[test]
    fn sibling_subtrees_are_disjoint() {
        let src = "
            type BinTree [down] {
                int data;
                BinTree *left, *right is uniquely forward along down;
            };
            procedure probe(t: BinTree*) {
                var a: BinTree*;
                var b: BinTree*;
                a = t->left;
                b = t->right;
                a->data = 1;
                b->data = 2;
            }";
        let an = analyze(src, "probe");
        let (_, st) = an
            .after
            .iter()
            .rev()
            .find(|(_, st)| st.pm.has_var("a") && st.pm.has_var("b"))
            .unwrap();
        assert!(
            !st.pm.get("a", "b").may_alias(),
            "left/right groups must be disjoint:\n{}",
            st.pm
        );
    }

    #[test]
    fn independent_dimensions_are_disjoint() {
        let src = "
            type RT [down][sub] where sub||down {
                int data;
                RT *left, *right is uniquely forward along down;
                RT *subtree is uniquely forward along sub;
            };
            procedure probe(t: RT*) {
                var a: RT*;
                var s: RT*;
                a = t->left;
                s = t->subtree;
                a->data = 1;
            }";
        let an = analyze(src, "probe");
        let (_, st) = an
            .after
            .iter()
            .rev()
            .find(|(_, st)| st.pm.has_var("a") && st.pm.has_var("s"))
            .unwrap();
        assert!(
            !st.pm.get("a", "s").may_alias(),
            "independent dims must be disjoint:\n{}",
            st.pm
        );
    }

    #[test]
    fn dependent_dimensions_may_alias() {
        // Octree: down and leaves are dependent — a node reached along
        // down may be the same node reached along leaves.
        let src = "
            type O [down][leaves] {
                int data;
                O *kid is uniquely forward along down;
                O *next is uniquely forward along leaves;
            };
            procedure probe(t: O*) {
                var a: O*;
                var b: O*;
                a = t->kid;
                b = t->next;
                a->data = 1;
            }";
        let an = analyze(src, "probe");
        let (_, st) = an
            .after
            .iter()
            .rev()
            .find(|(_, st)| st.pm.has_var("a") && st.pm.has_var("b"))
            .unwrap();
        assert!(
            st.pm.get("a", "b").may_alias(),
            "dependent dims stay conservative:\n{}",
            st.pm
        );
    }
}
