//! The two-way linked list from the paper's §2.2 introduction:
//!
//! > "A two-way linked list has the property that a traversal in the
//! > forward direction using only the next field never visits the same
//! > node twice (likewise for traversals using only the prev field). This
//! > property … enables the parallelization of traversals along the list."
//!
//! `next` and `prev` are opposite directions of ONE dimension — the
//! next/prev "cycle" is not a real cycle, which is exactly the distinction
//! ADDS lets the analysis make (§3.3: "freed from estimating needless
//! cycles").

use crossbeam::thread as cb;

/// The ADDS declaration this structure realizes.
pub const ADDS_DECL: &str = "
type TwoWayList [X]
{
    int data;
    TwoWayList *next is uniquely forward along X;
    TwoWayList *prev is backward along X;
};
";

/// Index of a node within the list arena.
pub type NodeId = u32;

#[derive(Clone, Debug)]
/// One cell of the two-way list.
pub struct TwoWayNode<T> {
    /// Payload.
    pub data: T,
    /// Uniquely forward along X.
    pub next: Option<NodeId>,
    /// Backward along X.
    pub prev: Option<NodeId>,
}

#[derive(Clone, Debug, Default)]
/// The §2.2 TwoWayList: forward walks never revisit a node.
pub struct TwoWayList<T> {
    nodes: Vec<TwoWayNode<T>>,
    head: Option<NodeId>,
    tail: Option<NodeId>,
}

impl<T> TwoWayList<T> {
    /// The empty list.
    pub fn new() -> TwoWayList<T> {
        TwoWayList {
            nodes: Vec::new(),
            head: None,
            tail: None,
        }
    }

    /// Build by appending each item at the tail.
    pub fn from_iter_back(items: impl IntoIterator<Item = T>) -> TwoWayList<T> {
        let mut l = TwoWayList::new();
        for x in items {
            l.push_back(x);
        }
        l
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the list has no cells.
    pub fn is_empty(&self) -> bool {
        self.head.is_none()
    }

    /// The first cell.
    pub fn head(&self) -> Option<NodeId> {
        self.head
    }

    /// The last cell.
    pub fn tail(&self) -> Option<NodeId> {
        self.tail
    }

    /// Append at the tail; returns the new cell.
    pub fn push_back(&mut self, data: T) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(TwoWayNode {
            data,
            next: None,
            prev: self.tail,
        });
        match self.tail {
            Some(t) => self.nodes[t as usize].next = Some(id),
            None => self.head = Some(id),
        }
        self.tail = Some(id);
        id
    }

    /// The cell `id`.
    pub fn node(&self, id: NodeId) -> &TwoWayNode<T> {
        &self.nodes[id as usize]
    }

    /// Forward traversal (never visits a node twice — the §2.2 property).
    pub fn iter_forward(&self) -> impl Iterator<Item = &T> {
        let mut cur = self.head;
        let cap = self.nodes.len();
        let mut steps = 0;
        std::iter::from_fn(move || {
            if steps > cap {
                return None;
            }
            let id = cur?;
            steps += 1;
            cur = self.nodes[id as usize].next;
            Some(&self.nodes[id as usize].data)
        })
    }

    /// Backward traversal from the tail along `prev`.
    pub fn iter_backward(&self) -> impl Iterator<Item = &T> {
        let mut cur = self.tail;
        let cap = self.nodes.len();
        let mut steps = 0;
        std::iter::from_fn(move || {
            if steps > cap {
                return None;
            }
            let id = cur?;
            steps += 1;
            cur = self.nodes[id as usize].prev;
            Some(&self.nodes[id as usize].data)
        })
    }

    /// Run-time validation of the declared shape: `prev` is the exact
    /// inverse of `next`, forward is acyclic, incoming links unique.
    pub fn validate_shape(&self) -> Result<(), String> {
        let mut incoming = vec![0usize; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if let Some(nx) = n.next {
                incoming[nx as usize] += 1;
                if self.nodes[nx as usize].prev != Some(i as NodeId) {
                    return Err(format!("prev is not the inverse of next at node {i}"));
                }
            }
        }
        if incoming.iter().any(|c| *c > 1) {
            return Err("sharing along next".into());
        }
        if let Some(h) = self.head {
            if incoming[h as usize] != 0 {
                return Err("cycle through head".into());
            }
        }
        let forward = self.iter_forward().count();
        let backward = self.iter_backward().count();
        if forward != self.nodes.len() || backward != self.nodes.len() {
            return Err(format!(
                "traversals cover {forward}/{backward} of {} nodes",
                self.nodes.len()
            ));
        }
        Ok(())
    }
}

impl<T: Send + Sync> TwoWayList<T> {
    /// Process all nodes in parallel — legal because the forward traversal
    /// never revisits a node (the §2.2 observation). Static strip schedule,
    /// results in list order.
    pub fn par_map<R: Send>(&self, threads: usize, f: impl Fn(&T) -> R + Sync) -> Vec<R> {
        let threads = threads.max(1);
        let mut partials: Vec<Vec<(usize, R)>> = Vec::new();
        cb::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let f = &f;
                handles.push(s.spawn(move |_| {
                    let mut local = Vec::new();
                    let mut cur = self.head;
                    let mut pos = 0usize;
                    for _ in 0..t {
                        cur = cur.and_then(|c| self.nodes[c as usize].next);
                        pos += 1;
                    }
                    while let Some(id) = cur {
                        local.push((pos, f(&self.nodes[id as usize].data)));
                        for _ in 0..threads {
                            cur = cur.and_then(|c| self.nodes[c as usize].next);
                        }
                        pos += threads;
                    }
                    local
                }));
            }
            for h in handles {
                partials.push(h.join().expect("worker"));
            }
        })
        .expect("scope");
        let mut out: Vec<Option<R>> = (0..self.len()).map(|_| None).collect();
        for part in partials {
            for (pos, r) in part {
                out[pos] = Some(r);
            }
        }
        out.into_iter().map(|r| r.expect("covered")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_traversals() {
        let l = TwoWayList::from_iter_back([1, 2, 3, 4]);
        let fwd: Vec<i32> = l.iter_forward().copied().collect();
        let bwd: Vec<i32> = l.iter_backward().copied().collect();
        assert_eq!(fwd, vec![1, 2, 3, 4]);
        assert_eq!(bwd, vec![4, 3, 2, 1]);
        l.validate_shape().unwrap();
    }

    #[test]
    fn empty_and_singleton() {
        let e: TwoWayList<i32> = TwoWayList::new();
        assert!(e.is_empty());
        e.validate_shape().unwrap();
        let s = TwoWayList::from_iter_back([9]);
        assert_eq!(s.head(), s.tail());
        s.validate_shape().unwrap();
    }

    #[test]
    fn par_map_matches_sequential() {
        let l = TwoWayList::from_iter_back(0..97i64);
        let seq: Vec<i64> = l.iter_forward().map(|x| x * 3).collect();
        for threads in [1, 2, 4, 7] {
            assert_eq!(l.par_map(threads, |x| x * 3), seq, "threads={threads}");
        }
    }

    #[test]
    fn adds_decl_distinguishes_next_prev_from_a_cycle() {
        let prog = adds_lang::parse_program(ADDS_DECL).unwrap();
        let env = adds_lang::AddsEnv::build(&prog).unwrap();
        let t = env.get("TwoWayList").unwrap();
        // forward + backward along one dimension is NOT a cycle.
        assert!(t.opposite_pair("next", "prev"));
        assert!(t.is_acyclic_field("next"));
        assert!(t.is_acyclic_field("prev"));
        assert!(t.is_uniquely_forward("next"));
    }

    #[test]
    fn corruption_detected() {
        let mut l = TwoWayList::from_iter_back([1, 2, 3]);
        // Break the prev inverse.
        l.nodes[2].prev = Some(0);
        assert!(l.validate_shape().is_err());
    }
}
