//! ASCII renderings of the paper's figures, regenerated from live
//! structures (used by the `figures` bench binary).

use crate::bignum::Bignum;
use crate::list::OneWayList;
use crate::misuse::{classify, ListShape};
use crate::orthlist::OrthList;
use crate::poly::Polynomial;
use crate::rangetree::RangeTree2D;
use std::fmt::Write;

/// Figure 2-style rendering of a list: `head -> |991| -> |298| -> |3| -/`.
pub fn render_list<T: std::fmt::Display>(l: &OneWayList<T>) -> String {
    let mut s = String::from("head");
    for v in l.iter() {
        let _ = write!(s, " -> |{v}|");
    }
    s.push_str(" -/");
    s
}

/// Figure 2 with the bignum example: limbs least-significant first.
pub fn render_bignum(b: &Bignum) -> String {
    let mut s = format!("{} =", b.to_decimal());
    for v in b.limb_values() {
        let _ = write!(s, " |{v:03}| ->");
    }
    s.truncate(s.len() - 3);
    s.push_str(" -/   (least significant node first)");
    s
}

/// Polynomial rendering with its list layout.
pub fn render_poly(p: &Polynomial) -> String {
    let mut s = format!("{p}\n  as list:");
    for (c, e) in p.term_pairs() {
        let _ = write!(s, " |c:{c} e:{e}| ->");
    }
    s.push_str(" NULL");
    s
}

/// Figure 1 caption line for a classified shape.
pub fn render_classification(shape: ListShape) -> &'static str {
    match shape {
        ListShape::OneWay => "one-way linked list (valid OneWayList)",
        ListShape::Cyclic => "cyclic structure (NOT a OneWayList)",
        ListShape::Shared => "tournament/shared structure (NOT a OneWayList)",
    }
}

/// Figure 1: render arena edges `i -> j` so the shape is visible.
pub fn render_edges<T>(l: &OneWayList<T>) -> String {
    let mut s = String::new();
    for (i, n) in l.nodes.iter().enumerate() {
        match n.next {
            Some(j) => {
                let _ = writeln!(s, "  node{i} -> node{j}");
            }
            None => {
                let _ = writeln!(s, "  node{i} -/");
            }
        }
    }
    let _ = write!(s, "  shape: {}", render_classification(classify(l)));
    s
}

/// Figure 3: dense grid view of an orthogonal list, dots for zeros.
pub fn render_orthlist(m: &OrthList) -> String {
    let dense = m.to_dense();
    let mut s = String::new();
    let _ = writeln!(s, "OrthList {}x{} ({} nonzeros)", m.rows, m.cols, m.nnz());
    for row in &dense {
        s.push_str("  ");
        for v in row {
            if *v == 0.0 {
                s.push_str("   .  ");
            } else {
                let _ = write!(s, "{v:5.1} ");
            }
        }
        s.push('\n');
    }
    s.push_str("  rows linked across/back (X), columns linked down/up (Y)");
    s
}

/// Figure 4: leaf chain of a range tree.
pub fn render_rangetree(t: &RangeTree2D) -> String {
    let mut s = String::from("leaves:");
    for p in t.leaves() {
        let _ = write!(s, " ({:.1},{:.1})<->", p.x, p.y);
    }
    s.push_str(" -/\n  x-tree over leaves; independent y-subtree per node (sub || down)");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::misuse;
    use crate::rangetree::Point;

    #[test]
    fn list_rendering_shows_values() {
        let l = OneWayList::from_iter_back([1, 2, 3]);
        assert_eq!(render_list(&l), "head -> |1| -> |2| -> |3| -/");
    }

    #[test]
    fn bignum_rendering_matches_paper_layout() {
        let b = Bignum::from_decimal("3298991").unwrap();
        let s = render_bignum(&b);
        assert!(s.contains("|991|"), "{s}");
        assert!(s.contains("|298|"), "{s}");
        assert!(s.contains("|003|"), "{s}");
        assert!(s.starts_with("3298991 ="), "{s}");
    }

    #[test]
    fn poly_rendering() {
        let s = render_poly(&Polynomial::paper_example());
        assert!(s.contains("451x^31 + 10x^13 + 4"), "{s}");
        assert!(s.contains("|c:451 e:31|"), "{s}");
    }

    #[test]
    fn edge_rendering_classifies() {
        let s = render_edges(&misuse::cyclic_list(3));
        assert!(s.contains("cyclic"), "{s}");
        let s = render_edges(&misuse::tournament(2));
        assert!(s.contains("tournament"), "{s}");
        let s = render_edges(&OneWayList::from_iter_back([1, 2]));
        assert!(s.contains("valid OneWayList"), "{s}");
    }

    #[test]
    fn orthlist_rendering() {
        let m = OrthList::from_triplets(2, 2, [(0, 0, 1.0), (1, 1, 2.0)]);
        let s = render_orthlist(&m);
        assert!(s.contains("2x2"), "{s}");
        assert!(s.contains("1.0"), "{s}");
        assert!(s.contains('.'), "{s}");
    }

    #[test]
    fn rangetree_rendering() {
        let t = RangeTree2D::build(vec![
            Point {
                x: 1.0,
                y: 2.0,
                id: 0,
            },
            Point {
                x: 3.0,
                y: 1.0,
                id: 1,
            },
        ]);
        let s = render_rangetree(&t);
        assert!(s.contains("(1.0,2.0)"), "{s}");
        assert!(s.contains("sub || down"), "{s}");
    }
}
