//! Figure 1: "Other possible data structures built using ListNode."
//!
//! The same `ListNode` type builds a proper one-way list, a *cyclic* list,
//! and a "tournament" (shared suffix) — which is exactly why the type
//! declaration alone tells the compiler nothing about shape, and why the
//! run-time validators (and the static analysis) must distinguish them.

use crate::list::{NodeId, OneWayList};

/// Classification of a structure built from list nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ListShape {
    /// A proper one-way list: acyclic, unique incoming links.
    OneWay,
    /// Contains a cycle along `next`.
    Cyclic,
    /// Acyclic but some node has several incoming links (DAG/tournament).
    Shared,
}

/// Build the Figure 1 cyclic list: 1 → 2 → … → n → 1.
pub fn cyclic_list(n: usize) -> OneWayList<i64> {
    assert!(n >= 1);
    let mut l = OneWayList::from_iter_back((1..=n as i64).collect::<Vec<_>>());
    let last = (n - 1) as NodeId;
    l.node_mut(last).next = Some(0);
    l
}

/// Build the Figure 1 "tournament": pairs of nodes point at a shared
/// successor, like a bracket. Returns the list arena; `head` is the first
/// entry node.
pub fn tournament(levels: usize) -> OneWayList<i64> {
    assert!(levels >= 1);
    let mut l = OneWayList::new();
    // Allocate level by level: level k has 2^(levels-k-1) nodes; every two
    // nodes of one level share a successor in the next.
    let mut prev: Vec<NodeId> = Vec::new();
    for lvl in 0..levels {
        let count = 1usize << (levels - lvl - 1);
        let mut this = Vec::with_capacity(count);
        for i in 0..count {
            let id = l.push_back((lvl * 100 + i) as i64);
            this.push(id);
        }
        // Point the previous level's pairs at this level's nodes.
        for (i, p) in prev.iter().enumerate() {
            l.node_mut(*p).next = Some(this[i / 2]);
        }
        prev = this;
    }
    l
}

/// Classify an arbitrary node arena (reachability-insensitive, whole-arena
/// check, mirroring what general path matrix analysis decides statically).
pub fn classify<T>(l: &OneWayList<T>) -> ListShape {
    // Sharing: several incoming next links.
    let mut incoming = vec![0usize; l.nodes.len()];
    for n in &l.nodes {
        if let Some(nx) = n.next {
            incoming[nx as usize] += 1;
        }
    }
    let shared = incoming.iter().any(|c| *c > 1);

    // Cycle: follow next from every node with bounded steps.
    let mut cyclic = false;
    for start in 0..l.nodes.len() {
        let mut slow = Some(start as NodeId);
        let mut fast = Some(start as NodeId);
        loop {
            fast = l.next_of(l.next_of(fast));
            slow = l.next_of(slow);
            match (slow, fast) {
                (Some(a), Some(b)) if a == b => {
                    cyclic = true;
                    break;
                }
                (_, None) => break,
                _ => {}
            }
        }
        if cyclic {
            break;
        }
    }

    if cyclic {
        ListShape::Cyclic
    } else if shared {
        ListShape::Shared
    } else {
        ListShape::OneWay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proper_list_classifies_one_way() {
        let l = OneWayList::from_iter_back([1, 2, 3]);
        assert_eq!(classify(&l), ListShape::OneWay);
        assert!(l.validate_shape().is_ok());
    }

    #[test]
    fn cyclic_list_detected() {
        let l = cyclic_list(5);
        assert_eq!(classify(&l), ListShape::Cyclic);
        assert!(l.validate_shape().is_err());
    }

    #[test]
    fn one_node_self_cycle() {
        let l = cyclic_list(1);
        assert_eq!(classify(&l), ListShape::Cyclic);
    }

    #[test]
    fn tournament_detected_as_shared() {
        let l = tournament(3); // 4 + 2 + 1 nodes
        assert_eq!(l.nodes.len(), 7);
        assert_eq!(classify(&l), ListShape::Shared);
        assert!(l.validate_shape().is_err());
    }

    #[test]
    fn tournament_structure_is_a_bracket() {
        let l = tournament(2); // 2 entry nodes + 1 final
                               // Both entry nodes point at the final node.
        assert_eq!(l.nodes[0].next, l.nodes[1].next);
        assert!(l.nodes[0].next.is_some());
    }

    #[test]
    fn iteration_over_cyclic_list_terminates() {
        let l = cyclic_list(4);
        // The guarded iterator must not loop forever.
        assert!(l.iter().count() <= l.nodes.len() + 1);
    }
}
