//! The orthogonal list of §3.1.3 / Figure 3: a sparse matrix with two
//! *dependent* dimensions X (across rows) and Y (down columns) — "one
//! traversal along X and another traversal along Y may lead to a common
//! substructure", yet each row and each column is itself a disjoint
//! uniquely-forward chain, which is what licenses parallel row operations.

use crossbeam::thread as cb;

/// The ADDS declaration this structure realizes (Figure 3).
pub const ADDS_DECL: &str = "
type OrthList [X] [Y]
{
    int data;
    OrthList *across is uniquely forward along X;
    OrthList *back is backward along X;
    OrthList *down is uniquely forward along Y;
    OrthList *up is backward along Y;
};
";

/// Index of a node within the matrix arena.
pub type NodeId = u32;

#[derive(Clone, Debug)]
/// One stored (row, col, value) entry with its four links (Figure 3).
pub struct OrthNode {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// Stored value.
    pub value: f64,
    /// Uniquely forward along X (next entry in the row).
    pub across: Option<NodeId>,
    /// Backward along X.
    pub back: Option<NodeId>,
    /// Uniquely forward along Y (next entry in the column).
    pub down: Option<NodeId>,
    /// Backward along Y.
    pub up: Option<NodeId>,
}

/// Sparse matrix as an orthogonal list: row heads and column heads index
/// into a node arena.
#[derive(Clone, Debug)]
pub struct OrthList {
    /// Number of matrix rows.
    pub rows: usize,
    /// Number of matrix columns.
    pub cols: usize,
    nodes: Vec<OrthNode>,
    row_heads: Vec<Option<NodeId>>,
    col_heads: Vec<Option<NodeId>>,
}

impl OrthList {
    /// An empty rows×cols sparse matrix.
    pub fn new(rows: usize, cols: usize) -> OrthList {
        OrthList {
            rows,
            cols,
            nodes: Vec::new(),
            row_heads: vec![None; rows],
            col_heads: vec![None; cols],
        }
    }

    /// Build from (row, col, value) triplets; later duplicates overwrite.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> OrthList {
        let mut m = OrthList::new(rows, cols);
        for (r, c, v) in triplets {
            m.set(r, c, v);
        }
        m
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.nodes.len()
    }

    fn node(&self, id: NodeId) -> &OrthNode {
        &self.nodes[id as usize]
    }

    /// Insert or overwrite entry (r, c). Maintains both the X chain (sorted
    /// by column within the row) and the Y chain (sorted by row within the
    /// column), with back/up links.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of bounds");
        // Overwrite if present.
        let mut cur = self.row_heads[r];
        while let Some(id) = cur {
            let n = self.node(id);
            if n.col == c {
                self.nodes[id as usize].value = v;
                return;
            }
            if n.col > c {
                break;
            }
            cur = n.across;
        }
        let id = self.nodes.len() as NodeId;
        self.nodes.push(OrthNode {
            row: r,
            col: c,
            value: v,
            across: None,
            back: None,
            down: None,
            up: None,
        });
        self.link_into_row(r, id);
        self.link_into_col(c, id);
    }

    fn link_into_row(&mut self, r: usize, id: NodeId) {
        let col = self.node(id).col;
        let mut prev: Option<NodeId> = None;
        let mut cur = self.row_heads[r];
        while let Some(x) = cur {
            if self.node(x).col > col {
                break;
            }
            prev = Some(x);
            cur = self.node(x).across;
        }
        self.nodes[id as usize].across = cur;
        self.nodes[id as usize].back = prev;
        if let Some(nx) = cur {
            self.nodes[nx as usize].back = Some(id);
        }
        match prev {
            Some(p) => self.nodes[p as usize].across = Some(id),
            None => self.row_heads[r] = Some(id),
        }
    }

    fn link_into_col(&mut self, c: usize, id: NodeId) {
        let row = self.node(id).row;
        let mut prev: Option<NodeId> = None;
        let mut cur = self.col_heads[c];
        while let Some(x) = cur {
            if self.node(x).row > row {
                break;
            }
            prev = Some(x);
            cur = self.node(x).down;
        }
        self.nodes[id as usize].down = cur;
        self.nodes[id as usize].up = prev;
        if let Some(nx) = cur {
            self.nodes[nx as usize].up = Some(id);
        }
        match prev {
            Some(p) => self.nodes[p as usize].down = Some(id),
            None => self.col_heads[c] = Some(id),
        }
    }

    /// The value at (r, c); 0.0 if unset.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let mut cur = self.row_heads[r];
        while let Some(id) = cur {
            let n = self.node(id);
            if n.col == c {
                return n.value;
            }
            if n.col > c {
                return 0.0;
            }
            cur = n.across;
        }
        0.0
    }

    /// Entries of row `r` in column order (an X-chain walk).
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let mut cur = self.row_heads[r];
        std::iter::from_fn(move || {
            let id = cur?;
            let n = self.node(id);
            cur = n.across;
            Some((n.col, n.value))
        })
    }

    /// Entries of column `c` in row order (a Y-chain walk).
    pub fn col_iter(&self, c: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let mut cur = self.col_heads[c];
        std::iter::from_fn(move || {
            let id = cur?;
            let n = self.node(id);
            cur = n.down;
            Some((n.row, n.value))
        })
    }

    /// Sparse matrix–vector product: walks each row's X chain.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|r| self.row_iter(r).map(|(c, v)| v * x[c]).sum())
            .collect()
    }

    /// Parallel SpMV: rows are disjoint X chains ("each row is disjoint, so
    /// that parallel traversals of different rows along X will never visit
    /// the same node"), so they can be processed concurrently.
    pub fn spmv_parallel(&self, x: &[f64], threads: usize) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let threads = threads.max(1);
        let mut out = vec![0.0; self.rows];
        let chunks: Vec<(usize, &mut [f64])> = {
            // Static block split of rows.
            let mut rem: &mut [f64] = &mut out;
            let mut start = 0usize;
            let mut v = Vec::new();
            let per = self.rows.div_ceil(threads);
            while !rem.is_empty() {
                let take = per.min(rem.len());
                let (a, b) = rem.split_at_mut(take);
                v.push((start, a));
                start += take;
                rem = b;
            }
            v
        };
        cb::scope(|s| {
            for (start, chunk) in chunks {
                s.spawn(move |_| {
                    for (k, slot) in chunk.iter_mut().enumerate() {
                        *slot = self.row_iter(start + k).map(|(c, v)| v * x[c]).sum();
                    }
                });
            }
        })
        .expect("spmv threads");
        out
    }

    /// Scale every entry of every row — parallel across rows.
    pub fn scale_rows_parallel(&mut self, c: f64, threads: usize) {
        let threads = threads.max(1);
        // Collect each row's node ids (disjoint sets), scale in parallel
        // via per-thread ownership of rows.
        let row_nodes: Vec<Vec<NodeId>> = (0..self.rows)
            .map(|r| {
                let mut ids = Vec::new();
                let mut cur = self.row_heads[r];
                while let Some(id) = cur {
                    ids.push(id);
                    cur = self.node(id).across;
                }
                ids
            })
            .collect();
        // Disjointness of rows ⇒ disjoint id sets; scale sequentially per
        // row but rows in parallel using unsafe-free partitioning: gather
        // (id, new_value) pairs per thread then apply.
        let mut updates: Vec<Vec<(NodeId, f64)>> = Vec::new();
        cb::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let row_nodes = &row_nodes;
                let nodes = &self.nodes;
                handles.push(s.spawn(move |_| {
                    let mut local = Vec::new();
                    let mut r = t;
                    while r < row_nodes.len() {
                        for id in &row_nodes[r] {
                            local.push((*id, nodes[*id as usize].value * c));
                        }
                        r += threads;
                    }
                    local
                }));
            }
            for h in handles {
                updates.push(h.join().expect("scale worker"));
            }
        })
        .expect("scale threads");
        for batch in updates {
            for (id, v) in batch {
                self.nodes[id as usize].value = v;
            }
        }
    }

    /// Materialize as a dense matrix (tests and references).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.cols]; self.rows];
        for n in &self.nodes {
            d[n.row][n.col] = n.value;
        }
        d
    }

    /// Run-time shape validation: X chains sorted and disjoint with correct
    /// back links; Y chains sorted with correct up links; unique incoming
    /// along each dimension.
    pub fn validate_shape(&self) -> Result<(), String> {
        let mut across_incoming = vec![0usize; self.nodes.len()];
        let mut down_incoming = vec![0usize; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if let Some(a) = n.across {
                across_incoming[a as usize] += 1;
                let an = self.node(a);
                if an.row != n.row || an.col <= n.col {
                    return Err(format!("row chain broken at node {i}"));
                }
                if an.back != Some(i as NodeId) {
                    return Err(format!("back link inconsistent at node {i}"));
                }
            }
            if let Some(d) = n.down {
                down_incoming[d as usize] += 1;
                let dn = self.node(d);
                if dn.col != n.col || dn.row <= n.row {
                    return Err(format!("column chain broken at node {i}"));
                }
                if dn.up != Some(i as NodeId) {
                    return Err(format!("up link inconsistent at node {i}"));
                }
            }
        }
        if across_incoming.iter().any(|c| *c > 1) {
            return Err("sharing along X".into());
        }
        if down_incoming.iter().any(|c| *c > 1) {
            return Err("sharing along Y".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> OrthList {
        OrthList::from_triplets(
            3,
            4,
            [
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 3, 5.0),
                (1, 3, 6.0),
            ],
        )
    }

    #[test]
    fn get_set_and_dense() {
        let m = sample();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(2, 3), 5.0);
        assert_eq!(m.nnz(), 6);
        assert_eq!(
            m.to_dense(),
            vec![
                vec![1.0, 0.0, 2.0, 0.0],
                vec![0.0, 3.0, 0.0, 6.0],
                vec![4.0, 0.0, 0.0, 5.0],
            ]
        );
        m.validate_shape().unwrap();
    }

    #[test]
    fn overwrite_keeps_shape() {
        let mut m = sample();
        m.set(0, 0, 9.0);
        assert_eq!(m.get(0, 0), 9.0);
        assert_eq!(m.nnz(), 6);
        m.validate_shape().unwrap();
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let a = OrthList::from_triplets(2, 2, [(0, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0)]);
        let b = OrthList::from_triplets(2, 2, [(1, 1, 3.0), (0, 1, 2.0), (0, 0, 1.0)]);
        assert_eq!(a.to_dense(), b.to_dense());
        a.validate_shape().unwrap();
        b.validate_shape().unwrap();
    }

    #[test]
    fn row_and_col_iterators_are_sorted() {
        let m = sample();
        let row0: Vec<(usize, f64)> = m.row_iter(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (2, 2.0)]);
        let col3: Vec<(usize, f64)> = m.col_iter(3).collect();
        assert_eq!(col3, vec![(1, 6.0), (2, 5.0)]);
        let col0: Vec<(usize, f64)> = m.col_iter(0).collect();
        assert_eq!(col0, vec![(0, 1.0), (2, 4.0)]);
    }

    #[test]
    fn dependent_dimensions_share_nodes() {
        // The same node is reachable along X (row walk) and Y (column
        // walk) — the dependence the paper's Figure 3 discussion uses.
        let m = sample();
        let via_row: Vec<(usize, f64)> = m.row_iter(2).collect();
        let via_col: Vec<(usize, f64)> = m.col_iter(0).collect();
        assert!(via_row.contains(&(0, 4.0)));
        assert!(via_col.contains(&(2, 4.0)));
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = m.spmv(&x);
        assert_eq!(y, vec![1.0 + 6.0, 6.0 + 24.0, 4.0 + 20.0]);
    }

    #[test]
    fn spmv_parallel_matches_sequential() {
        let n = 50;
        let m = OrthList::from_triplets(
            n,
            n,
            (0..n).flat_map(|i| [(i, i, 2.0), (i, (i + 1) % n, -1.0), (i, (i + 7) % n, 0.5)]),
        );
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let seq = m.spmv(&x);
        for threads in [1, 2, 4, 7] {
            let par = m.spmv_parallel(&x, threads);
            for (a, b) in seq.iter().zip(&par) {
                assert!((a - b).abs() < 1e-12, "threads={threads}");
            }
        }
    }

    #[test]
    fn scale_rows_parallel_scales_everything() {
        let mut m = sample();
        m.scale_rows_parallel(10.0, 3);
        assert_eq!(m.get(0, 0), 10.0);
        assert_eq!(m.get(2, 3), 50.0);
        m.validate_shape().unwrap();
    }

    #[test]
    fn adds_decl_is_well_formed() {
        let prog = adds_lang::parse_program(ADDS_DECL).unwrap();
        let env = adds_lang::AddsEnv::build(&prog).unwrap();
        let t = env.get("OrthList").unwrap();
        assert!(t.is_uniquely_forward("across"));
        assert!(t.is_uniquely_forward("down"));
        assert!(t.opposite_pair("across", "back"));
        assert!(t.opposite_pair("down", "up"));
        // X and Y are dependent (no `where` clause).
        assert!(!t.dims_independent(0, 1));
    }

    #[test]
    fn empty_matrix() {
        let m = OrthList::new(3, 3);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.spmv(&[1.0, 1.0, 1.0]), vec![0.0, 0.0, 0.0]);
        m.validate_shape().unwrap();
    }
}
