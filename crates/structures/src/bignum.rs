//! Arbitrary-precision integers over a one-way linked list — the paper's
//! §3.1.1 motivating application ("a bignum can be represented by a list of
//! nodes, where each node in the list contains a fixed number of digits …
//! the integer is stored in reverse order for ease of manipulation").
//!
//! Three decimal digits per node, least-significant node first, exactly as
//! in the paper's 3,298,991 example.

use crate::list::OneWayList;
use std::cmp::Ordering;
use std::fmt;

/// Digits per node (the paper's figure shows 3).
pub const DIGITS_PER_NODE: u32 = 3;
/// Numeric base of one limb (10^DIGITS_PER_NODE).
pub const BASE: u64 = 10u64.pow(DIGITS_PER_NODE);

/// An unsigned big integer: limbs in a one-way list, least significant
/// first.
#[derive(Clone, Debug, Default)]
pub struct Bignum {
    /// Limbs, least significant first (the paper's reverse order).
    pub limbs: OneWayList<u64>,
}

impl Bignum {
    /// The number 0 (empty limb list).
    pub fn zero() -> Bignum {
        Bignum {
            limbs: OneWayList::from_iter_back([0]),
        }
    }

    /// Convert from a machine integer.
    pub fn from_u64(mut v: u64) -> Bignum {
        let mut limbs = OneWayList::new();
        if v == 0 {
            limbs.push_back(0);
        }
        while v > 0 {
            limbs.push_back(v % BASE);
            v /= BASE;
        }
        Bignum { limbs }
    }

    /// Parse a decimal string.
    pub fn from_decimal(s: &str) -> Result<Bignum, String> {
        let s = s.trim().replace([',', '_'], "");
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(format!("not a decimal number: {s:?}"));
        }
        let digits: Vec<u8> = s.bytes().map(|b| b - b'0').collect();
        let mut limbs = OneWayList::new();
        // Walk from the least significant end in 3-digit groups.
        let mut idx = digits.len();
        while idx > 0 {
            let start = idx.saturating_sub(DIGITS_PER_NODE as usize);
            let mut limb = 0u64;
            for d in &digits[start..idx] {
                limb = limb * 10 + *d as u64;
            }
            limbs.push_back(limb);
            idx = start;
        }
        let mut b = Bignum { limbs };
        b.normalize();
        Ok(b)
    }

    /// Digits of each node, least significant node first — the Figure 2
    /// layout.
    pub fn limb_values(&self) -> Vec<u64> {
        self.limbs.iter().copied().collect()
    }

    fn normalize(&mut self) {
        let mut vals = self.limb_values();
        while vals.len() > 1 && *vals.last().unwrap() == 0 {
            vals.pop();
        }
        self.limbs = OneWayList::from_iter_back(vals);
    }

    /// Is this 0?
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|l| *l == 0)
    }

    /// Sum of two bignums (walks both limb lists with carry).
    pub fn add(&self, other: &Bignum) -> Bignum {
        let a = self.limb_values();
        let b = other.limb_values();
        let mut out = Vec::with_capacity(a.len().max(b.len()) + 1);
        let mut carry = 0u64;
        for i in 0..a.len().max(b.len()) {
            let s = a.get(i).copied().unwrap_or(0) + b.get(i).copied().unwrap_or(0) + carry;
            out.push(s % BASE);
            carry = s / BASE;
        }
        if carry > 0 {
            out.push(carry);
        }
        Bignum {
            limbs: OneWayList::from_iter_back(out),
        }
    }

    /// Multiply by a small constant — the list-walking loop the paper's
    /// scale example generalizes.
    pub fn mul_small(&self, c: u64) -> Bignum {
        assert!(c < BASE * BASE, "constant too large");
        let mut out = Vec::new();
        let mut carry = 0u64;
        for l in self.limbs.iter() {
            let v = l * c + carry;
            out.push(v % BASE);
            carry = v / BASE;
        }
        while carry > 0 {
            out.push(carry % BASE);
            carry /= BASE;
        }
        if out.is_empty() {
            out.push(0);
        }
        let mut b = Bignum {
            limbs: OneWayList::from_iter_back(out),
        };
        b.normalize();
        b
    }

    /// Full multiplication (schoolbook over limbs).
    pub fn mul(&self, other: &Bignum) -> Bignum {
        let a = self.limb_values();
        let b = other.limb_values();
        let mut acc = vec![0u64; a.len() + b.len() + 1];
        for (i, x) in a.iter().enumerate() {
            let mut carry = 0u64;
            for (j, y) in b.iter().enumerate() {
                let v = acc[i + j] + x * y + carry;
                acc[i + j] = v % BASE;
                carry = v / BASE;
            }
            let mut k = i + b.len();
            while carry > 0 {
                let v = acc[k] + carry;
                acc[k] = v % BASE;
                carry = v / BASE;
                k += 1;
            }
        }
        let mut bn = Bignum {
            limbs: OneWayList::from_iter_back(acc),
        };
        bn.normalize();
        bn
    }

    /// Compare absolute values.
    pub fn cmp_magnitude(&self, other: &Bignum) -> Ordering {
        let a = self.limb_values();
        let b = other.limb_values();
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            match x.cmp(y) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// Decimal rendering (no separators).
    pub fn to_decimal(&self) -> String {
        let vals = self.limb_values();
        let mut s = String::new();
        for (i, l) in vals.iter().enumerate().rev() {
            if i == vals.len() - 1 {
                s.push_str(&l.to_string());
            } else {
                s.push_str(&format!("{:0width$}", l, width = DIGITS_PER_NODE as usize));
            }
        }
        s
    }
}

impl fmt::Display for Bignum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_decimal())
    }
}

impl PartialEq for Bignum {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_magnitude(other) == Ordering::Equal
    }
}
impl Eq for Bignum {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_3_298_991() {
        // "here is a linked-list representation of the integer 3,298,991
        // (three digits per node)" — nodes 991 | 298 | 3, least significant
        // first.
        let b = Bignum::from_decimal("3,298,991").unwrap();
        assert_eq!(b.limb_values(), vec![991, 298, 3]);
        assert_eq!(b.to_decimal(), "3298991");
    }

    #[test]
    fn from_u64_round_trips() {
        for v in [0u64, 1, 999, 1000, 123_456_789, u32::MAX as u64] {
            assert_eq!(Bignum::from_u64(v).to_decimal(), v.to_string());
        }
    }

    #[test]
    fn addition_with_carries() {
        let a = Bignum::from_decimal("999999999").unwrap();
        let b = Bignum::from_decimal("1").unwrap();
        assert_eq!(a.add(&b).to_decimal(), "1000000000");
        let z = Bignum::zero();
        assert_eq!(a.add(&z), a);
    }

    #[test]
    fn mul_small_scales() {
        let a = Bignum::from_decimal("3298991").unwrap();
        assert_eq!(a.mul_small(2).to_decimal(), "6597982");
        assert_eq!(a.mul_small(0).to_decimal(), "0");
        assert_eq!(a.mul_small(1), a);
    }

    #[test]
    fn full_multiplication() {
        let a = Bignum::from_decimal("123456789").unwrap();
        let b = Bignum::from_decimal("987654321").unwrap();
        assert_eq!(a.mul(&b).to_decimal(), "121932631112635269");
        assert_eq!(a.mul(&Bignum::zero()).to_decimal(), "0");
    }

    #[test]
    fn big_factorial() {
        // 30! has 33 digits — needs real multi-limb arithmetic.
        let mut f = Bignum::from_u64(1);
        for k in 2..=30 {
            f = f.mul_small(k);
        }
        assert_eq!(f.to_decimal(), "265252859812191058636308480000000");
    }

    #[test]
    fn comparison() {
        let a = Bignum::from_decimal("1000").unwrap();
        let b = Bignum::from_decimal("999").unwrap();
        assert_eq!(a.cmp_magnitude(&b), Ordering::Greater);
        assert_eq!(b.cmp_magnitude(&a), Ordering::Less);
        assert_eq!(a.cmp_magnitude(&a), Ordering::Equal);
    }

    #[test]
    fn list_shape_stays_valid() {
        let a = Bignum::from_decimal("98765432109876543210").unwrap();
        a.limbs.validate_shape().unwrap();
        let b = a.mul(&a);
        b.limbs.validate_shape().unwrap();
    }

    #[test]
    fn rejects_garbage() {
        assert!(Bignum::from_decimal("12a4").is_err());
        assert!(Bignum::from_decimal("").is_err());
    }
}
