//! The two-dimensional range tree of §3.1.3 / Figure 4: "a binary tree of
//! binary trees, where the leaves of each tree are linked together into a
//! two-way linked list". Three ADDS dimensions: `down` (the x-tree),
//! `sub` (each node's y-tree, *independent* of the others), and `leaves`
//! (the two-way list), answering interval and rectangle queries.

/// Index of a node within the tree arena.
pub type NodeId = u32;

/// The ADDS declaration this structure realizes (Figure 4).
pub const ADDS_DECL: &str = "
type TwoDRangeTree [down] [sub] [leaves] where sub||down, sub||leaves
{
    int data;
    TwoDRangeTree *left, *right is uniquely forward along down;
    TwoDRangeTree *subtree is uniquely forward along sub;
    TwoDRangeTree *next is uniquely forward along leaves;
    TwoDRangeTree *prev is backward along leaves;
};
";

#[derive(Clone, Copy, Debug, PartialEq)]
/// A 2-D point with a caller-supplied identifier.
pub struct Point {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
    /// Caller-supplied identifier reported by queries.
    pub id: u32,
}

/// A node of the x-tree. Leaves hold one point and are chained by
/// `next`/`prev`; internal nodes carry the split value and a y-sorted
/// subtree (realized as a y-ordered binary tree over the same node arena).
#[derive(Clone, Debug)]
struct XNode {
    /// Max x in the left subtree (split key).
    split: f64,
    left: Option<NodeId>,
    right: Option<NodeId>,
    /// Leaf payload.
    point: Option<Point>,
    /// Leaf chain (the `leaves` dimension).
    next: Option<NodeId>,
    prev: Option<NodeId>,
    /// The associated structure (the `sub` dimension): all points of this
    /// subtree sorted by y.
    sub: Vec<Point>,
}

#[derive(Clone, Debug, Default)]
/// The 2-D range tree (Figure 4): x-tree over y-sorted associates, leaves chained.
pub struct RangeTree2D {
    nodes: Vec<XNode>,
    root: Option<NodeId>,
    leftmost: Option<NodeId>,
}

impl RangeTree2D {
    /// Build from a point set. O(n log² n).
    pub fn build(mut points: Vec<Point>) -> RangeTree2D {
        points.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap());
        let mut t = RangeTree2D::default();
        if points.is_empty() {
            return t;
        }
        let root = t.build_rec(&points);
        t.root = Some(root);
        // Chain the leaves left-to-right.
        let mut leaves = Vec::new();
        t.collect_leaves(root, &mut leaves);
        for w in leaves.windows(2) {
            t.nodes[w[0] as usize].next = Some(w[1]);
            t.nodes[w[1] as usize].prev = Some(w[0]);
        }
        t.leftmost = leaves.first().copied();
        t
    }

    fn build_rec(&mut self, pts: &[Point]) -> NodeId {
        let mut sub: Vec<Point> = pts.to_vec();
        sub.sort_by(|a, b| a.y.partial_cmp(&b.y).unwrap());
        if pts.len() == 1 {
            let id = self.nodes.len() as NodeId;
            self.nodes.push(XNode {
                split: pts[0].x,
                left: None,
                right: None,
                point: Some(pts[0]),
                next: None,
                prev: None,
                sub,
            });
            return id;
        }
        let mid = pts.len() / 2;
        let split = pts[mid - 1].x;
        let id = self.nodes.len() as NodeId;
        self.nodes.push(XNode {
            split,
            left: None,
            right: None,
            point: None,
            next: None,
            prev: None,
            sub,
        });
        let l = self.build_rec(&pts[..mid]);
        let r = self.build_rec(&pts[mid..]);
        self.nodes[id as usize].left = Some(l);
        self.nodes[id as usize].right = Some(r);
        id
    }

    fn collect_leaves(&self, id: NodeId, out: &mut Vec<NodeId>) {
        let n = &self.nodes[id as usize];
        if n.point.is_some() {
            out.push(id);
            return;
        }
        if let Some(l) = n.left {
            self.collect_leaves(l, out);
        }
        if let Some(r) = n.right {
            self.collect_leaves(r, out);
        }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| n.point.is_some()).count()
    }

    /// Whether no points are stored.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// All points with x in [x1, x2], reported via the leaf chain — the
    /// "find all points within the interval x1..x2" query.
    pub fn interval_query(&self, x1: f64, x2: f64) -> Vec<Point> {
        let mut out = Vec::new();
        // Descend to the first leaf with x ≥ x1, then walk `next`.
        let Some(mut cur) = self.root else {
            return out;
        };
        loop {
            let n = &self.nodes[cur as usize];
            if n.point.is_some() {
                break;
            }
            cur = if x1 <= n.split {
                n.left.expect("internal has left")
            } else {
                n.right.expect("internal has right")
            };
        }
        let mut leaf = Some(cur);
        while let Some(id) = leaf {
            let n = &self.nodes[id as usize];
            let p = n.point.expect("leaf");
            if p.x > x2 {
                break;
            }
            if p.x >= x1 {
                out.push(p);
            }
            leaf = n.next;
        }
        out
    }

    /// All points within \[x1,x2\] × \[y1,y2\] — the canonical 2-D range query
    /// using the independent `sub` dimension: O(log² n + k).
    pub fn rectangle_query(&self, x1: f64, x2: f64, y1: f64, y2: f64) -> Vec<Point> {
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.rect_rec(
                root,
                x1,
                x2,
                y1,
                y2,
                f64::NEG_INFINITY,
                f64::INFINITY,
                &mut out,
            );
        }
        out.sort_by(|a, b| (a.x, a.y).partial_cmp(&(b.x, b.y)).unwrap());
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn rect_rec(
        &self,
        id: NodeId,
        x1: f64,
        x2: f64,
        y1: f64,
        y2: f64,
        lo: f64,
        hi: f64,
        out: &mut Vec<Point>,
    ) {
        let n = &self.nodes[id as usize];
        if let Some(p) = n.point {
            if p.x >= x1 && p.x <= x2 && p.y >= y1 && p.y <= y2 {
                out.push(p);
            }
            return;
        }
        // Subtree x-range fully inside [x1, x2]: search the y-subtree.
        if x1 <= lo && hi <= x2 {
            let sub = &n.sub;
            let start = sub.partition_point(|p| p.y < y1);
            for p in &sub[start..] {
                if p.y > y2 {
                    break;
                }
                out.push(*p);
            }
            return;
        }
        // Otherwise recurse into children that intersect.
        if x1 <= n.split {
            if let Some(l) = n.left {
                self.rect_rec(l, x1, x2, y1, y2, lo, n.split, out);
            }
        }
        if x2 > n.split {
            if let Some(r) = n.right {
                self.rect_rec(r, x1, x2, y1, y2, n.split, hi, out);
            }
        }
    }

    /// Count of points in the rectangle (no reporting).
    pub fn rectangle_count(&self, x1: f64, x2: f64, y1: f64, y2: f64) -> usize {
        self.rectangle_query(x1, x2, y1, y2).len()
    }

    /// Leaf chain in x order (the `leaves` dimension).
    pub fn leaves(&self) -> impl Iterator<Item = Point> + '_ {
        let mut cur = self.leftmost;
        std::iter::from_fn(move || {
            let id = cur?;
            let n = &self.nodes[id as usize];
            cur = n.next;
            n.point
        })
    }

    /// Run-time validation of the Figure 4 shape: disjoint left/right
    /// subtrees, leaf chain consistent with prev links and sorted by x,
    /// every leaf reachable from the root exactly once.
    pub fn validate_shape(&self) -> Result<(), String> {
        let mut incoming = vec![0usize; self.nodes.len()];
        for n in &self.nodes {
            for c in [n.left, n.right].into_iter().flatten() {
                incoming[c as usize] += 1;
            }
        }
        if incoming.iter().any(|c| *c > 1) {
            return Err("sharing along down".into());
        }
        // Leaf chain.
        let mut prev: Option<NodeId> = None;
        let mut cur = self.leftmost;
        let mut last_x = f64::NEG_INFINITY;
        let mut count = 0usize;
        while let Some(id) = cur {
            let n = &self.nodes[id as usize];
            if n.point.is_none() {
                return Err("internal node on the leaf chain".into());
            }
            if n.prev != prev {
                return Err("prev link inconsistent".into());
            }
            let x = n.point.unwrap().x;
            if x < last_x {
                return Err("leaf chain not sorted by x".into());
            }
            last_x = x;
            count += 1;
            if count > self.nodes.len() {
                return Err("cycle in leaf chain".into());
            }
            prev = cur;
            cur = n.next;
        }
        if count != self.len() {
            return Err(format!("chain covers {count} of {} leaves", self.len()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<Point> {
        // n×n lattice with distinct coordinates.
        let mut pts = Vec::new();
        for i in 0..n {
            for j in 0..n {
                pts.push(Point {
                    x: i as f64 + j as f64 * 1e-6,
                    y: j as f64,
                    id: (i * n + j) as u32,
                });
            }
        }
        pts
    }

    fn brute(pts: &[Point], x1: f64, x2: f64, y1: f64, y2: f64) -> Vec<u32> {
        let mut v: Vec<u32> = pts
            .iter()
            .filter(|p| p.x >= x1 && p.x <= x2 && p.y >= y1 && p.y <= y2)
            .map(|p| p.id)
            .collect();
        v.sort();
        v
    }

    #[test]
    fn builds_and_validates() {
        let t = RangeTree2D::build(grid(5));
        assert_eq!(t.len(), 25);
        t.validate_shape().unwrap();
    }

    #[test]
    fn leaves_are_sorted_by_x() {
        let t = RangeTree2D::build(grid(4));
        let xs: Vec<f64> = t.leaves().map(|p| p.x).collect();
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(xs, sorted);
        assert_eq!(xs.len(), 16);
    }

    #[test]
    fn interval_query_matches_brute_force() {
        let pts = grid(6);
        let t = RangeTree2D::build(pts.clone());
        let got: Vec<u32> = {
            let mut v: Vec<u32> = t.interval_query(1.5, 4.2).iter().map(|p| p.id).collect();
            v.sort();
            v
        };
        let want = brute(&pts, 1.5, 4.2, f64::NEG_INFINITY, f64::INFINITY);
        assert_eq!(got, want);
    }

    #[test]
    fn rectangle_query_matches_brute_force() {
        let pts = grid(7);
        let t = RangeTree2D::build(pts.clone());
        for (x1, x2, y1, y2) in [
            (0.0, 3.0, 1.0, 4.0),
            (2.5, 5.5, 0.0, 2.0),
            (-1.0, 10.0, -1.0, 10.0),
            (3.0, 3.0, 0.0, 6.0),
            (5.0, 2.0, 0.0, 6.0), // empty (inverted x)
        ] {
            let got: Vec<u32> = {
                let mut v: Vec<u32> = t
                    .rectangle_query(x1, x2, y1, y2)
                    .iter()
                    .map(|p| p.id)
                    .collect();
                v.sort();
                v
            };
            let want = brute(&pts, x1, x2, y1, y2);
            assert_eq!(got, want, "rect ({x1},{x2})×({y1},{y2})");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let t = RangeTree2D::build(vec![]);
        assert!(t.is_empty());
        assert!(t.rectangle_query(0.0, 1.0, 0.0, 1.0).is_empty());
        t.validate_shape().unwrap();

        let t = RangeTree2D::build(vec![Point {
            x: 1.0,
            y: 2.0,
            id: 9,
        }]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.rectangle_count(0.0, 2.0, 0.0, 3.0), 1);
        assert_eq!(t.rectangle_count(2.0, 3.0, 0.0, 3.0), 0);
        t.validate_shape().unwrap();
    }

    #[test]
    fn adds_decl_is_well_formed() {
        let prog = adds_lang::parse_program(ADDS_DECL).unwrap();
        let env = adds_lang::AddsEnv::build(&prog).unwrap();
        let t = env.get("TwoDRangeTree").unwrap();
        let down = t.dim_id("down").unwrap();
        let sub = t.dim_id("sub").unwrap();
        let leaves = t.dim_id("leaves").unwrap();
        assert!(t.dims_independent(sub, down));
        assert!(t.dims_independent(sub, leaves));
        assert!(!t.dims_independent(down, leaves));
        assert!(t.same_group("left", "right"));
    }

    #[test]
    fn rectangle_count_scales() {
        let pts = grid(10);
        let t = RangeTree2D::build(pts);
        assert_eq!(t.rectangle_count(-1.0, 100.0, -1.0, 100.0), 100);
        assert_eq!(t.rectangle_count(0.0, 0.1, 0.0, 0.0), 1);
    }
}
