//! The one-way linked list of §3.1.1 — arena-backed, with its ADDS
//! declaration attached and run-time shape validation.

use crossbeam::thread as cb;

/// The ADDS declaration this structure realizes (Figure 2).
pub const ADDS_DECL: &str = "
type OneWayList [X]
{
    int data;
    OneWayList *next is uniquely forward along X;
};
";

/// Index of a node within the list arena.
pub type NodeId = u32;

#[derive(Clone, Debug)]
/// One list cell.
pub struct ListNode<T> {
    /// Payload.
    pub data: T,
    /// Uniquely-forward link along the X dimension.
    pub next: Option<NodeId>,
}

/// A one-way linked list over an arena. The arena is public enough for the
/// `misuse` module to build Figure 1's pathological shapes from the *same
/// node type* — the paper's point that the type alone does not fix the
/// shape.
#[derive(Clone, Debug, Default)]
pub struct OneWayList<T> {
    pub(crate) nodes: Vec<ListNode<T>>,
    pub(crate) head: Option<NodeId>,
    pub(crate) tail: Option<NodeId>,
}

impl<T> OneWayList<T> {
    /// The empty list.
    pub fn new() -> OneWayList<T> {
        OneWayList {
            nodes: Vec::new(),
            head: None,
            tail: None,
        }
    }

    /// Build by appending each item at the tail.
    pub fn from_iter_back(items: impl IntoIterator<Item = T>) -> OneWayList<T> {
        let mut l = OneWayList::new();
        for x in items {
            l.push_back(x);
        }
        l
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    /// Whether the list has no cells.
    pub fn is_empty(&self) -> bool {
        self.head.is_none()
    }

    /// The first cell.
    pub fn head(&self) -> Option<NodeId> {
        self.head
    }

    /// Append at the tail; returns the new cell.
    pub fn push_back(&mut self, data: T) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(ListNode { data, next: None });
        match self.tail {
            Some(t) => self.nodes[t as usize].next = Some(id),
            None => self.head = Some(id),
        }
        self.tail = Some(id);
        id
    }

    /// Prepend at the head; returns the new cell.
    pub fn push_front(&mut self, data: T) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(ListNode {
            data,
            next: self.head,
        });
        if self.tail.is_none() {
            self.tail = Some(id);
        }
        self.head = Some(id);
        id
    }

    /// The cell `id`.
    pub fn node(&self, id: NodeId) -> &ListNode<T> {
        &self.nodes[id as usize]
    }

    /// Mutable access to cell `id`.
    pub fn node_mut(&mut self, id: NodeId) -> &mut ListNode<T> {
        &mut self.nodes[id as usize]
    }

    /// Follow `next`; `None` in, `None` out (speculative traversability).
    pub fn next_of(&self, id: Option<NodeId>) -> Option<NodeId> {
        id.and_then(|i| self.nodes[i as usize].next)
    }

    /// Iterate data in list order. Guards against cyclic corruption by
    /// stopping after `nodes.len()` steps.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let mut cur = self.head;
        let mut steps = 0usize;
        let cap = self.nodes.len();
        std::iter::from_fn(move || {
            if steps > cap {
                return None;
            }
            let id = cur?;
            steps += 1;
            cur = self.nodes[id as usize].next;
            Some(&self.nodes[id as usize].data)
        })
    }

    /// Cell ids in chain order.
    pub fn iter_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        let mut cur = self.head;
        let mut steps = 0usize;
        let cap = self.nodes.len();
        std::iter::from_fn(move || {
            if steps > cap {
                return None;
            }
            let id = cur?;
            steps += 1;
            cur = self.nodes[id as usize].next;
            Some(id)
        })
    }

    /// Run-time validation of the declared shape (§2.2): acyclic along
    /// `next`, every node has at most one incoming `next` link, and the
    /// head has none.
    pub fn validate_shape(&self) -> Result<(), String> {
        let mut incoming = vec![0usize; self.nodes.len()];
        for n in &self.nodes {
            if let Some(nx) = n.next {
                incoming[nx as usize] += 1;
            }
        }
        for (i, c) in incoming.iter().enumerate() {
            if *c > 1 {
                return Err(format!("node {i} has {c} incoming next links (sharing)"));
            }
        }
        if let Some(h) = self.head {
            if incoming[h as usize] != 0 {
                return Err("head has an incoming next link (cycle)".into());
            }
        }
        // Floyd cycle detection along the chain.
        let mut slow = self.head;
        let mut fast = self.head;
        loop {
            fast = self.next_of(self.next_of(fast));
            slow = self.next_of(slow);
            match (slow, fast) {
                (Some(a), Some(b)) if a == b => return Err("cycle detected along next".into()),
                (_, None) => return Ok(()),
                _ => {}
            }
        }
    }
}

impl<T: Send + Sync> OneWayList<T> {
    /// Process every node in parallel with static strip scheduling — the
    /// §4.3.3 transformation applied to a generic list: worker *t* skips
    /// `t` links from the head, processes a node, then skips `threads`
    /// links (speculatively traversing past the end). `f` must be
    /// independent per node — the condition the analysis verifies.
    /// Results come back in list order.
    pub fn par_map<R: Send>(&self, threads: usize, f: impl Fn(&T) -> R + Sync) -> Vec<R> {
        let threads = threads.max(1);
        let head = self.head;
        let mut partials: Vec<Vec<(usize, R)>> = Vec::new();
        cb::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let f = &f;
                handles.push(s.spawn(move |_| {
                    let mut local = Vec::new();
                    // FOR2: skip t links ahead.
                    let mut cur = head;
                    let mut pos = 0usize;
                    for _ in 0..t {
                        cur = self.next_of(cur);
                        pos += 1;
                    }
                    while let Some(id) = cur {
                        local.push((pos, f(&self.nodes[id as usize].data)));
                        // FOR1: skip `threads` links ahead (speculative).
                        for _ in 0..threads {
                            cur = self.next_of(cur);
                        }
                        pos += threads;
                    }
                    local
                }));
            }
            for h in handles {
                partials.push(h.join().expect("par_map worker"));
            }
        })
        .expect("par_map threads");
        let n = self.len();
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for part in partials {
            for (pos, r) in part {
                out[pos] = Some(r);
            }
        }
        out.into_iter()
            .map(|r| r.expect("position covered"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_back_preserves_order() {
        let l = OneWayList::from_iter_back([1, 2, 3, 4]);
        let v: Vec<i32> = l.iter().copied().collect();
        assert_eq!(v, vec![1, 2, 3, 4]);
        assert_eq!(l.len(), 4);
        l.validate_shape().unwrap();
    }

    #[test]
    fn push_front_prepends() {
        let mut l = OneWayList::new();
        l.push_front(2);
        l.push_front(1);
        l.push_back(3);
        let v: Vec<i32> = l.iter().copied().collect();
        assert_eq!(v, vec![1, 2, 3]);
        l.validate_shape().unwrap();
    }

    #[test]
    fn empty_list_is_valid() {
        let l: OneWayList<i32> = OneWayList::new();
        assert!(l.is_empty());
        l.validate_shape().unwrap();
    }

    #[test]
    fn corruption_is_detected() {
        let mut l = OneWayList::from_iter_back([1, 2, 3]);
        // Close a cycle: 3 -> 1.
        l.node_mut(2).next = Some(0);
        assert!(l.validate_shape().is_err());
    }

    #[test]
    fn sharing_is_detected() {
        let mut l = OneWayList::from_iter_back([1, 2, 3]);
        // Tournament-style sharing: both 1 and 2 point at 3.
        l.node_mut(0).next = Some(2);
        let err = l.validate_shape().unwrap_err();
        assert!(err.contains("incoming"), "{err}");
    }

    #[test]
    fn par_map_matches_sequential() {
        let l = OneWayList::from_iter_back(0..103i64);
        let seq: Vec<i64> = l.iter().map(|x| x * x).collect();
        for threads in [1, 2, 4, 7] {
            let par = l.par_map(threads, |x| x * x);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn adds_decl_parses_and_is_well_formed() {
        let prog = adds_lang::parse_program(ADDS_DECL).unwrap();
        let env = adds_lang::AddsEnv::build(&prog).unwrap();
        let t = env.get("OneWayList").unwrap();
        assert!(t.is_uniquely_forward("next"));
    }

    #[test]
    fn speculative_next_of() {
        let l = OneWayList::from_iter_back([1]);
        assert_eq!(l.next_of(None), None);
        assert_eq!(l.next_of(Some(0)), None);
    }
}
