//! # adds-structures — the paper's scientific pointer structures, natively
//!
//! Every data structure the paper uses to motivate ADDS (§3.1), implemented
//! as a real Rust library with (a) the corresponding ADDS declaration
//! attached as a constant, (b) run-time shape validators (the §2.2
//! "compiler-generated run-time checks"), and (c) parallel operations where
//! the declared shape licenses them:
//!
//! * [`list`] — the one-way linked list (Figure 2) with strip-parallel map,
//! * [`bignum`] — "infinite" precision integers, 3 digits per node (§3.1.1),
//! * [`poly`] — sparse polynomials incl. the §3.3.2 scaling loop,
//! * [`orthlist`] — the orthogonal-list sparse matrix (Figure 3),
//! * [`rangetree`] — the 2-D range tree (Figure 4),
//! * [`twoway`] — the §2.2 two-way list (next/prev is not a cycle),
//! * [`misuse`] — Figure 1's cyclic and tournament shapes built from the
//!   *same* node type, with classification,
//! * [`render`] — ASCII regeneration of the figures.

#![warn(missing_docs)]

pub mod bignum;
pub mod list;
pub mod misuse;
pub mod orthlist;
pub mod poly;
pub mod quadtree;
pub mod rangetree;
pub mod render;
pub mod twoway;

pub use bignum::Bignum;
pub use list::OneWayList;
pub use misuse::{classify, cyclic_list, tournament, ListShape};
pub use orthlist::OrthList;
pub use poly::{Polynomial, Term};
pub use quadtree::{QPoint, Quadtree};
pub use rangetree::{Point, RangeTree2D};
pub use twoway::TwoWayList;
