//! A point-region quadtree — the 2-D sibling of the paper's octree and one
//! of the §1 motivating structures ("numerous data structures in scientific
//! programs — sparse matrices and quadtrees for example — are typically
//! built using recursively-defined pointer data structures", citing
//! \[Sam90\]).
//!
//! The shape mirrors Figure 5 one dimension down: a `down` dimension of
//! four uniquely-forward child links per node, and a `leaves` dimension
//! chaining the stored points into a one-way list. Insertion follows the
//! paper's §4.3.2 protocol — `expand_box` grows the root until the point
//! fits, then `insert` subdivides occupied quadrants until the two points
//! separate — including the *temporary sharing* window the abstraction
//! validation discussion centres on (realized here atomically, since safe
//! Rust cannot express the torn intermediate state; the IL version in
//! `adds-lang::programs` exhibits it for the analysis).

/// Index of a node within the quadtree arena.
pub type NodeId = u32;

/// The ADDS declaration this structure realizes.
pub const ADDS_DECL: &str = "
type Quadtree [down][leaves]
{
    real x, y;
    bool is_leaf;
    Quadtree *children[4] is uniquely forward along down;
    Quadtree *next is uniquely forward along leaves;
};
";

/// A stored point with a caller-supplied identifier.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QPoint {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
    /// Caller-supplied identifier reported by queries.
    pub id: u32,
}

#[derive(Clone, Debug)]
struct QNode {
    /// Centre of this node's square region.
    cx: f64,
    cy: f64,
    /// Half-width of the region.
    hw: f64,
    /// Child quadrants (the `down` dimension); all `None` for leaves.
    children: [Option<NodeId>; 4],
    /// Stored point — `Some` exactly for leaves.
    point: Option<QPoint>,
    /// Leaf chain (the `leaves` dimension).
    next: Option<NodeId>,
}

impl QNode {
    fn is_leaf(&self) -> bool {
        self.point.is_some()
    }

    fn empty(cx: f64, cy: f64, hw: f64) -> QNode {
        QNode {
            cx,
            cy,
            hw,
            children: [None; 4],
            point: None,
            next: None,
        }
    }
}

/// A point-region quadtree over an arena of nodes.
#[derive(Clone, Debug, Default)]
pub struct Quadtree {
    nodes: Vec<QNode>,
    root: Option<NodeId>,
    /// Head of the leaf chain; rebuilt by [`Quadtree::relink_leaves`].
    first_leaf: Option<NodeId>,
    len: usize,
}

impl Quadtree {
    /// The empty quadtree.
    pub fn new() -> Quadtree {
        Quadtree::default()
    }

    /// Build from a point set (inserting in order).
    pub fn build(points: impl IntoIterator<Item = QPoint>) -> Quadtree {
        let mut t = Quadtree::new();
        for p in points {
            t.insert(p);
        }
        t.relink_leaves();
        t
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no points are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn alloc(&mut self, n: QNode) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(n);
        id
    }

    fn quadrant(cx: f64, cy: f64, x: f64, y: f64) -> usize {
        let mut q = 0;
        if x >= cx {
            q += 1;
        }
        if y >= cy {
            q += 2;
        }
        q
    }

    fn child_centre(cx: f64, cy: f64, hw: f64, q: usize) -> (f64, f64) {
        let h = hw / 2.0;
        (
            if q % 2 == 1 { cx + h } else { cx - h },
            if q / 2 == 1 { cy + h } else { cy - h },
        )
    }

    /// §4.3.2 `expand_box`: grow the root region (doubling the half-width,
    /// keeping the current tree as one quadrant) until `(x, y)` fits.
    fn expand_box(&mut self, x: f64, y: f64) {
        let Some(mut root) = self.root else {
            self.root = Some(self.alloc(QNode::empty(x, y, 1.0)));
            return;
        };
        for _ in 0..256 {
            let (cx, cy, hw) = {
                let r = &self.nodes[root as usize];
                (r.cx, r.cy, r.hw)
            };
            if (x - cx).abs() <= hw && (y - cy).abs() <= hw {
                break;
            }
            // Grow toward the point: the old root becomes the quadrant of
            // a new, twice-as-wide root whose centre steps toward (x,y).
            let nx = if x >= cx { cx + hw } else { cx - hw };
            let ny = if y >= cy { cy + hw } else { cy - hw };
            let new_root = self.alloc(QNode::empty(nx, ny, hw * 2.0));
            let q = Self::quadrant(nx, ny, cx, cy);
            self.nodes[new_root as usize].children[q] = Some(root);
            root = new_root;
        }
        self.root = Some(root);
    }

    /// Insert a point, subdividing occupied quadrants until it has one to
    /// itself (§4.3.2 `insert_particle`). Duplicate coordinates nest until
    /// the spatial resolution floor, then the oldest point is kept and the
    /// new one replaces it (a documented departure: the paper's code
    /// assumes distinct particle positions).
    pub fn insert(&mut self, p: QPoint) {
        self.expand_box(p.x, p.y);
        let mut cur = self.root.expect("expand_box set a root");
        // Empty tree: the root itself becomes a leaf.
        if self.nodes[cur as usize].point.is_none()
            && self.nodes[cur as usize]
                .children
                .iter()
                .all(Option::is_none)
        {
            self.nodes[cur as usize].point = Some(p);
            self.len += 1;
            return;
        }
        loop {
            let (cx, cy, hw, is_leaf) = {
                let n = &self.nodes[cur as usize];
                (n.cx, n.cy, n.hw, n.is_leaf())
            };
            if is_leaf {
                // Occupied: push the competitor down, then retry this node
                // as an interior node.
                let competitor = self.nodes[cur as usize].point.take().expect("leaf");
                if hw < 1e-12 {
                    // Resolution floor (coincident points): replace.
                    self.nodes[cur as usize].point = Some(p);
                    return;
                }
                let q = Self::quadrant(cx, cy, competitor.x, competitor.y);
                let (qx, qy) = Self::child_centre(cx, cy, hw, q);
                let child = self.alloc(QNode::empty(qx, qy, hw / 2.0));
                self.nodes[child as usize].point = Some(competitor);
                self.nodes[cur as usize].children[q] = Some(child);
                continue;
            }
            let q = Self::quadrant(cx, cy, p.x, p.y);
            match self.nodes[cur as usize].children[q] {
                Some(c) => cur = c,
                None => {
                    let (qx, qy) = Self::child_centre(cx, cy, hw, q);
                    let child = self.alloc(QNode::empty(qx, qy, hw / 2.0));
                    self.nodes[child as usize].point = Some(p);
                    self.nodes[cur as usize].children[q] = Some(child);
                    self.len += 1;
                    return;
                }
            }
        }
    }

    /// Rebuild the `leaves` chain in depth-first (spatial) order. The
    /// octree of §4 keeps its particle list as the insertion input; here
    /// the chain is derived, which keeps `insert` O(depth).
    pub fn relink_leaves(&mut self) {
        let mut order = Vec::new();
        if let Some(r) = self.root {
            self.collect_leaves(r, &mut order);
        }
        for n in &mut self.nodes {
            n.next = None;
        }
        for w in order.windows(2) {
            self.nodes[w[0] as usize].next = Some(w[1]);
        }
        self.first_leaf = order.first().copied();
    }

    fn collect_leaves(&self, id: NodeId, out: &mut Vec<NodeId>) {
        let n = &self.nodes[id as usize];
        if n.is_leaf() {
            out.push(id);
        }
        for c in n.children.into_iter().flatten() {
            self.collect_leaves(c, out);
        }
    }

    /// Iterate the stored points along the `leaves` chain.
    pub fn leaves(&self) -> impl Iterator<Item = QPoint> + '_ {
        let mut cur = self.first_leaf;
        std::iter::from_fn(move || {
            let id = cur?;
            let n = &self.nodes[id as usize];
            cur = n.next;
            n.point
        })
    }

    /// All points with `x1 ≤ x ≤ x2 ∧ y1 ≤ y ≤ y2`, by region pruning.
    pub fn rectangle_query(&self, x1: f64, x2: f64, y1: f64, y2: f64) -> Vec<QPoint> {
        let mut out = Vec::new();
        if let Some(r) = self.root {
            self.query_rec(r, x1, x2, y1, y2, &mut out);
        }
        out
    }

    fn query_rec(&self, id: NodeId, x1: f64, x2: f64, y1: f64, y2: f64, out: &mut Vec<QPoint>) {
        let n = &self.nodes[id as usize];
        // Prune regions disjoint from the query rectangle.
        if n.cx - n.hw > x2 || n.cx + n.hw < x1 || n.cy - n.hw > y2 || n.cy + n.hw < y1 {
            return;
        }
        if let Some(p) = n.point {
            if p.x >= x1 && p.x <= x2 && p.y >= y1 && p.y <= y2 {
                out.push(p);
            }
        }
        for c in n.children.into_iter().flatten() {
            self.query_rec(c, x1, x2, y1, y2, out);
        }
    }

    /// Verify the ADDS properties at run time (the paper's §2.2
    /// "compiler-generated run-time checks" side-effect):
    ///
    /// * `down` is uniquely forward: every node has at most one incoming
    ///   child link and the root has none (⇒ acyclic, disjoint subtrees);
    /// * regions nest: each child's square lies inside its parent's and in
    ///   the right quadrant;
    /// * `leaves` is uniquely forward over exactly the leaf nodes.
    pub fn validate_shape(&self) -> Result<(), String> {
        let mut indeg = vec![0usize; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            for c in n.children.into_iter().flatten() {
                let c = c as usize;
                if c >= self.nodes.len() {
                    return Err(format!("node {i}: dangling child {c}"));
                }
                indeg[c] += 1;
                let ch = &self.nodes[c];
                if ch.hw * 2.0 - n.hw > 1e-9 {
                    return Err(format!("node {c}: child region not halved"));
                }
                if (ch.cx - n.cx).abs() > n.hw || (ch.cy - n.cy).abs() > n.hw {
                    return Err(format!("node {c}: child region escapes parent"));
                }
            }
        }
        for (i, d) in indeg.iter().enumerate() {
            if *d > 1 {
                return Err(format!("node {i}: {d} incoming child links (sharing)"));
            }
            if Some(i as NodeId) == self.root && *d != 0 {
                return Err("root has an incoming child link (cycle)".into());
            }
        }
        // Reachability from the root is a tree (count check).
        if let Some(r) = self.root {
            let mut seen = vec![false; self.nodes.len()];
            let mut stack = vec![r];
            let mut count = 0usize;
            while let Some(id) = stack.pop() {
                let i = id as usize;
                if seen[i] {
                    return Err(format!("node {i}: reached twice (cycle or sharing)"));
                }
                seen[i] = true;
                count += 1;
                stack.extend(self.nodes[i].children.into_iter().flatten());
            }
            if count != self.nodes.len() {
                return Err(format!(
                    "{} nodes unreachable from the root",
                    self.nodes.len() - count
                ));
            }
        } else if !self.nodes.is_empty() {
            return Err("nodes exist but the tree has no root".into());
        }
        // Leaf chain: visits each leaf exactly once, only leaves.
        let mut chain = 0usize;
        let mut visited = vec![false; self.nodes.len()];
        let mut cur = self.first_leaf;
        while let Some(id) = cur {
            let i = id as usize;
            if visited[i] {
                return Err(format!("leaf chain revisits node {i} (cycle)"));
            }
            visited[i] = true;
            if !self.nodes[i].is_leaf() {
                return Err(format!("leaf chain passes through interior node {i}"));
            }
            chain += 1;
            cur = self.nodes[i].next;
        }
        let leaves = self.nodes.iter().filter(|n| n.is_leaf()).count();
        if self.first_leaf.is_some() && chain != leaves {
            return Err(format!("leaf chain covers {chain} of {leaves} leaves"));
        }
        Ok(())
    }

    /// Test-only structural corruption hooks used by the validator tests.
    #[doc(hidden)]
    pub fn corrupt_share_child(&mut self) {
        // Point two parents at the same child, breaking uniqueness.
        let donors: Vec<NodeId> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.children.iter().any(Option::is_some))
            .map(|(i, _)| i as NodeId)
            .collect();
        if donors.len() < 2 {
            return;
        }
        let shared = self.nodes[donors[0] as usize]
            .children
            .into_iter()
            .flatten()
            .next()
            .unwrap();
        let victim = donors[1] as usize;
        let slot = self.nodes[victim]
            .children
            .iter()
            .position(Option::is_some)
            .unwrap();
        self.nodes[victim].children[slot] = Some(shared);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<QPoint> {
        coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| QPoint { x, y, id: i as u32 })
            .collect()
    }

    fn grid(n: usize) -> Vec<QPoint> {
        let mut v = Vec::new();
        for i in 0..n {
            for j in 0..n {
                v.push(QPoint {
                    x: i as f64 * 1.7 + 0.13 * j as f64,
                    y: j as f64 * 2.3 - 0.29 * i as f64,
                    id: (i * n + j) as u32,
                });
            }
        }
        v
    }

    #[test]
    fn empty_and_singleton() {
        let t = Quadtree::build([]);
        assert!(t.is_empty());
        assert!(t.validate_shape().is_ok());
        assert!(t.rectangle_query(-1e9, 1e9, -1e9, 1e9).is_empty());

        let t = Quadtree::build(pts(&[(1.0, 2.0)]));
        assert_eq!(t.len(), 1);
        assert_eq!(t.leaves().count(), 1);
        assert!(t.validate_shape().is_ok());
    }

    #[test]
    fn all_points_stored_and_chained() {
        let points = grid(7);
        let t = Quadtree::build(points.clone());
        assert_eq!(t.len(), points.len());
        assert!(t.validate_shape().is_ok(), "{:?}", t.validate_shape());
        let mut got: Vec<u32> = t.leaves().map(|p| p.id).collect();
        got.sort_unstable();
        let want: Vec<u32> = (0..points.len() as u32).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn rectangle_query_matches_naive_filter() {
        let points = grid(8);
        let t = Quadtree::build(points.clone());
        for (x1, x2, y1, y2) in [
            (-1.0, 3.0, -1.0, 3.0),
            (2.0, 9.0, 0.0, 4.0),
            (100.0, 200.0, 100.0, 200.0),
            (-1e9, 1e9, -1e9, 1e9),
        ] {
            let mut got: Vec<u32> = t
                .rectangle_query(x1, x2, y1, y2)
                .iter()
                .map(|p| p.id)
                .collect();
            got.sort_unstable();
            let mut want: Vec<u32> = points
                .iter()
                .filter(|p| p.x >= x1 && p.x <= x2 && p.y >= y1 && p.y <= y2)
                .map(|p| p.id)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "rect ({x1},{x2},{y1},{y2})");
        }
    }

    #[test]
    fn expand_box_reaches_distant_points() {
        // Insertion order forces repeated root expansion, the §4.3.2
        // expand_box path.
        let t = Quadtree::build(pts(&[(0.0, 0.0), (1000.0, -2000.0), (-5000.0, 4.0)]));
        assert_eq!(t.len(), 3);
        assert!(t.validate_shape().is_ok(), "{:?}", t.validate_shape());
        assert_eq!(t.rectangle_query(-6000.0, 2000.0, -3000.0, 100.0).len(), 3);
    }

    #[test]
    fn close_pairs_subdivide_until_separated() {
        let t = Quadtree::build(pts(&[(1.0, 1.0), (1.0 + 1e-6, 1.0 + 1e-6)]));
        assert_eq!(t.len(), 2);
        assert!(t.validate_shape().is_ok());
        assert_eq!(t.leaves().count(), 2);
    }

    #[test]
    fn validator_rejects_shared_subtrees() {
        let mut t = Quadtree::build(grid(4));
        assert!(t.validate_shape().is_ok());
        t.corrupt_share_child();
        let err = t.validate_shape().unwrap_err();
        assert!(
            err.contains("incoming child links") || err.contains("reached twice"),
            "{err}"
        );
    }

    #[test]
    fn relink_after_more_inserts_keeps_chain_complete() {
        let mut t = Quadtree::build(grid(3));
        t.insert(QPoint {
            x: -7.5,
            y: 3.25,
            id: 999,
        });
        t.relink_leaves();
        assert!(t.validate_shape().is_ok());
        assert!(t.leaves().any(|p| p.id == 999));
        assert_eq!(t.leaves().count(), t.len());
    }

    #[test]
    fn adds_decl_parses_and_is_well_formed() {
        let prog = adds_lang::parse_program(ADDS_DECL).expect("parses");
        adds_lang::check(prog).expect("well-formed");
    }
}
