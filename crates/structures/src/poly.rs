//! Sparse polynomials over a one-way linked list — the paper's second
//! §3.1.1 application ("the polynomial 451x³¹ + 10x¹³ + 4 could be stored
//! in a linked-list such that each node contains the coefficient and
//! exponent for x"), including the §3.3.2 scaling loop in both sequential
//! and strip-parallel forms.

use crate::list::OneWayList;
use std::fmt;

/// One term: coefficient and exponent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Term {
    /// Coefficient.
    pub coef: i64,
    /// Exponent of x.
    pub exp: u32,
}

/// A sparse polynomial; terms in strictly decreasing exponent order.
#[derive(Clone, Debug, Default)]
pub struct Polynomial {
    /// Terms in descending exponent order, as a one-way list.
    pub terms: OneWayList<Term>,
}

impl Polynomial {
    /// The zero polynomial.
    pub fn zero() -> Polynomial {
        Polynomial {
            terms: OneWayList::new(),
        }
    }

    /// Build from (coef, exp) pairs; combines duplicates, drops zeros, and
    /// sorts by decreasing exponent.
    pub fn from_terms(pairs: impl IntoIterator<Item = (i64, u32)>) -> Polynomial {
        let mut v: Vec<(i64, u32)> = Vec::new();
        for (c, e) in pairs {
            if let Some(slot) = v.iter_mut().find(|(_, ee)| *ee == e) {
                slot.0 += c;
            } else {
                v.push((c, e));
            }
        }
        v.retain(|(c, _)| *c != 0);
        v.sort_by_key(|t| std::cmp::Reverse(t.1));
        Polynomial {
            terms: OneWayList::from_iter_back(v.into_iter().map(|(coef, exp)| Term { coef, exp })),
        }
    }

    /// The paper's example: 451x³¹ + 10x¹³ + 4.
    pub fn paper_example() -> Polynomial {
        Polynomial::from_terms([(451, 31), (10, 13), (4, 0)])
    }

    /// The (coef, exp) pairs in list order.
    pub fn term_pairs(&self) -> Vec<(i64, u32)> {
        self.terms.iter().map(|t| (t.coef, t.exp)).collect()
    }

    /// Highest exponent; `None` for the zero polynomial.
    pub fn degree(&self) -> Option<u32> {
        self.terms.iter().map(|t| t.exp).next()
    }

    /// Is this the zero polynomial?
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluate at `x` (sparse Horner-free evaluation).
    pub fn eval(&self, x: f64) -> f64 {
        self.terms
            .iter()
            .map(|t| t.coef as f64 * x.powi(t.exp as i32))
            .sum()
    }

    /// Multiply every coefficient by `c` — the §3.3.2 loop:
    /// `while p <> NULL { p->coef = p->coef * c; p = p->next; }`.
    pub fn scale_in_place(&mut self, c: i64) {
        let mut p = self.terms.head();
        while let Some(id) = p {
            self.terms.node_mut(id).data.coef *= c;
            p = self.terms.next_of(p);
        }
        if c == 0 {
            *self = Polynomial::zero();
        }
    }

    /// The same loop strip-mined across `threads` (the node processing is
    /// independent — exactly what the ADDS analysis proves).
    pub fn scale_parallel(&mut self, c: i64, threads: usize) {
        let scaled: Vec<Term> = self.terms.par_map(threads, |t| Term {
            coef: t.coef * c,
            exp: t.exp,
        });
        self.terms = OneWayList::from_iter_back(scaled);
        if c == 0 {
            *self = Polynomial::zero();
        }
    }

    /// Polynomial sum (merge walk over both term lists).
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        Polynomial::from_terms(self.term_pairs().into_iter().chain(other.term_pairs()))
    }

    /// Polynomial product.
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        let mut acc: Vec<(i64, u32)> = Vec::new();
        for (c1, e1) in self.term_pairs() {
            for (c2, e2) in other.term_pairs() {
                acc.push((c1 * c2, e1 + e2));
            }
        }
        Polynomial::from_terms(acc)
    }

    /// Formal derivative.
    pub fn derivative(&self) -> Polynomial {
        Polynomial::from_terms(
            self.term_pairs()
                .into_iter()
                .filter(|(_, e)| *e > 0)
                .map(|(c, e)| (c * e as i64, e - 1)),
        )
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for t in self.terms.iter() {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            match t.exp {
                0 => write!(f, "{}", t.coef)?,
                1 => write!(f, "{}x", t.coef)?,
                e => write!(f, "{}x^{}", t.coef, e)?,
            }
        }
        Ok(())
    }
}

impl PartialEq for Polynomial {
    fn eq(&self, other: &Self) -> bool {
        self.term_pairs() == other.term_pairs()
    }
}
impl Eq for Polynomial {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_layout() {
        let p = Polynomial::paper_example();
        assert_eq!(p.term_pairs(), vec![(451, 31), (10, 13), (4, 0)]);
        assert_eq!(p.to_string(), "451x^31 + 10x^13 + 4");
        assert_eq!(p.degree(), Some(31));
        p.terms.validate_shape().unwrap();
    }

    #[test]
    fn scale_in_place_matches_paper_loop() {
        let mut p = Polynomial::paper_example();
        p.scale_in_place(2);
        assert_eq!(p.term_pairs(), vec![(902, 31), (20, 13), (8, 0)]);
    }

    #[test]
    fn scale_parallel_matches_sequential() {
        for threads in [1, 2, 4, 7] {
            let mut a = Polynomial::from_terms((0..200).map(|i| (i as i64 + 1, i)));
            let mut b = a.clone();
            a.scale_in_place(3);
            b.scale_parallel(3, threads);
            assert_eq!(a, b, "threads={threads}");
        }
    }

    #[test]
    fn scale_by_zero_collapses() {
        let mut p = Polynomial::paper_example();
        p.scale_in_place(0);
        assert!(p.is_zero());
        let mut p = Polynomial::paper_example();
        p.scale_parallel(0, 4);
        assert!(p.is_zero());
    }

    #[test]
    fn eval_is_consistent() {
        let p = Polynomial::from_terms([(2, 2), (-3, 1), (1, 0)]); // 2x² - 3x + 1
        assert_eq!(p.eval(0.0), 1.0);
        assert_eq!(p.eval(1.0), 0.0);
        assert_eq!(p.eval(2.0), 3.0);
    }

    #[test]
    fn add_combines_terms() {
        let a = Polynomial::from_terms([(1, 2), (1, 0)]);
        let b = Polynomial::from_terms([(2, 2), (-1, 0)]);
        assert_eq!(a.add(&b).term_pairs(), vec![(3, 2)]);
    }

    #[test]
    fn mul_expands() {
        // (x+1)(x-1) = x² - 1
        let a = Polynomial::from_terms([(1, 1), (1, 0)]);
        let b = Polynomial::from_terms([(1, 1), (-1, 0)]);
        assert_eq!(a.mul(&b).term_pairs(), vec![(1, 2), (-1, 0)]);
    }

    #[test]
    fn derivative_rules() {
        let p = Polynomial::paper_example();
        assert_eq!(
            p.derivative().term_pairs(),
            vec![(451 * 31, 30), (10 * 13, 12)]
        );
        assert!(Polynomial::from_terms([(5, 0)]).derivative().is_zero());
    }

    #[test]
    fn zero_polynomial_behaves() {
        let z = Polynomial::zero();
        assert!(z.is_zero());
        assert_eq!(z.eval(3.0), 0.0);
        assert_eq!(z.to_string(), "0");
        assert_eq!(z.degree(), None);
    }

    #[test]
    fn duplicate_exponents_combine() {
        let p = Polynomial::from_terms([(1, 5), (2, 5), (3, 5)]);
        assert_eq!(p.term_pairs(), vec![(6, 5)]);
    }
}
