//! Semantic model of ADDS declarations.
//!
//! This module resolves the syntactic `TypeDecl`s into a queryable model:
//! dimensions get indices, fields get resolved routes, independence is a
//! symmetric relation, and the well-formedness rules of §3.1 are enforced.
//!
//! The properties the model exposes are exactly the ones the analysis
//! exploits (§3.1, §3.3):
//!
//! * a `forward` field along dimension `D` moves away from `D`'s origin, so
//!   chains of forward fields along one dimension are **acyclic**;
//! * a `uniquely forward` field additionally guarantees at most one incoming
//!   link per node along `D`, so distinct forward traversals are **disjoint**
//!   (trees rather than DAGs);
//! * fields grouped in one declaration (e.g. `*left, *right`) traverse to
//!   **disjoint** substructures;
//! * `where A || B` declares dimensions **independent**: no node reachable by
//!   forward traversal along `A` is reachable by forward traversal along `B`.

use crate::ast::{Direction, FieldKind, Program, ScalarTy, TypeDecl};
use crate::source::{Diagnostic, Diagnostics};
use std::collections::HashMap;

/// Index of a dimension within one ADDS type.
pub type DimId = usize;

/// Resolved model for one ADDS record type.
#[derive(Clone, Debug)]
pub struct AddsType {
    /// Record type name.
    pub name: String,
    /// Declared dimension names, in order.
    pub dims: Vec<String>,
    /// Symmetric independence relation, indexed `[a][b]`.
    independent: Vec<Vec<bool>>,
    /// Resolved fields, in declaration order.
    pub fields: Vec<AddsField>,
    /// Groups of pointer-field indices declared together (disjointness).
    pub groups: Vec<Vec<usize>>,
}

/// Resolved model for one field.
#[derive(Clone, Debug)]
pub struct AddsField {
    /// Field name.
    pub name: String,
    /// Scalar or pointer with its resolved route.
    pub kind: AddsFieldKind,
}

/// Resolved field payload.
#[derive(Clone, Debug, PartialEq)]
pub enum AddsFieldKind {
    /// A scalar field.
    Scalar(ScalarTy),
    /// A recursive pointer field.
    Pointer {
        /// Target record type.
        target: String,
        /// `Some(n)` for `*f[n]` array fields.
        array_len: Option<usize>,
        /// The resolved ADDS route.
        route: ResolvedRoute,
    },
}

/// Route with the dimension resolved to an index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResolvedRoute {
    /// At most one incoming link per node along the dimension.
    pub unique: bool,
    /// Forward, backward, or unknown.
    pub direction: Direction,
    /// Index into [`AddsType::dims`].
    pub dim: DimId,
}

impl ResolvedRoute {
    /// Forward and backward routes are acyclic by definition; only the
    /// default `unknown` direction may close cycles (paper §3.1.2).
    pub fn is_acyclic(&self) -> bool {
        !matches!(self.direction, Direction::Unknown)
    }
}

impl AddsType {
    /// Are dimensions `a` and `b` declared independent?
    pub fn dims_independent(&self, a: DimId, b: DimId) -> bool {
        self.independent
            .get(a)
            .and_then(|row| row.get(b))
            .copied()
            .unwrap_or(false)
    }

    /// Index of dimension `name`.
    pub fn dim_id(&self, name: &str) -> Option<DimId> {
        self.dims.iter().position(|d| d == name)
    }

    /// The resolved field named `name`.
    pub fn field(&self, name: &str) -> Option<&AddsField> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Position of field `name` in declaration order.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The resolved route of a pointer field, if `name` is one.
    pub fn route(&self, name: &str) -> Option<ResolvedRoute> {
        match self.field(name).map(|f| &f.kind) {
            Some(AddsFieldKind::Pointer { route, .. }) => Some(*route),
            _ => None,
        }
    }

    /// Is `field` declared (uniquely or not) forward along some dimension?
    pub fn is_forward(&self, field: &str) -> bool {
        self.route(field)
            .is_some_and(|r| r.direction == Direction::Forward)
    }

    /// Is `field` a `uniquely forward` field? This is the property that makes
    /// `p = p->f` provably move to a *new* node on every application, and
    /// forward chains disjoint (§3.1.1).
    pub fn is_uniquely_forward(&self, field: &str) -> bool {
        self.route(field)
            .is_some_and(|r| r.unique && r.direction == Direction::Forward)
    }

    /// Is traversal along `field` guaranteed acyclic?
    pub fn is_acyclic_field(&self, field: &str) -> bool {
        self.route(field).is_some_and(|r| r.is_acyclic())
    }

    /// Do `f` and `g` traverse the *same dimension* in *opposite directions*?
    /// (e.g. `next`/`prev`). The analysis must not mistake such pairs for
    /// cycles: the abstraction "frees the approximation from estimating
    /// needless cycles" (§3.3).
    pub fn opposite_pair(&self, f: &str, g: &str) -> bool {
        match (self.route(f), self.route(g)) {
            (Some(rf), Some(rg)) => {
                rf.dim == rg.dim
                    && matches!(
                        (rf.direction, rg.direction),
                        (Direction::Forward, Direction::Backward)
                            | (Direction::Backward, Direction::Forward)
                    )
            }
            _ => false,
        }
    }

    /// Are two pointer fields declared in the same group (disjoint subtrees)?
    pub fn same_group(&self, f: &str, g: &str) -> bool {
        let (Some(fi), Some(gi)) = (self.field_index(f), self.field_index(g)) else {
            return false;
        };
        self.groups
            .iter()
            .any(|grp| grp.contains(&fi) && grp.contains(&gi))
    }

    /// Are forward traversals along the dimensions of `f` and `g` provably
    /// disjoint because the dimensions are independent?
    pub fn fields_on_independent_dims(&self, f: &str, g: &str) -> bool {
        match (self.route(f), self.route(g)) {
            (Some(rf), Some(rg)) => self.dims_independent(rf.dim, rg.dim),
            _ => false,
        }
    }

    /// Pointer fields traversing dimension `dim`, with their directions.
    pub fn fields_along(&self, dim: DimId) -> Vec<(&str, ResolvedRoute)> {
        self.fields
            .iter()
            .filter_map(|f| match &f.kind {
                AddsFieldKind::Pointer { route, .. } if route.dim == dim => {
                    Some((f.name.as_str(), *route))
                }
                _ => None,
            })
            .collect()
    }
}

/// The resolved ADDS environment for a whole program: every record type.
#[derive(Clone, Debug, Default)]
pub struct AddsEnv {
    types: HashMap<String, AddsType>,
}

impl AddsEnv {
    /// The resolved model for record type `name`.
    pub fn get(&self, name: &str) -> Option<&AddsType> {
        self.types.get(name)
    }

    /// All resolved record types (unordered).
    pub fn types(&self) -> impl Iterator<Item = &AddsType> {
        self.types.values()
    }

    /// Number of record types in the program.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the program declares no record types.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Build and well-formedness-check the environment for `program`.
    pub fn build(program: &Program) -> Result<AddsEnv, Diagnostics> {
        let mut diags = Diagnostics::default();
        let mut env = AddsEnv::default();

        let names: Vec<&str> = program.types.iter().map(|t| t.name.as_str()).collect();
        for decl in &program.types {
            if env.types.contains_key(&decl.name) {
                diags.push(Diagnostic::new(
                    decl.span,
                    format!("duplicate type declaration `{}`", decl.name),
                ));
                continue;
            }
            if let Some(t) = resolve_type(decl, &names, &mut diags) {
                env.types.insert(decl.name.clone(), t);
            }
        }
        diags.into_result(env)
    }
}

/// The implicit dimension name used when a type declares no dimensions:
/// "by default, a structure has one dimension D" (§3.1.2).
pub const DEFAULT_DIM: &str = "D";

fn resolve_type(
    decl: &TypeDecl,
    known_types: &[&str],
    diags: &mut Diagnostics,
) -> Option<AddsType> {
    let mut ok = true;

    // Dimensions: explicit list, or the implicit default `D`.
    let dims: Vec<String> = if decl.dims.is_empty() {
        vec![DEFAULT_DIM.to_string()]
    } else {
        decl.dims.clone()
    };
    for (i, d) in dims.iter().enumerate() {
        if dims[..i].contains(d) {
            diags.push(Diagnostic::new(
                decl.span,
                format!("duplicate dimension `{d}` in type `{}`", decl.name),
            ));
            ok = false;
        }
    }

    let dim_id = |name: &str| dims.iter().position(|d| d == name);

    // Independence relation (symmetric closure of the declared pairs).
    let n = dims.len();
    let mut independent = vec![vec![false; n]; n];
    for (a, b) in &decl.independent {
        match (dim_id(a), dim_id(b)) {
            (Some(ia), Some(ib)) if ia != ib => {
                independent[ia][ib] = true;
                independent[ib][ia] = true;
            }
            (Some(_), Some(_)) => {
                diags.push(Diagnostic::new(
                    decl.span,
                    format!("dimension `{a}` cannot be independent of itself"),
                ));
                ok = false;
            }
            _ => {
                diags.push(Diagnostic::new(
                    decl.span,
                    format!(
                        "independence clause references undeclared dimension in `{} || {}`",
                        a, b
                    ),
                ));
                ok = false;
            }
        }
    }

    // Fields.
    let mut fields = Vec::new();
    let mut groups = Vec::new();
    let mut seen_fields: HashMap<&str, ()> = HashMap::new();
    for fd in &decl.fields {
        for name in &fd.names {
            if seen_fields.insert(name, ()).is_some() {
                diags.push(Diagnostic::new(
                    fd.span,
                    format!("duplicate field `{name}` in type `{}`", decl.name),
                ));
                ok = false;
            }
        }
        match &fd.kind {
            FieldKind::Scalar(st) => {
                for name in &fd.names {
                    fields.push(AddsField {
                        name: name.clone(),
                        kind: AddsFieldKind::Scalar(*st),
                    });
                }
            }
            FieldKind::Pointer {
                target,
                array_len,
                route,
            } => {
                if !known_types.contains(&target.as_str()) {
                    diags.push(Diagnostic::new(
                        fd.span,
                        format!(
                            "pointer field target type `{target}` is not declared (in `{}`)",
                            decl.name
                        ),
                    ));
                    ok = false;
                }
                let resolved = match route {
                    Some(r) => match dim_id(&r.dim) {
                        Some(d) => ResolvedRoute {
                            unique: r.unique,
                            direction: r.direction,
                            dim: d,
                        },
                        None => {
                            diags.push(Diagnostic::new(
                                fd.span,
                                format!(
                                    "route references undeclared dimension `{}` (in `{}`)",
                                    r.dim, decl.name
                                ),
                            ));
                            ok = false;
                            ResolvedRoute {
                                unique: false,
                                direction: Direction::Unknown,
                                dim: 0,
                            }
                        }
                    },
                    // Default: unknown direction along the first dimension.
                    None => ResolvedRoute {
                        unique: false,
                        direction: Direction::Unknown,
                        dim: 0,
                    },
                };
                let start = fields.len();
                for name in &fd.names {
                    fields.push(AddsField {
                        name: name.clone(),
                        kind: AddsFieldKind::Pointer {
                            target: target.clone(),
                            array_len: *array_len,
                            route: resolved,
                        },
                    });
                }
                // A multi-name pointer declaration, or an array field, forms
                // a disjointness group (paper: "listing the fields left and
                // right together" / `subtrees[8]`).
                if fd.names.len() > 1 || array_len.is_some() {
                    groups.push((start..fields.len()).collect());
                }
            }
        }
    }

    // Every explicitly declared dimension should be traversed by some field;
    // a dimension nothing traverses is almost certainly a typo.
    for (i, d) in dims.iter().enumerate() {
        if !decl.dims.is_empty() {
            let used = fields.iter().any(|f| match &f.kind {
                AddsFieldKind::Pointer { route, .. } => route.dim == i,
                _ => false,
            });
            if !used {
                diags.push(Diagnostic::new(
                    decl.span,
                    format!(
                        "dimension `{d}` of `{}` is traversed by no field",
                        decl.name
                    ),
                ));
                ok = false;
            }
        }
    }

    ok.then_some(AddsType {
        name: decl.name.clone(),
        dims,
        independent,
        fields,
        groups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn env_of(src: &str) -> AddsEnv {
        AddsEnv::build(&parse_program(src).unwrap()).unwrap()
    }

    fn env_err(src: &str) -> Diagnostics {
        AddsEnv::build(&parse_program(src).unwrap()).unwrap_err()
    }

    const ONE_WAY_LIST: &str =
        "type OneWayList [X] { int data; OneWayList *next is uniquely forward along X; };";

    const ORTH_LIST: &str = "type OrthList [X][Y] {
        int data;
        OrthList *across is uniquely forward along X;
        OrthList *back is backward along X;
        OrthList *down is uniquely forward along Y;
        OrthList *up is backward along Y;
    };";

    const RANGE_TREE: &str = "type TwoDRangeTree [down][sub][leaves] where sub||down, sub||leaves {
        int data;
        TwoDRangeTree *left, *right is uniquely forward along down;
        TwoDRangeTree *subtree is uniquely forward along sub;
        TwoDRangeTree *next is uniquely forward along leaves;
        TwoDRangeTree *prev is backward along leaves;
    };";

    #[test]
    fn one_way_list_properties() {
        let env = env_of(ONE_WAY_LIST);
        let t = env.get("OneWayList").unwrap();
        assert!(t.is_uniquely_forward("next"));
        assert!(t.is_acyclic_field("next"));
        assert!(t.is_forward("next"));
        assert_eq!(t.dims, vec!["X"]);
    }

    #[test]
    fn default_dimension_is_unknown_direction() {
        let env = env_of("type ListNode { int coef, exp; ListNode *next; };");
        let t = env.get("ListNode").unwrap();
        assert_eq!(t.dims, vec![DEFAULT_DIM]);
        assert!(!t.is_acyclic_field("next"));
        assert!(!t.is_uniquely_forward("next"));
        // Grouped scalars split into individual fields.
        assert!(t.field("coef").is_some());
        assert!(t.field("exp").is_some());
    }

    #[test]
    fn orthogonal_list_dependent_dimensions() {
        let env = env_of(ORTH_LIST);
        let t = env.get("OrthList").unwrap();
        let x = t.dim_id("X").unwrap();
        let y = t.dim_id("Y").unwrap();
        // Unlisted pairs are dependent — the paper's conservative default.
        assert!(!t.dims_independent(x, y));
        assert!(t.opposite_pair("across", "back"));
        assert!(t.opposite_pair("down", "up"));
        assert!(!t.opposite_pair("across", "up"));
    }

    #[test]
    fn range_tree_independence_is_symmetric() {
        let env = env_of(RANGE_TREE);
        let t = env.get("TwoDRangeTree").unwrap();
        let down = t.dim_id("down").unwrap();
        let sub = t.dim_id("sub").unwrap();
        let leaves = t.dim_id("leaves").unwrap();
        assert!(t.dims_independent(sub, down));
        assert!(t.dims_independent(down, sub));
        assert!(t.dims_independent(sub, leaves));
        assert!(!t.dims_independent(down, leaves));
        assert!(t.same_group("left", "right"));
        assert!(!t.same_group("left", "subtree"));
        assert!(t.fields_on_independent_dims("subtree", "left"));
        assert!(!t.fields_on_independent_dims("next", "left"));
    }

    #[test]
    fn octree_array_field_forms_group() {
        let env = env_of(
            "type Octree [down][leaves] {
                real mass;
                Octree *subtrees[8] is uniquely forward along down;
                Octree *next is uniquely forward along leaves;
            };",
        );
        let t = env.get("Octree").unwrap();
        assert_eq!(t.groups.len(), 1);
        assert!(t.is_uniquely_forward("subtrees"));
        assert_eq!(t.fields_along(t.dim_id("down").unwrap()).len(), 1);
    }

    #[test]
    fn rejects_unknown_route_dimension() {
        let d = env_err("type T [X] { T *next is forward along Z; };");
        assert!(d.0[0].message.contains("undeclared dimension"));
    }

    #[test]
    fn rejects_duplicate_fields_and_dims() {
        let d = env_err("type T [X][X] { T *next is forward along X; };");
        assert!(d
            .0
            .iter()
            .any(|e| e.message.contains("duplicate dimension")));
        let d = env_err("type T [X] { int a; int a; T *next is forward along X; };");
        assert!(d.0.iter().any(|e| e.message.contains("duplicate field")));
    }

    #[test]
    fn rejects_self_independence() {
        let d = env_err("type T [X] where X||X { T *next is forward along X; };");
        assert!(d.0[0].message.contains("independent of itself"));
    }

    #[test]
    fn rejects_unknown_target_type() {
        let d = env_err("type T [X] { U *next is forward along X; };");
        assert!(d.0[0].message.contains("not declared"));
    }

    #[test]
    fn rejects_untraversed_dimension() {
        let d = env_err("type T [X][Y] { T *next is forward along X; };");
        assert!(d.0[0].message.contains("traversed by no field"));
    }

    #[test]
    fn rejects_independence_with_unknown_dim() {
        let d = env_err("type T [X] where X||Q { T *next is forward along X; };");
        assert!(d.0[0].message.contains("undeclared dimension"));
    }

    #[test]
    fn two_way_list_is_not_cyclic() {
        let env = env_of(
            "type TwoWayList [X] {
                int data;
                TwoWayList *next is uniquely forward along X;
                TwoWayList *prev is backward along X;
            };",
        );
        let t = env.get("TwoWayList").unwrap();
        // forward+backward on one dimension is NOT a cycle (§3.3).
        assert!(t.opposite_pair("next", "prev"));
        assert!(t.is_acyclic_field("next"));
        assert!(t.is_acyclic_field("prev"));
    }
}
