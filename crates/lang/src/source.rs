//! Source positions, spans and diagnostics for the ADDS intermediate language.

use std::fmt;

/// A half-open byte range into the original source text.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: u32, end: u32) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Whether this is the default (position-free) span.
    pub fn is_dummy(&self) -> bool {
        self.start == 0 && self.end == 0
    }
}

/// Line/column pair (1-based) for rendering diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

/// Resolve a byte offset to a 1-based line/column within `src`.
pub fn line_col(src: &str, offset: u32) -> LineCol {
    let offset = (offset as usize).min(src.len());
    let mut line = 1u32;
    let mut col = 1u32;
    for (i, ch) in src.char_indices() {
        if i >= offset {
            break;
        }
        if ch == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    LineCol { line, col }
}

/// A diagnostic produced by the lexer, parser, type checker or well-formedness
/// checks on ADDS declarations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Where the problem is.
    pub span: Span,
    /// What the problem is.
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic for `span` with the given message.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            span,
            message: message.into(),
        }
    }

    /// Render with line/column info against the original source.
    pub fn render(&self, src: &str) -> String {
        let lc = line_col(src, self.span.start);
        format!("{}:{}: {}", lc.line, lc.col, self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error at byte {}: {}", self.span.start, self.message)
    }
}

impl std::error::Error for Diagnostic {}

/// Multiple diagnostics bundled as one error value.
/// A batch of diagnostics, in emission order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Diagnostics(pub Vec<Diagnostic>);

impl Diagnostics {
    /// Whether no diagnostics were emitted.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Append one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.0.push(d);
    }

    /// Render all diagnostics against their source text.
    pub fn render(&self, src: &str) -> String {
        self.0
            .iter()
            .map(|d| d.render(src))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// `Ok(value)` when empty, `Err(self)` otherwise.
    pub fn into_result<T>(self, value: T) -> Result<T, Diagnostics> {
        if self.is_empty() {
            Ok(value)
        } else {
            Err(self)
        }
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostics {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn line_col_basic() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), LineCol { line: 1, col: 1 });
        assert_eq!(line_col(src, 3), LineCol { line: 2, col: 1 });
        assert_eq!(line_col(src, 4), LineCol { line: 2, col: 2 });
        assert_eq!(line_col(src, 7), LineCol { line: 3, col: 2 });
    }

    #[test]
    fn line_col_clamps_past_end() {
        let src = "x";
        let lc = line_col(src, 999);
        assert_eq!(lc.line, 1);
    }

    #[test]
    fn diagnostic_render_uses_line_col() {
        let src = "a\nbcd";
        let d = Diagnostic::new(Span::new(3, 4), "bad token");
        assert_eq!(d.render(src), "2:2: bad token");
    }
}
