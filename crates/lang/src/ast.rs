//! Abstract syntax tree of the ADDS intermediate language.
//!
//! The language mirrors the code fragments in the paper: C-like records with
//! recursive pointer fields annotated by ADDS routes, functions and
//! procedures, `while`/`if` statements, pointer assignment, `new`, `NULL`.
//! Counted loops (`for i = a to b`) and parallel loops (`parfor`) exist so
//! the strip-mining transformation of §4.3.3 can be expressed in-language.

use crate::source::Span;

/// A complete translation unit: type declarations followed by functions.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Record type declarations, in source order.
    pub types: Vec<TypeDecl>,
    /// Function and procedure definitions, in source order.
    pub funcs: Vec<FunDecl>,
}

impl Program {
    /// Find the declaration of record type `name`.
    pub fn type_decl(&self, name: &str) -> Option<&TypeDecl> {
        self.types.iter().find(|t| t.name == name)
    }

    /// Find the function or procedure named `name`.
    pub fn func(&self, name: &str) -> Option<&FunDecl> {
        self.funcs.iter().find(|f| f.name == name)
    }
}

/// `type Name [d1][d2] where a||b { fields };`
#[derive(Clone, Debug, PartialEq)]
pub struct TypeDecl {
    /// Record type name.
    pub name: String,
    /// Declared dimension names, in order. Empty means the implicit single
    /// dimension `D` with unknown directions (the paper's default).
    pub dims: Vec<String>,
    /// `where X || Y` clauses: pairs of *independent* dimensions.
    /// Unlisted pairs are dependent (the paper's conservative default).
    pub independent: Vec<(String, String)>,
    /// Field declarations (scalars and pointer groups).
    pub fields: Vec<FieldDecl>,
    /// Source location of the declaration.
    pub span: Span,
}

impl TypeDecl {
    /// Find the field declaration group containing `field`.
    pub fn field_group(&self, field: &str) -> Option<&FieldDecl> {
        self.fields
            .iter()
            .find(|f| f.names.iter().any(|n| n == field))
    }

    /// All pointer field names, flattened (array fields appear once).
    pub fn pointer_fields(&self) -> impl Iterator<Item = &str> {
        self.fields
            .iter()
            .filter(|f| matches!(f.kind, FieldKind::Pointer { .. }))
            .flat_map(|f| f.names.iter().map(String::as_str))
    }
}

/// One field declaration, possibly declaring a *group* of fields at once.
///
/// Grouping is semantically meaningful for pointers: `Octree *left, *right is
/// uniquely forward along down;` declares that left- and right-traversals are
/// disjoint (paper §3.1.3). An array field `*subtrees[8]` is a group of 8.
#[derive(Clone, Debug, PartialEq)]
pub struct FieldDecl {
    /// The field name(s) declared together (grouping is meaningful).
    pub names: Vec<String>,
    /// Scalar or pointer, with the ADDS route for pointers.
    pub kind: FieldKind,
    /// Source location of the field declaration.
    pub span: Span,
}

/// What a record field holds.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldKind {
    /// A scalar (int / real / bool) field.
    Scalar(ScalarTy),
    /// A recursive pointer field (possibly an array of pointers).
    Pointer {
        /// Name of the target record type (recursive references allowed).
        target: String,
        /// `Some(n)` for `*f[n]` array-of-pointer fields.
        array_len: Option<usize>,
        /// The ADDS route; `None` means the default `unknown` direction
        /// along the implicit dimension.
        route: Option<Route>,
    },
}

/// Scalar field types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScalarTy {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Real,
    /// Boolean.
    Bool,
}

/// `is [uniquely] forward|backward along D`
#[derive(Clone, Debug, PartialEq)]
pub struct Route {
    /// `uniquely`: at most one incoming link per node along the dimension.
    pub unique: bool,
    /// Traversal direction relative to the dimension's origin.
    pub direction: Direction,
    /// The dimension this field traverses.
    pub dim: String,
}

/// Direction a pointer field travels along its dimension (§3.1.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// One unit away from the origin (acyclic).
    Forward,
    /// One unit back toward the origin.
    Backward,
    /// Default when no route is declared: possibly cyclic.
    Unknown,
}

/// Value types of the language.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Real,
    /// Boolean.
    Bool,
    /// Pointer to a named record type.
    Ptr(String),
}

impl Ty {
    /// Is this a pointer type?
    pub fn is_pointer(&self) -> bool {
        matches!(self, Ty::Ptr(_))
    }

    /// The pointed-to record type name, for pointer types.
    pub fn pointee(&self) -> Option<&str> {
        match self {
            Ty::Ptr(t) => Some(t),
            _ => None,
        }
    }
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ty::Int => write!(f, "int"),
            Ty::Real => write!(f, "real"),
            Ty::Bool => write!(f, "bool"),
            Ty::Ptr(t) => write!(f, "{t}*"),
        }
    }
}

/// `function f(p: T*, n: int): T* { ... }` — `ret` is `None` for procedures.
#[derive(Clone, Debug, PartialEq)]
pub struct FunDecl {
    /// Function name.
    pub name: String,
    /// Formal parameters (types are mandatory).
    pub params: Vec<Param>,
    /// Return type; `None` for procedures.
    pub ret: Option<Ty>,
    /// Function body.
    pub body: Block,
    /// Source location of the definition.
    pub span: Span,
}

/// One formal parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: Ty,
    /// Source location.
    pub span: Span,
}

/// A `{ ... }` statement sequence.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
    /// Source span of the whole block.
    pub span: Span,
}

/// Statements of the IL.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// Optional `var x: T;` declaration (type may be inferred when omitted).
    VarDecl {
        /// Variable name.
        name: String,
        /// Declared type, if annotated.
        ty: Option<Ty>,
        /// Initializer, if present.
        init: Option<Expr>,
        /// Source location.
        span: Span,
    },
    /// `lhs = rhs;` — variable or field assignment.
    Assign {
        /// Assignment target.
        lhs: LValue,
        /// Assigned value.
        rhs: Expr,
        /// Source location.
        span: Span,
    },
    /// `while cond { body }`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
        /// Source location.
        span: Span,
    },
    /// `if cond { … } [else { … }]`.
    If {
        /// Branch condition.
        cond: Expr,
        /// Taken when the condition holds.
        then_blk: Block,
        /// Taken otherwise, if present.
        else_blk: Option<Block>,
        /// Source location.
        span: Span,
    },
    /// `for i = a to b { ... }` — inclusive bounds, as in the paper's
    /// `for i = 0 to PEs-1`.
    For {
        /// Induction variable.
        var: String,
        /// Lower bound (inclusive).
        from: Expr,
        /// Upper bound (inclusive).
        to: Expr,
        /// Loop body.
        body: Block,
        /// `true` for `parfor` (the §4.3.3 parallel region).
        parallel: bool,
        /// Source location.
        span: Span,
    },
    /// `return [value];`.
    Return {
        /// Returned value, absent in procedures.
        value: Option<Expr>,
        /// Source location.
        span: Span,
    },
    /// Expression statement: a call evaluated for effect.
    Call(Call),
}

impl Stmt {
    /// Source span of any statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::VarDecl { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::While { span, .. }
            | Stmt::If { span, .. }
            | Stmt::For { span, .. }
            | Stmt::Return { span, .. } => *span,
            Stmt::Call(c) => c.span,
        }
    }
}

/// A chain of field accesses rooted at a variable: `p->subtrees[i]->next`.
///
/// An empty `path` is a plain variable. Each step dereferences the pointer
/// produced so far.
#[derive(Clone, Debug, PartialEq)]
pub struct LValue {
    /// Root variable.
    pub base: String,
    /// Field dereference chain (empty for a plain variable).
    pub path: Vec<FieldAccess>,
    /// Source location.
    pub span: Span,
}

impl LValue {
    /// A plain-variable lvalue.
    pub fn var(name: impl Into<String>, span: Span) -> Self {
        LValue {
            base: name.into(),
            path: Vec::new(),
            span,
        }
    }

    /// Is this a plain variable (no dereferences)?
    pub fn is_var(&self) -> bool {
        self.path.is_empty()
    }

    /// For single-step lvalues like `p->f`, the `(base, field)` pair.
    pub fn as_single_field(&self) -> Option<(&str, &str)> {
        match self.path.as_slice() {
            [only] => Some((&self.base, &only.field)),
            _ => None,
        }
    }
}

/// One step of a field dereference chain.
#[derive(Clone, Debug, PartialEq)]
pub struct FieldAccess {
    /// Field name.
    pub field: String,
    /// `Some` for array-of-pointer elements: `subtrees[i]`.
    pub index: Option<Box<Expr>>,
    /// Source location.
    pub span: Span,
}

/// A function or procedure call.
#[derive(Clone, Debug, PartialEq)]
pub struct Call {
    /// Callee name.
    pub callee: String,
    /// Actual arguments.
    pub args: Vec<Expr>,
    /// Source location.
    pub span: Span,
}

/// Expressions of the IL.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Span),
    /// Real literal.
    Real(f64, Span),
    /// Boolean literal.
    Bool(bool, Span),
    /// The null pointer constant.
    Null(Span),
    /// Variable reference.
    Var(String, Span),
    /// `base->field` or `base->field[index]`.
    Field {
        /// Pointer being dereferenced.
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// Element index for array-of-pointer fields.
        index: Option<Box<Expr>>,
        /// Source location.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// Its operand.
        operand: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Function call in expression position.
    Call(Call),
    /// `new T` allocates a fresh record with NULL/zero fields.
    New(String, Span),
}

impl Expr {
    /// Source span of any expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s)
            | Expr::Real(_, s)
            | Expr::Bool(_, s)
            | Expr::Null(s)
            | Expr::Var(_, s)
            | Expr::New(_, s) => *s,
            Expr::Field { span, .. } | Expr::Unary { span, .. } | Expr::Binary { span, .. } => {
                *span
            }
            Expr::Call(c) => c.span,
        }
    }

    /// If this expression is a pure pointer path `v(->f)*`, return the base
    /// variable and field chain. Used heavily by the path matrix rules.
    pub fn as_pointer_path(&self) -> Option<(String, Vec<String>)> {
        match self {
            Expr::Var(v, _) => Some((v.clone(), Vec::new())),
            Expr::Field { base, field, .. } => {
                let (b, mut path) = base.as_pointer_path()?;
                path.push(field.clone());
                Some((b, path))
            }
            _ => None,
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// Binary operators. `Eq`/`Ne` compare pointers by node identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// Is this a comparison operator?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Is this `&&` or `||`?
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// Surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> Span {
        Span::default()
    }

    #[test]
    fn pointer_path_extraction() {
        // p->next->next
        let e = Expr::Field {
            base: Box::new(Expr::Field {
                base: Box::new(Expr::Var("p".into(), sp())),
                field: "next".into(),
                index: None,
                span: sp(),
            }),
            field: "next".into(),
            index: None,
            span: sp(),
        };
        let (base, path) = e.as_pointer_path().unwrap();
        assert_eq!(base, "p");
        assert_eq!(path, vec!["next".to_string(), "next".to_string()]);
    }

    #[test]
    fn non_path_expressions_are_rejected() {
        let e = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::Int(1, sp())),
            rhs: Box::new(Expr::Int(2, sp())),
            span: sp(),
        };
        assert!(e.as_pointer_path().is_none());
    }

    #[test]
    fn lvalue_single_field() {
        let lv = LValue {
            base: "p".into(),
            path: vec![FieldAccess {
                field: "coef".into(),
                index: None,
                span: sp(),
            }],
            span: sp(),
        };
        assert_eq!(lv.as_single_field(), Some(("p", "coef")));
        assert!(!lv.is_var());
        assert!(LValue::var("q", sp()).is_var());
    }

    #[test]
    fn type_decl_field_group_lookup() {
        let td = TypeDecl {
            name: "BinTree".into(),
            dims: vec!["down".into()],
            independent: vec![],
            fields: vec![FieldDecl {
                names: vec!["left".into(), "right".into()],
                kind: FieldKind::Pointer {
                    target: "BinTree".into(),
                    array_len: None,
                    route: Some(Route {
                        unique: true,
                        direction: Direction::Forward,
                        dim: "down".into(),
                    }),
                },
                span: sp(),
            }],
            span: sp(),
        };
        assert!(td.field_group("left").is_some());
        assert!(td.field_group("right").is_some());
        assert!(td.field_group("up").is_none());
        assert_eq!(
            td.pointer_fields().collect::<Vec<_>>(),
            vec!["left", "right"]
        );
    }
}
