//! # adds-lang — the ADDS intermediate language
//!
//! This crate implements the *host language* of the ADDS paper (Hummel,
//! Nicolau & Hendren, ICPP 1992): a small C-like imperative language with
//! recursive record types, pointers, and — the paper's contribution — **ADDS
//! shape declarations** describing the dimensions and traversal directions of
//! pointer data structures:
//!
//! ```text
//! type Octree [down][leaves]
//! {
//!     real mass;
//!     Octree *subtrees[8] is uniquely forward along down;
//!     Octree *next is uniquely forward along leaves;
//! };
//! ```
//!
//! Provided here:
//!
//! * [`lexer`] / [`parser`] — concrete syntax → [`ast`],
//! * [`adds`] — the resolved semantic model of ADDS declarations
//!   (dimensions, routes, uniqueness, groups, independence) with
//!   well-formedness checking,
//! * [`types`] — type checking with local inference,
//! * [`pretty`] — a printer whose output re-parses to the same program,
//! * [`programs`] — the paper's example programs embedded as IL source.
//!
//! Analysis and transformation live in `adds-core`; execution in
//! `adds-machine`.

#![warn(missing_docs)]

pub mod adds;
pub mod ast;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod programs;
pub mod source;
pub mod token;
pub mod types;

pub use adds::{AddsEnv, AddsType};
pub use ast::{Direction, Program, Ty};
pub use parser::parse_program;
pub use source::{Diagnostic, Diagnostics, Span};
pub use types::{check, check_source, TypedProgram};
