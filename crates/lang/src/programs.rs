//! The paper's example programs, embedded as IL source.
//!
//! These are the inputs to every analysis demo, golden test and simulated
//! experiment: the §3.3.2 list-scaling loop (with and without an ADDS
//! declaration), the §3.3.1 subtree move, and the full Barnes–Hut tree-code
//! of §4 (octree build via `expand_box`/`insert_particle`, recursive
//! `compute_force`, and the BHL1/BHL2 loops).

/// §3.3.2 — the polynomial scaling loop *without* an ADDS declaration.
/// `ListNode` has the implicit single dimension with unknown direction, so
/// a conservative analysis must assume `next` may be cyclic.
pub const LIST_SCALE_PLAIN: &str = "
type ListNode
{
    int coef, exp;
    ListNode *next;
};

procedure scale(head: ListNode*, c: int)
{
    var p: ListNode*;
    p = head;
    while p <> NULL
    {
        p->coef = p->coef * c;
        p = p->next;
    }
}
";

/// §3.1.1 / §3.3.2 — the same loop with the `OneWayList`-style declaration:
/// `next` is uniquely forward along `X`, so the analysis can prove `head`,
/// `p` and `p'` are never aliases.
pub const LIST_SCALE_ADDS: &str = "
type ListNode [X]
{
    int coef, exp;
    ListNode *next is uniquely forward along X;
};

procedure scale(head: ListNode*, c: int)
{
    var p: ListNode*;
    p = head;
    while p <> NULL
    {
        p->coef = p->coef * c;
        p = p->next;
    }
}
";

/// §3.3.1 — moving a subtree between nodes of a binary tree. The first
/// statement breaks the disjointness property (p1 and p2 share a subtree);
/// the second repairs it.
pub const SUBTREE_MOVE: &str = "
type BinTree [down]
{
    int data;
    BinTree *left, *right is uniquely forward along down;
};

procedure move_subtree(p1: BinTree*, p2: BinTree*)
{
    p1->left = p2->left;
    p2->left = NULL;
}
";

/// §3.1.4 — the orthogonal-list sparse matrix: row headers chained along
/// dimension `Y` (`down`), row entries chained along dimension `X`
/// (`across`), with the dimensions declared independent (`where X||Y`): a
/// pure-`across` chain and a pure-`down` chain from the same node share no
/// other node. The procedure scales every stored entry by walking rows
/// outer, entries inner — the loop the two-dimensional declaration lets the
/// analysis parallelize across rows (the inner `across` walk is a
/// summarized, iteration-local effect).
pub const ORTH_ROW_SCALE: &str = "
type OrthList [X] [Y] where X||Y
{
    int data;
    OrthList *across is uniquely forward along X;
    OrthList *down is uniquely forward along Y;
};

procedure scale_rows(rows: OrthList*, c: int)
{
    var r: OrthList*;
    var p: OrthList*;
    r = rows;
    while r <> NULL
    {
        p = r;
        while p <> NULL
        {
            p->data = p->data * c;
            p = p->across;
        }
        r = r->down;
    }
}
";

/// §4.3.1 — the octree declaration, extended with the scalar payload the
/// simulation needs (positions, velocities, forces, box geometry).
///
/// Leaves are the particles themselves (`is_leaf`), linked into a one-way
/// list along `leaves` exactly as in Figure 5.
pub const OCTREE_DECL: &str = "
type Octree [down][leaves]
{
    real mass, x, y, z;
    real vx, vy, vz;
    real fx, fy, fz;
    real cx, cy, cz, hw;
    bool is_leaf;
    Octree *subtrees[8] is uniquely forward along down;
    Octree *next is uniquely forward along leaves;
};
";

/// §4.1–4.3 — the full Barnes–Hut tree-code in IL. Includes `build_tree`
/// (with the paper's `expand_box` and `insert_particle`, preserving the
/// *temporary sharing* order of §4.3.2: the competitor is linked under the
/// new subtree **before** the new subtree replaces it in the original tree),
/// the recursive force computation, the integrator, and the two leaf-list
/// loops BHL1/BHL2 that the transformation parallelizes.
pub const BARNES_HUT: &str = "
type Octree [down][leaves]
{
    real mass, x, y, z;
    real vx, vy, vz;
    real fx, fy, fz;
    real cx, cy, cz, hw;
    bool is_leaf;
    Octree *subtrees[8] is uniquely forward along down;
    Octree *next is uniquely forward along leaves;
};

function new_internal(cx: real, cy: real, cz: real, hw: real): Octree*
{
    var n: Octree*;
    n = new Octree;
    n->is_leaf = false;
    n->cx = cx;
    n->cy = cy;
    n->cz = cz;
    n->hw = hw;
    n->mass = 0.0;
    return n;
}

function octant_of(node: Octree*, x: real, y: real, z: real): int
{
    var q: int;
    q = 0;
    if x >= node->cx { q = q + 1; }
    if y >= node->cy { q = q + 2; }
    if z >= node->cz { q = q + 4; }
    return q;
}

function child_cx(node: Octree*, q: int): real
{
    if q % 2 == 1 { return node->cx + node->hw / 2.0; }
    return node->cx - node->hw / 2.0;
}

function child_cy(node: Octree*, q: int): real
{
    if (q / 2) % 2 == 1 { return node->cy + node->hw / 2.0; }
    return node->cy - node->hw / 2.0;
}

function child_cz(node: Octree*, q: int): real
{
    if (q / 4) % 2 == 1 { return node->cz + node->hw / 2.0; }
    return node->cz - node->hw / 2.0;
}

function contains(node: Octree*, p: Octree*): bool
{
    if p->x < node->cx - node->hw { return false; }
    if p->x >= node->cx + node->hw { return false; }
    if p->y < node->cy - node->hw { return false; }
    if p->y >= node->cy + node->hw { return false; }
    if p->z < node->cz - node->hw { return false; }
    if p->z >= node->cz + node->hw { return false; }
    return true;
}

function expand_box(p: Octree*, root: Octree*): Octree*
{
    var r: Octree*;
    var nr: Octree*;
    var ncx: real;
    var ncy: real;
    var ncz: real;
    var q: int;
    if root == NULL
    {
        r = new_internal(p->x, p->y, p->z, 1.0);
        return r;
    }
    r = root;
    while !contains(r, p)
    {
        ncx = r->cx - r->hw;
        if p->x >= r->cx { ncx = r->cx + r->hw; }
        ncy = r->cy - r->hw;
        if p->y >= r->cy { ncy = r->cy + r->hw; }
        ncz = r->cz - r->hw;
        if p->z >= r->cz { ncz = r->cz + r->hw; }
        nr = new_internal(ncx, ncy, ncz, r->hw * 2.0);
        q = octant_of(nr, r->cx, r->cy, r->cz);
        nr->subtrees[q] = r;
        r = nr;
    }
    return r;
}

procedure insert_particle(p: Octree*, root: Octree*)
{
    var cur: Octree*;
    var child: Octree*;
    var m: Octree*;
    var q: int;
    var qc: int;
    var done: bool;
    cur = root;
    done = false;
    while !done
    {
        q = octant_of(cur, p->x, p->y, p->z);
        child = cur->subtrees[q];
        if child == NULL
        {
            cur->subtrees[q] = p;
            done = true;
        }
        else
        {
            if child->is_leaf
            {
                m = new_internal(child_cx(cur, q), child_cy(cur, q), child_cz(cur, q), cur->hw / 2.0);
                qc = octant_of(m, child->x, child->y, child->z);
                m->subtrees[qc] = child;
                cur->subtrees[q] = m;
                cur = m;
            }
            else
            {
                cur = child;
            }
        }
    }
}

procedure compute_mass(node: Octree*)
{
    var i: int;
    var c: Octree*;
    var mx: real;
    var my: real;
    var mz: real;
    if node == NULL { return; }
    if node->is_leaf { return; }
    node->mass = 0.0;
    mx = 0.0;
    my = 0.0;
    mz = 0.0;
    for i = 0 to 7
    {
        c = node->subtrees[i];
        if c <> NULL
        {
            compute_mass(c);
            node->mass = node->mass + c->mass;
            mx = mx + c->mass * c->x;
            my = my + c->mass * c->y;
            mz = mz + c->mass * c->z;
        }
    }
    if node->mass > 0.0
    {
        node->x = mx / node->mass;
        node->y = my / node->mass;
        node->z = mz / node->mass;
    }
}

function build_tree(particles: Octree*): Octree*
{
    var p: Octree*;
    var root: Octree*;
    p = particles;
    root = NULL;
    while p <> NULL
    {
        root = expand_box(p, root);
        insert_particle(p, root);
        p = p->next;
    }
    compute_mass(root);
    return root;
}

procedure accumulate_force(p: Octree*, node: Octree*, theta: real)
{
    var dx: real;
    var dy: real;
    var dz: real;
    var dist: real;
    var f: real;
    var i: int;
    if node == NULL { return; }
    if node == p { return; }
    dx = node->x - p->x;
    dy = node->y - p->y;
    dz = node->z - p->z;
    dist = sqrt(dx * dx + dy * dy + dz * dz) + 0.0001;
    if node->is_leaf
    {
        f = p->mass * node->mass / (dist * dist * dist);
        p->fx = p->fx + f * dx;
        p->fy = p->fy + f * dy;
        p->fz = p->fz + f * dz;
        return;
    }
    if node->hw * 2.0 / dist < theta
    {
        f = p->mass * node->mass / (dist * dist * dist);
        p->fx = p->fx + f * dx;
        p->fy = p->fy + f * dy;
        p->fz = p->fz + f * dz;
        return;
    }
    for i = 0 to 7
    {
        accumulate_force(p, node->subtrees[i], theta);
    }
}

procedure compute_force_on(p: Octree*, root: Octree*, theta: real)
{
    p->fx = 0.0;
    p->fy = 0.0;
    p->fz = 0.0;
    accumulate_force(p, root, theta);
}

procedure compute_new_vel_pos(p: Octree*, dt: real)
{
    p->vx = p->vx + dt * p->fx / p->mass;
    p->vy = p->vy + dt * p->fy / p->mass;
    p->vz = p->vz + dt * p->fz / p->mass;
    p->x = p->x + dt * p->vx;
    p->y = p->y + dt * p->vy;
    p->z = p->z + dt * p->vz;
}

procedure bhl1(particles: Octree*, root: Octree*, theta: real)
{
    var p: Octree*;
    p = particles;
    while p <> NULL
    {
        compute_force_on(p, root, theta);
        p = p->next;
    }
}

procedure bhl2(particles: Octree*, dt: real)
{
    var p: Octree*;
    p = particles;
    while p <> NULL
    {
        compute_new_vel_pos(p, dt);
        p = p->next;
    }
}

procedure step(particles: Octree*, theta: real, dt: real)
{
    var root: Octree*;
    root = build_tree(particles);
    bhl1(particles, root, theta);
    bhl2(particles, dt);
}

procedure simulate(particles: Octree*, steps: int, theta: real, dt: real)
{
    var t: int;
    for t = 1 to steps
    {
        step(particles, theta, dt);
    }
}
";

/// A tiny list-sum program used by interpreter unit tests.
pub const LIST_SUM: &str = "
type L [X]
{
    int v;
    L *next is uniquely forward along X;
};

function sum(head: L*): int
{
    var s: int;
    var p: L*;
    s = 0;
    p = head;
    while p <> NULL
    {
        s = s + p->v;
        p = p->next;
    }
    return s;
}
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::check_source;

    #[test]
    fn list_scale_plain_typechecks() {
        let tp = check_source(LIST_SCALE_PLAIN).unwrap();
        let t = tp.adds.get("ListNode").unwrap();
        assert!(!t.is_uniquely_forward("next"));
    }

    #[test]
    fn list_scale_adds_typechecks() {
        let tp = check_source(LIST_SCALE_ADDS).unwrap();
        let t = tp.adds.get("ListNode").unwrap();
        assert!(t.is_uniquely_forward("next"));
    }

    #[test]
    fn subtree_move_typechecks() {
        let tp = check_source(SUBTREE_MOVE).unwrap();
        let t = tp.adds.get("BinTree").unwrap();
        assert!(t.same_group("left", "right"));
    }

    #[test]
    fn octree_decl_typechecks() {
        let tp = check_source(&format!(
            "{OCTREE_DECL} procedure noop(n: Octree*) {{ n->mass = 0.0; }}"
        ))
        .unwrap();
        let t = tp.adds.get("Octree").unwrap();
        assert!(t.is_uniquely_forward("subtrees"));
        assert!(t.is_uniquely_forward("next"));
        assert_eq!(t.dims, vec!["down", "leaves"]);
    }

    #[test]
    fn barnes_hut_typechecks() {
        let tp = check_source(BARNES_HUT).unwrap();
        assert!(tp.program.func("build_tree").is_some());
        assert!(tp.program.func("bhl1").is_some());
        assert!(tp.program.func("bhl2").is_some());
        assert!(tp.program.func("simulate").is_some());
        assert_eq!(
            tp.var_ty("bhl1", "p"),
            Some(&crate::ast::Ty::Ptr("Octree".to_string()))
        );
    }

    #[test]
    fn list_sum_typechecks() {
        check_source(LIST_SUM).unwrap();
    }

    #[test]
    fn barnes_hut_pretty_round_trips() {
        let p1 = crate::parser::parse_program(BARNES_HUT).unwrap();
        let printed = crate::pretty::program(&p1);
        let p2 = crate::parser::parse_program(&printed).unwrap();
        assert_eq!(crate::pretty::program(&p2), printed);
    }
}
