//! Tokens of the ADDS intermediate language.

use crate::source::Span;
use std::fmt;

/// The kind of a lexical token. Variant names follow the lexeme: `Kw*`
/// are keywords, the rest are literals, identifiers, punctuation and
/// operators (see [`TokenKind::describe`] for the surface spelling).
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)]
pub enum TokenKind {
    // Literals and identifiers
    Ident(String),
    Int(i64),
    Real(f64),

    // Keywords
    KwType,
    KwFunction,
    KwProcedure,
    KwWhere,
    KwIs,
    KwUniquely,
    KwForward,
    KwBackward,
    KwAlong,
    KwInt,
    KwReal,
    KwBool,
    KwWhile,
    KwIf,
    KwThen,
    KwElse,
    KwReturn,
    KwNull,
    KwNew,
    KwTrue,
    KwFalse,
    KwFor,
    KwParfor,
    KwTo,
    KwVar,

    // Punctuation / operators
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Star,
    Arrow,  // ->
    Assign, // =
    EqEq,   // ==
    NotEq,  // != or <>
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Slash,
    Percent,
    AndAnd,
    OrOr, // also `||` in `where X || Y`
    Bang,

    Eof,
}

impl TokenKind {
    /// Keyword lookup for an identifier-shaped lexeme.
    pub fn keyword(s: &str) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match s {
            "type" => KwType,
            "function" => KwFunction,
            "procedure" => KwProcedure,
            "where" => KwWhere,
            "is" => KwIs,
            "uniquely" => KwUniquely,
            "forward" => KwForward,
            "backward" => KwBackward,
            "along" => KwAlong,
            "int" => KwInt,
            "real" => KwReal,
            "bool" | "boolean" => KwBool,
            "while" => KwWhile,
            "if" => KwIf,
            "then" => KwThen,
            "else" => KwElse,
            "return" => KwReturn,
            "NULL" | "null" => KwNull,
            "new" => KwNew,
            "true" => KwTrue,
            "false" => KwFalse,
            "for" => KwFor,
            "parfor" => KwParfor,
            "to" => KwTo,
            "var" => KwVar,
            _ => return None,
        })
    }

    /// Human-readable description used in parse error messages.
    pub fn describe(&self) -> String {
        use TokenKind::*;
        match self {
            Ident(s) => format!("identifier `{s}`"),
            Int(v) => format!("integer literal `{v}`"),
            Real(v) => format!("real literal `{v}`"),
            Eof => "end of input".to_string(),
            other => format!("`{}`", other.lexeme()),
        }
    }

    /// Canonical lexeme for fixed tokens (empty for variable ones).
    pub fn lexeme(&self) -> &'static str {
        use TokenKind::*;
        match self {
            KwType => "type",
            KwFunction => "function",
            KwProcedure => "procedure",
            KwWhere => "where",
            KwIs => "is",
            KwUniquely => "uniquely",
            KwForward => "forward",
            KwBackward => "backward",
            KwAlong => "along",
            KwInt => "int",
            KwReal => "real",
            KwBool => "bool",
            KwWhile => "while",
            KwIf => "if",
            KwThen => "then",
            KwElse => "else",
            KwReturn => "return",
            KwNull => "NULL",
            KwNew => "new",
            KwTrue => "true",
            KwFalse => "false",
            KwFor => "for",
            KwParfor => "parfor",
            KwTo => "to",
            KwVar => "var",
            LBrace => "{",
            RBrace => "}",
            LParen => "(",
            RParen => ")",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Colon => ":",
            Star => "*",
            Arrow => "->",
            Assign => "=",
            EqEq => "==",
            NotEq => "!=",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            Plus => "+",
            Minus => "-",
            Slash => "/",
            Percent => "%",
            AndAnd => "&&",
            OrOr => "||",
            Bang => "!",
            Ident(_) | Int(_) | Real(_) | Eof => "",
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// A token with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it sits in the source.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_round_trip() {
        for kw in ["type", "while", "forward", "uniquely", "parfor"] {
            let tok = TokenKind::keyword(kw).expect("is a keyword");
            assert_eq!(tok.lexeme(), if kw == "boolean" { "bool" } else { kw });
        }
        assert_eq!(TokenKind::keyword("boolean"), Some(TokenKind::KwBool));
        assert_eq!(TokenKind::keyword("frobnicate"), None);
    }

    #[test]
    fn describe_variable_tokens() {
        assert_eq!(TokenKind::Ident("p".into()).describe(), "identifier `p`");
        assert_eq!(TokenKind::Int(42).describe(), "integer literal `42`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
    }
}
