//! Recursive-descent parser for the ADDS intermediate language.

use crate::ast::*;
use crate::lexer::lex;
use crate::source::{Diagnostic, Span};
use crate::token::{Token, TokenKind};

/// Recursive-descent parser over the lexed token stream.
pub struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

type PResult<T> = Result<T, Diagnostic>;

/// Parse a complete program.
pub fn parse_program(src: &str) -> PResult<Program> {
    Parser::new(src)?.program()
}

/// Parse a single expression (used by tests and the REPL-ish demos).
pub fn parse_expr(src: &str) -> PResult<Expr> {
    let mut p = Parser::new(src)?;
    let e = p.expr()?;
    p.expect(TokenKind::Eof)?;
    Ok(e)
}

impl Parser {
    /// Lex `src` and position the parser at the first token.
    pub fn new(src: &str) -> PResult<Self> {
        Ok(Parser {
            toks: lex(src)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn peek_span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> PResult<Token> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            Err(Diagnostic::new(
                self.peek_span(),
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek().describe()
                ),
            ))
        }
    }

    fn ident(&mut self) -> PResult<(String, Span)> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.peek_span();
                self.bump();
                Ok((name, span))
            }
            other => Err(Diagnostic::new(
                self.peek_span(),
                format!("expected identifier, found {}", other.describe()),
            )),
        }
    }

    // ---------------------------------------------------------------- items

    fn program(&mut self) -> PResult<Program> {
        let mut types = Vec::new();
        let mut funcs = Vec::new();
        loop {
            match self.peek() {
                TokenKind::KwType => types.push(self.type_decl()?),
                TokenKind::KwFunction | TokenKind::KwProcedure => funcs.push(self.fun_decl()?),
                TokenKind::Eof => break,
                other => {
                    return Err(Diagnostic::new(
                        self.peek_span(),
                        format!(
                            "expected `type`, `function` or `procedure`, found {}",
                            other.describe()
                        ),
                    ))
                }
            }
        }
        Ok(Program { types, funcs })
    }

    fn type_decl(&mut self) -> PResult<TypeDecl> {
        let start = self.peek_span();
        self.expect(TokenKind::KwType)?;
        let (name, _) = self.ident()?;

        let mut dims = Vec::new();
        while self.eat(&TokenKind::LBracket) {
            let (d, _) = self.ident()?;
            self.expect(TokenKind::RBracket)?;
            dims.push(d);
        }

        let mut independent = Vec::new();
        if self.eat(&TokenKind::KwWhere) {
            loop {
                let (a, _) = self.ident()?;
                self.expect(TokenKind::OrOr)?;
                let (b, _) = self.ident()?;
                independent.push((a, b));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }

        self.expect(TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            fields.push(self.field_decl()?);
        }
        let end = self.expect(TokenKind::RBrace)?.span;
        self.eat(&TokenKind::Semi);

        Ok(TypeDecl {
            name,
            dims,
            independent,
            fields,
            span: start.merge(end),
        })
    }

    fn field_decl(&mut self) -> PResult<FieldDecl> {
        let start = self.peek_span();
        // Scalar fields start with a scalar type keyword.
        let scalar = match self.peek() {
            TokenKind::KwInt => Some(ScalarTy::Int),
            TokenKind::KwReal => Some(ScalarTy::Real),
            TokenKind::KwBool => Some(ScalarTy::Bool),
            _ => None,
        };
        if let Some(st) = scalar {
            self.bump();
            let mut names = Vec::new();
            loop {
                let (n, _) = self.ident()?;
                names.push(n);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            let end = self.expect(TokenKind::Semi)?.span;
            return Ok(FieldDecl {
                names,
                kind: FieldKind::Scalar(st),
                span: start.merge(end),
            });
        }

        // Pointer fields: `Target *a, *b[8] is uniquely forward along D;`
        let (target, _) = self.ident()?;
        let mut names = Vec::new();
        let mut array_len = None;
        loop {
            self.expect(TokenKind::Star)?;
            let (n, _) = self.ident()?;
            names.push(n);
            if self.eat(&TokenKind::LBracket) {
                let tok = self.bump();
                let TokenKind::Int(len) = tok.kind else {
                    return Err(Diagnostic::new(tok.span, "expected array length"));
                };
                if len <= 0 {
                    return Err(Diagnostic::new(tok.span, "array length must be positive"));
                }
                self.expect(TokenKind::RBracket)?;
                array_len = Some(len as usize);
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }

        let route = if self.eat(&TokenKind::KwIs) {
            let unique = self.eat(&TokenKind::KwUniquely);
            let direction = match self.bump() {
                Token {
                    kind: TokenKind::KwForward,
                    ..
                } => Direction::Forward,
                Token {
                    kind: TokenKind::KwBackward,
                    ..
                } => Direction::Backward,
                t => {
                    return Err(Diagnostic::new(
                        t.span,
                        format!(
                            "expected `forward` or `backward`, found {}",
                            t.kind.describe()
                        ),
                    ))
                }
            };
            self.expect(TokenKind::KwAlong)?;
            let (dim, _) = self.ident()?;
            Some(Route {
                unique,
                direction,
                dim,
            })
        } else {
            None
        };

        if array_len.is_some() && names.len() > 1 {
            return Err(Diagnostic::new(
                start,
                "array pointer fields cannot be grouped with other fields",
            ));
        }

        let end = self.expect(TokenKind::Semi)?.span;
        Ok(FieldDecl {
            names,
            kind: FieldKind::Pointer {
                target,
                array_len,
                route,
            },
            span: start.merge(end),
        })
    }

    fn fun_decl(&mut self) -> PResult<FunDecl> {
        let start = self.peek_span();
        let is_proc = self.at(&TokenKind::KwProcedure);
        self.bump(); // function | procedure
        let (name, _) = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                let (pname, pspan) = self.ident()?;
                self.expect(TokenKind::Colon)?;
                let ty = self.ty()?;
                params.push(Param {
                    name: pname,
                    ty,
                    span: pspan,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let ret = if !is_proc && self.eat(&TokenKind::Colon) {
            Some(self.ty()?)
        } else {
            None
        };
        let body = self.block()?;
        let span = start.merge(body.span);
        Ok(FunDecl {
            name,
            params,
            ret,
            body,
            span,
        })
    }

    fn ty(&mut self) -> PResult<Ty> {
        match self.peek().clone() {
            TokenKind::KwInt => {
                self.bump();
                Ok(Ty::Int)
            }
            TokenKind::KwReal => {
                self.bump();
                Ok(Ty::Real)
            }
            TokenKind::KwBool => {
                self.bump();
                Ok(Ty::Bool)
            }
            TokenKind::Ident(name) => {
                self.bump();
                self.expect(TokenKind::Star)?;
                Ok(Ty::Ptr(name))
            }
            other => Err(Diagnostic::new(
                self.peek_span(),
                format!("expected a type, found {}", other.describe()),
            )),
        }
    }

    // ----------------------------------------------------------- statements

    fn block(&mut self) -> PResult<Block> {
        let start = self.expect(TokenKind::LBrace)?.span;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            stmts.push(self.stmt()?);
        }
        let end = self.expect(TokenKind::RBrace)?.span;
        Ok(Block {
            stmts,
            span: start.merge(end),
        })
    }

    /// A block, or a single statement treated as a one-statement block
    /// (`then return x;`).
    fn block_or_stmt(&mut self) -> PResult<Block> {
        if self.at(&TokenKind::LBrace) {
            self.block()
        } else {
            let s = self.stmt()?;
            let span = s.span();
            Ok(Block {
                stmts: vec![s],
                span,
            })
        }
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        match self.peek() {
            TokenKind::KwWhile => self.while_stmt(),
            TokenKind::KwIf => self.if_stmt(),
            TokenKind::KwFor => self.for_stmt(false),
            TokenKind::KwParfor => self.for_stmt(true),
            TokenKind::KwReturn => self.return_stmt(),
            TokenKind::KwVar => self.var_decl(),
            _ => self.assign_or_call(),
        }
    }

    fn while_stmt(&mut self) -> PResult<Stmt> {
        let start = self.expect(TokenKind::KwWhile)?.span;
        // No special-casing of `while (...)`: parenthesized conditions parse
        // via the primary-expression rule, which also keeps
        // `while (a / b) % 2 == 1` unambiguous.
        let cond = self.expr()?;
        let body = self.block_or_stmt()?;
        let span = start.merge(body.span);
        Ok(Stmt::While { cond, body, span })
    }

    fn if_stmt(&mut self) -> PResult<Stmt> {
        let start = self.expect(TokenKind::KwIf)?.span;
        let cond = self.expr()?;
        self.eat(&TokenKind::KwThen);
        let then_blk = self.block_or_stmt()?;
        let mut span = start.merge(then_blk.span);
        let else_blk = if self.eat(&TokenKind::KwElse) {
            let b = self.block_or_stmt()?;
            span = span.merge(b.span);
            Some(b)
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then_blk,
            else_blk,
            span,
        })
    }

    fn for_stmt(&mut self, parallel: bool) -> PResult<Stmt> {
        let start = self.bump().span; // for | parfor
        let (var, _) = self.ident()?;
        self.expect(TokenKind::Assign)?;
        let from = self.expr()?;
        self.expect(TokenKind::KwTo)?;
        let to = self.expr()?;
        let body = self.block_or_stmt()?;
        let span = start.merge(body.span);
        Ok(Stmt::For {
            var,
            from,
            to,
            body,
            parallel,
            span,
        })
    }

    fn return_stmt(&mut self) -> PResult<Stmt> {
        let start = self.expect(TokenKind::KwReturn)?.span;
        if self.eat(&TokenKind::Semi) {
            return Ok(Stmt::Return {
                value: None,
                span: start,
            });
        }
        let value = self.expr()?;
        let end = self.expect(TokenKind::Semi)?.span;
        Ok(Stmt::Return {
            value: Some(value),
            span: start.merge(end),
        })
    }

    fn var_decl(&mut self) -> PResult<Stmt> {
        let start = self.expect(TokenKind::KwVar)?.span;
        let (name, _) = self.ident()?;
        let ty = if self.eat(&TokenKind::Colon) {
            Some(self.ty()?)
        } else {
            None
        };
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        let end = self.expect(TokenKind::Semi)?.span;
        Ok(Stmt::VarDecl {
            name,
            ty,
            init,
            span: start.merge(end),
        })
    }

    fn assign_or_call(&mut self) -> PResult<Stmt> {
        let start = self.peek_span();
        let (name, name_span) = self.ident()?;

        // Call statement: `f(a, b);`
        if self.at(&TokenKind::LParen) {
            let call = self.call_tail(name, name_span)?;
            self.expect(TokenKind::Semi)?;
            return Ok(Stmt::Call(call));
        }

        // Otherwise an lvalue chain followed by `=`.
        let mut path = Vec::new();
        while self.at(&TokenKind::Arrow) {
            self.bump();
            let (field, fspan) = self.ident()?;
            let index = if self.eat(&TokenKind::LBracket) {
                let e = self.expr()?;
                self.expect(TokenKind::RBracket)?;
                Some(Box::new(e))
            } else {
                None
            };
            path.push(FieldAccess {
                field,
                index,
                span: fspan,
            });
        }
        let lhs = LValue {
            base: name,
            path,
            span: start.merge(self.peek_span()),
        };
        self.expect(TokenKind::Assign)?;
        let rhs = self.expr()?;
        let end = self.expect(TokenKind::Semi)?.span;
        Ok(Stmt::Assign {
            lhs,
            rhs,
            span: start.merge(end),
        })
    }

    fn call_tail(&mut self, callee: String, start: Span) -> PResult<Call> {
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let end = self.expect(TokenKind::RParen)?.span;
        Ok(Call {
            callee,
            args,
            span: start.merge(end),
        })
    }

    // ---------------------------------------------------------- expressions

    pub(crate) fn expr(&mut self) -> PResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.at(&TokenKind::OrOr) {
            self.bump();
            let rhs = self.and_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.cmp_expr()?;
        while self.at(&TokenKind::AndAnd) {
            self.bump();
            let rhs = self.cmp_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> PResult<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::NotEq => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        let span = lhs.span().merge(rhs.span());
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            span,
        })
    }

    fn add_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn mul_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn unary_expr(&mut self) -> PResult<Expr> {
        match self.peek() {
            TokenKind::Minus => {
                let start = self.bump().span;
                let operand = self.unary_expr()?;
                let span = start.merge(operand.span());
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    operand: Box::new(operand),
                    span,
                })
            }
            TokenKind::Bang => {
                let start = self.bump().span;
                let operand = self.unary_expr()?;
                let span = start.merge(operand.span());
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    operand: Box::new(operand),
                    span,
                })
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> PResult<Expr> {
        let mut e = self.primary_expr()?;
        while self.at(&TokenKind::Arrow) {
            self.bump();
            let (field, fspan) = self.ident()?;
            let index = if self.eat(&TokenKind::LBracket) {
                let idx = self.expr()?;
                self.expect(TokenKind::RBracket)?;
                Some(Box::new(idx))
            } else {
                None
            };
            let span = e.span().merge(fspan);
            e = Expr::Field {
                base: Box::new(e),
                field,
                index,
                span,
            };
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> PResult<Expr> {
        let span = self.peek_span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v, span))
            }
            TokenKind::Real(v) => {
                self.bump();
                Ok(Expr::Real(v, span))
            }
            TokenKind::KwTrue => {
                self.bump();
                Ok(Expr::Bool(true, span))
            }
            TokenKind::KwFalse => {
                self.bump();
                Ok(Expr::Bool(false, span))
            }
            TokenKind::KwNull => {
                self.bump();
                Ok(Expr::Null(span))
            }
            TokenKind::KwNew => {
                self.bump();
                let (ty, tspan) = self.ident()?;
                Ok(Expr::New(ty, span.merge(tspan)))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.at(&TokenKind::LParen) {
                    Ok(Expr::Call(self.call_tail(name, span)?))
                } else {
                    Ok(Expr::Var(name, span))
                }
            }
            other => Err(Diagnostic::new(
                span,
                format!("expected an expression, found {}", other.describe()),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_one_way_list_declaration() {
        let prog = parse_program(
            "type OneWayList [X] { int data; OneWayList *next is uniquely forward along X; };",
        )
        .unwrap();
        assert_eq!(prog.types.len(), 1);
        let t = &prog.types[0];
        assert_eq!(t.name, "OneWayList");
        assert_eq!(t.dims, vec!["X"]);
        assert_eq!(t.fields.len(), 2);
        match &t.fields[1].kind {
            FieldKind::Pointer { target, route, .. } => {
                assert_eq!(target, "OneWayList");
                let r = route.as_ref().unwrap();
                assert!(r.unique);
                assert_eq!(r.direction, Direction::Forward);
                assert_eq!(r.dim, "X");
            }
            _ => panic!("expected pointer field"),
        }
    }

    #[test]
    fn parses_range_tree_with_independence() {
        let prog = parse_program(
            "type TwoDRangeTree [down][sub][leaves] where sub||down, sub||leaves {
                int data;
                TwoDRangeTree *left, *right is uniquely forward along down;
                TwoDRangeTree *subtree is uniquely forward along sub;
                TwoDRangeTree *next is uniquely forward along leaves;
                TwoDRangeTree *prev is backward along leaves;
            };",
        )
        .unwrap();
        let t = &prog.types[0];
        assert_eq!(t.dims, vec!["down", "sub", "leaves"]);
        assert_eq!(
            t.independent,
            vec![
                ("sub".to_string(), "down".to_string()),
                ("sub".to_string(), "leaves".to_string())
            ]
        );
        assert_eq!(t.fields[1].names, vec!["left", "right"]);
    }

    #[test]
    fn parses_octree_with_array_field() {
        let prog = parse_program(
            "type Octree [down][leaves] {
                real mass;
                bool node_type;
                Octree *subtrees[8] is uniquely forward along down;
                Octree *next is uniquely forward along leaves;
            };",
        )
        .unwrap();
        let t = &prog.types[0];
        match &t.fields[2].kind {
            FieldKind::Pointer { array_len, .. } => assert_eq!(*array_len, Some(8)),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_paper_multiply_loop() {
        let prog = parse_program(
            "procedure scale(head: ListNode*, c: int) {
                var p: ListNode*;
                p = head;
                while p <> NULL {
                    p->coef = p->coef * c;
                    p = p->next;
                }
            }",
        )
        .unwrap();
        let f = &prog.funcs[0];
        assert_eq!(f.name, "scale");
        assert_eq!(f.params.len(), 2);
        assert!(f.ret.is_none());
        assert_eq!(f.body.stmts.len(), 3);
        match &f.body.stmts[2] {
            Stmt::While { body, .. } => assert_eq!(body.stmts.len(), 2),
            _ => panic!("expected while"),
        }
    }

    #[test]
    fn parses_if_then_else_with_paper_syntax() {
        let prog = parse_program(
            "function f(p: T*): int {
                if p <> NULL then
                    return 1;
                else
                    return 0;
            }",
        )
        .unwrap();
        match &prog.funcs[0].body.stmts[0] {
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                assert_eq!(then_blk.stmts.len(), 1);
                assert!(else_blk.is_some());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_parfor_strip_mined_loop() {
        let prog = parse_program(
            "procedure main(particles: Octree*, root: Octree*) {
                var p: Octree*;
                var i: int;
                p = particles;
                while p <> NULL {
                    parfor i = 0 to PEs-1 {
                        BHL1_iteration(i, p, root);
                    }
                    for i = 0 to PEs-1 {
                        p = p->next;
                    }
                }
            }",
        )
        .unwrap();
        let body = &prog.funcs[0].body;
        match &body.stmts[3] {
            Stmt::While { body, .. } => {
                assert!(matches!(body.stmts[0], Stmt::For { parallel: true, .. }));
                assert!(matches!(
                    body.stmts[1],
                    Stmt::For {
                        parallel: false,
                        ..
                    }
                ));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. })),
            _ => panic!(),
        }
    }

    #[test]
    fn comparison_binds_looser_than_arith() {
        let e = parse_expr("a + 1 < b * 2").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Lt, .. }));
    }

    #[test]
    fn logical_operators_nest() {
        let e = parse_expr("a < b && c <> NULL || !d").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn field_chains_and_array_indexing() {
        let e = parse_expr("node->subtrees[i]->mass").unwrap();
        let Expr::Field { base, field, .. } = e else {
            panic!()
        };
        assert_eq!(field, "mass");
        let Expr::Field {
            field: f2, index, ..
        } = *base
        else {
            panic!()
        };
        assert_eq!(f2, "subtrees");
        assert!(index.is_some());
    }

    #[test]
    fn assignment_through_array_field() {
        let prog =
            parse_program("procedure g(n: Octree*, q: Octree*) { n->subtrees[3] = q; }").unwrap();
        match &prog.funcs[0].body.stmts[0] {
            Stmt::Assign { lhs, .. } => {
                assert_eq!(lhs.base, "n");
                assert_eq!(lhs.path[0].field, "subtrees");
                assert!(lhs.path[0].index.is_some());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn error_messages_name_the_offender() {
        let err = parse_program("type T { int; }").unwrap_err();
        assert!(
            err.message.contains("expected identifier"),
            "{}",
            err.message
        );
    }

    #[test]
    fn rejects_grouped_array_fields() {
        let err = parse_program("type T { T *a[4], *b is forward along D; }").unwrap_err();
        assert!(err.message.contains("array"), "{}", err.message);
    }

    #[test]
    fn new_expression() {
        let prog =
            parse_program("function mk(): Octree* { var n: Octree* = new Octree; return n; }")
                .unwrap();
        match &prog.funcs[0].body.stmts[0] {
            Stmt::VarDecl { init, .. } => assert!(matches!(init, Some(Expr::New(_, _)))),
            _ => panic!(),
        }
    }
}
