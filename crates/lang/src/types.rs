//! Type checking and local-variable type inference for the IL.
//!
//! Parameters and return types are explicitly annotated; local variables may
//! be declared with `var` or introduced by assignment, in which case their
//! type is inferred by a fixpoint pass (so `root = NULL; ... root =
//! expand_box(p, root);` types `root` from its later use, as the paper's
//! `build_tree` requires).

use crate::adds::{AddsEnv, AddsFieldKind};
use crate::ast::*;
use crate::source::{Diagnostic, Diagnostics, Span};
use std::collections::HashMap;

/// Signature of a function or intrinsic.
#[derive(Clone, Debug, PartialEq)]
pub struct FuncSig {
    /// Parameter types, in order.
    pub params: Vec<Ty>,
    /// Return type; `None` for procedures.
    pub ret: Option<Ty>,
}

/// A fully checked program: AST plus resolved ADDS environment, function
/// signatures, and per-function local variable types (parameters included).
#[derive(Clone, Debug)]
pub struct TypedProgram {
    /// The checked AST.
    pub program: Program,
    /// Resolved ADDS shape models per record type.
    pub adds: AddsEnv,
    /// Function signatures by name.
    pub sigs: HashMap<String, FuncSig>,
    /// Per-function variable types (parameters included).
    pub locals: HashMap<String, HashMap<String, Ty>>,
}

impl TypedProgram {
    /// Type of variable `var` inside function `func`.
    pub fn var_ty(&self, func: &str, var: &str) -> Option<&Ty> {
        self.locals.get(func).and_then(|m| m.get(var))
    }

    /// Type of record field `field` in record type `record`.
    pub fn field_ty(&self, record: &str, field: &str) -> Option<Ty> {
        field_ty(&self.adds, record, field)
    }
}

/// Intrinsic functions available to every program. `print` accepts exactly
/// one argument of any type; the numeric intrinsics mirror what the N-body
/// kernels need.
pub fn intrinsic_sig(name: &str) -> Option<FuncSig> {
    let sig = |params: Vec<Ty>, ret: Option<Ty>| Some(FuncSig { params, ret });
    match name {
        "sqrt" | "fabs" => sig(vec![Ty::Real], Some(Ty::Real)),
        "min" | "max" => sig(vec![Ty::Real, Ty::Real], Some(Ty::Real)),
        "abs" => sig(vec![Ty::Int], Some(Ty::Int)),
        "itor" => sig(vec![Ty::Int], Some(Ty::Real)),
        "print" => None, // handled specially (polymorphic)
        _ => None,
    }
}

/// Name of the builtin integer constant holding the processor count,
/// referenced by the strip-mined code of §4.3.3.
pub const PES_CONST: &str = "PEs";

fn field_ty(adds: &AddsEnv, record: &str, field: &str) -> Option<Ty> {
    let t = adds.get(record)?;
    match &t.field(field)?.kind {
        AddsFieldKind::Scalar(ScalarTy::Int) => Some(Ty::Int),
        AddsFieldKind::Scalar(ScalarTy::Real) => Some(Ty::Real),
        AddsFieldKind::Scalar(ScalarTy::Bool) => Some(Ty::Bool),
        AddsFieldKind::Pointer { target, .. } => Some(Ty::Ptr(target.clone())),
    }
}

/// Check a parsed program, producing the typed program or diagnostics.
pub fn check(program: Program) -> Result<TypedProgram, Diagnostics> {
    let adds = AddsEnv::build(&program)?;
    let mut diags = Diagnostics::default();

    // Collect signatures first so calls can be checked in any order.
    let mut sigs: HashMap<String, FuncSig> = HashMap::new();
    for f in &program.funcs {
        if sigs.contains_key(&f.name) {
            diags.push(Diagnostic::new(
                f.span,
                format!("duplicate function `{}`", f.name),
            ));
            continue;
        }
        for p in &f.params {
            if let Ty::Ptr(t) = &p.ty {
                if adds.get(t).is_none() {
                    diags.push(Diagnostic::new(
                        p.span,
                        format!("parameter `{}` has undeclared record type `{t}`", p.name),
                    ));
                }
            }
        }
        if let Some(Ty::Ptr(t)) = &f.ret {
            if adds.get(t).is_none() {
                diags.push(Diagnostic::new(
                    f.span,
                    format!("return type references undeclared record type `{t}`"),
                ));
            }
        }
        sigs.insert(
            f.name.clone(),
            FuncSig {
                params: f.params.iter().map(|p| p.ty.clone()).collect(),
                ret: f.ret.clone(),
            },
        );
    }

    let mut locals = HashMap::new();
    for f in &program.funcs {
        let mut checker = FuncChecker {
            adds: &adds,
            sigs: &sigs,
            fun: f,
            vars: HashMap::new(),
            diags: &mut diags,
        };
        checker.run();
        let vars = checker.vars;
        locals.insert(f.name.clone(), vars);
    }

    diags.into_result(TypedProgram {
        program: program.clone(),
        adds,
        sigs,
        locals,
    })
}

/// Convenience: parse then check.
pub fn check_source(src: &str) -> Result<TypedProgram, Diagnostics> {
    let program = crate::parser::parse_program(src).map_err(|d| Diagnostics(vec![d]))?;
    check(program)
}

struct FuncChecker<'a> {
    adds: &'a AddsEnv,
    sigs: &'a HashMap<String, FuncSig>,
    fun: &'a FunDecl,
    vars: HashMap<String, Ty>,
    diags: &'a mut Diagnostics,
}

impl<'a> FuncChecker<'a> {
    fn run(&mut self) {
        let fun = self.fun;
        for p in &fun.params {
            self.vars.insert(p.name.clone(), p.ty.clone());
        }

        // Inference fixpoint: repeatedly sweep the body binding any variable
        // whose defining expression has a known type, until stable.
        loop {
            let before = self.vars.len();
            self.infer_block(&fun.body);
            if self.vars.len() == before {
                break;
            }
        }

        // Final strict pass.
        self.check_block(&fun.body);
    }

    // -------------------------------------------------------- inference pass

    fn infer_block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.infer_stmt(s);
        }
    }

    fn infer_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::VarDecl { name, ty, init, .. } => {
                if let Some(t) = ty {
                    self.vars.entry(name.clone()).or_insert_with(|| t.clone());
                } else if let Some(e) = init {
                    if let Some(t) = self.try_ty(e) {
                        self.vars.entry(name.clone()).or_insert(t);
                    }
                }
            }
            Stmt::Assign { lhs, rhs, .. } => {
                if lhs.is_var() && !self.vars.contains_key(&lhs.base) {
                    if let Some(t) = self.try_ty(rhs) {
                        self.vars.insert(lhs.base.clone(), t);
                    }
                }
            }
            Stmt::While { body, .. } => self.infer_block(body),
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                self.infer_block(then_blk);
                if let Some(e) = else_blk {
                    self.infer_block(e);
                }
            }
            Stmt::For { var, body, .. } => {
                self.vars.entry(var.clone()).or_insert(Ty::Int);
                self.infer_block(body);
            }
            Stmt::Return { .. } | Stmt::Call(_) => {}
        }
    }

    /// Best-effort expression typing during inference (no diagnostics).
    fn try_ty(&mut self, e: &Expr) -> Option<Ty> {
        match e {
            Expr::Int(..) => Some(Ty::Int),
            Expr::Real(..) => Some(Ty::Real),
            Expr::Bool(..) => Some(Ty::Bool),
            Expr::Null(_) => None, // polymorphic: resolved by a later binding
            Expr::New(t, _) => Some(Ty::Ptr(t.clone())),
            Expr::Var(v, _) => {
                if v == PES_CONST {
                    Some(Ty::Int)
                } else {
                    self.vars.get(v).cloned()
                }
            }
            Expr::Field { base, field, .. } => {
                let bt = self.try_ty(base)?;
                field_ty(self.adds, bt.pointee()?, field)
            }
            Expr::Unary { operand, op, .. } => match op {
                UnOp::Neg => self.try_ty(operand),
                UnOp::Not => Some(Ty::Bool),
            },
            Expr::Binary { op, lhs, rhs, .. } => {
                if op.is_comparison() || op.is_logical() {
                    Some(Ty::Bool)
                } else {
                    let lt = self.try_ty(lhs);
                    let rt = self.try_ty(rhs);
                    match (lt, rt) {
                        (Some(Ty::Real), _) | (_, Some(Ty::Real)) => Some(Ty::Real),
                        (Some(Ty::Int), Some(Ty::Int)) => Some(Ty::Int),
                        _ => None,
                    }
                }
            }
            Expr::Call(c) => {
                if let Some(sig) = self.sigs.get(&c.callee) {
                    sig.ret.clone()
                } else {
                    intrinsic_sig(&c.callee).and_then(|s| s.ret)
                }
            }
        }
    }

    // ------------------------------------------------------------ strict pass

    fn check_block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.check_stmt(s);
        }
    }

    fn check_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::VarDecl {
                name,
                ty,
                init,
                span,
            } => {
                let declared = self.vars.get(name).cloned();
                if declared.is_none() {
                    self.diags.push(Diagnostic::new(
                        *span,
                        format!("cannot infer a type for variable `{name}`"),
                    ));
                    return;
                }
                if let (Some(annot), Some(actual)) = (ty, &declared) {
                    if annot != actual {
                        self.diags.push(Diagnostic::new(
                            *span,
                            format!("variable `{name}` declared `{annot}` but bound `{actual}`"),
                        ));
                    }
                }
                if let Some(e) = init {
                    let target = declared.unwrap();
                    if matches!(e, Expr::Null(_)) {
                        self.require_nullable(&target, e.span());
                    } else if let Some(et) = self.expr_ty(e) {
                        self.require_assignable(&target, &et, e.span());
                    }
                }
            }
            Stmt::Assign { lhs, rhs, span } => {
                let lt = self.lvalue_ty(lhs);
                if matches!(rhs, Expr::Null(_)) {
                    if let Some(lt) = lt {
                        self.require_nullable(&lt, *span);
                    }
                    return;
                }
                let rt = self.expr_ty(rhs);
                if let (Some(lt), Some(rt)) = (lt, rt) {
                    self.require_assignable(&lt, &rt, *span);
                }
            }
            Stmt::While { cond, body, .. } => {
                self.require_bool(cond);
                self.check_block(body);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                self.require_bool(cond);
                self.check_block(then_blk);
                if let Some(e) = else_blk {
                    self.check_block(e);
                }
            }
            Stmt::For {
                var,
                from,
                to,
                body,
                span,
                ..
            } => {
                if self.vars.get(var) != Some(&Ty::Int) {
                    self.diags.push(Diagnostic::new(
                        *span,
                        format!("loop variable `{var}` must be int"),
                    ));
                }
                self.require_int(from);
                self.require_int(to);
                self.check_block(body);
            }
            Stmt::Return { value, span } => match (&self.fun.ret.clone(), value) {
                (Some(rt), Some(e)) => {
                    if matches!(e, Expr::Null(_)) {
                        self.require_nullable(rt, e.span());
                    } else if let Some(et) = self.expr_ty(e) {
                        self.require_assignable(rt, &et, e.span());
                    }
                }
                (Some(_), None) => self.diags.push(Diagnostic::new(
                    *span,
                    format!("function `{}` must return a value", self.fun.name),
                )),
                (None, Some(_)) => self.diags.push(Diagnostic::new(
                    *span,
                    format!("procedure `{}` cannot return a value", self.fun.name),
                )),
                (None, None) => {}
            },
            Stmt::Call(c) => {
                self.check_call(c);
            }
        }
    }

    fn lvalue_ty(&mut self, lv: &LValue) -> Option<Ty> {
        let mut ty = match self.vars.get(&lv.base) {
            Some(t) => t.clone(),
            None => {
                self.diags.push(Diagnostic::new(
                    lv.span,
                    format!("unknown variable `{}`", lv.base),
                ));
                return None;
            }
        };
        for acc in &lv.path {
            let Some(rec) = ty.pointee().map(str::to_string) else {
                self.diags.push(Diagnostic::new(
                    acc.span,
                    format!("`->{}` applied to non-pointer of type `{ty}`", acc.field),
                ));
                return None;
            };
            self.check_field_access(&rec, &acc.field, acc.index.as_deref(), acc.span)?;
            ty = field_ty(self.adds, &rec, &acc.field)?;
        }
        Some(ty)
    }

    /// Validates that `field` exists on `rec` and indexing matches the
    /// declared shape (array fields must be indexed; plain fields must not).
    fn check_field_access(
        &mut self,
        rec: &str,
        field: &str,
        index: Option<&Expr>,
        span: Span,
    ) -> Option<()> {
        let t = self.adds.get(rec)?;
        let Some(f) = t.field(field) else {
            self.diags.push(Diagnostic::new(
                span,
                format!("record `{rec}` has no field `{field}`"),
            ));
            return None;
        };
        let is_array = matches!(
            &f.kind,
            AddsFieldKind::Pointer {
                array_len: Some(_),
                ..
            }
        );
        match (is_array, index) {
            (true, None) => {
                self.diags.push(Diagnostic::new(
                    span,
                    format!("array field `{field}` requires an index"),
                ));
                return None;
            }
            (false, Some(_)) => {
                self.diags.push(Diagnostic::new(
                    span,
                    format!("field `{field}` is not an array"),
                ));
                return None;
            }
            _ => {}
        }
        if let Some(idx) = index {
            self.require_int(idx);
        }
        Some(())
    }

    fn expr_ty(&mut self, e: &Expr) -> Option<Ty> {
        match e {
            Expr::Int(..) => Some(Ty::Int),
            Expr::Real(..) => Some(Ty::Real),
            Expr::Bool(..) => Some(Ty::Bool),
            Expr::Null(_) => None, // handled by require_assignable / comparisons
            Expr::New(t, span) => {
                if self.adds.get(t).is_none() {
                    self.diags.push(Diagnostic::new(
                        *span,
                        format!("`new` of undeclared record type `{t}`"),
                    ));
                    return None;
                }
                Some(Ty::Ptr(t.clone()))
            }
            Expr::Var(v, span) => {
                if v == PES_CONST {
                    return Some(Ty::Int);
                }
                match self.vars.get(v) {
                    Some(t) => Some(t.clone()),
                    None => {
                        self.diags
                            .push(Diagnostic::new(*span, format!("unknown variable `{v}`")));
                        None
                    }
                }
            }
            Expr::Field {
                base,
                field,
                index,
                span,
            } => {
                let bt = self.expr_ty(base)?;
                let Some(rec) = bt.pointee().map(str::to_string) else {
                    self.diags.push(Diagnostic::new(
                        *span,
                        format!("`->{field}` applied to non-pointer of type `{bt}`"),
                    ));
                    return None;
                };
                self.check_field_access(&rec, field, index.as_deref(), *span)?;
                field_ty(self.adds, &rec, field)
            }
            Expr::Unary { op, operand, span } => {
                let t = self.expr_ty(operand)?;
                match op {
                    UnOp::Neg if matches!(t, Ty::Int | Ty::Real) => Some(t),
                    UnOp::Not if t == Ty::Bool => Some(Ty::Bool),
                    _ => {
                        self.diags.push(Diagnostic::new(
                            *span,
                            format!("unary operator not applicable to `{t}`"),
                        ));
                        None
                    }
                }
            }
            Expr::Binary { op, lhs, rhs, span } => self.binary_ty(*op, lhs, rhs, *span),
            Expr::Call(c) => self.check_call(c),
        }
    }

    fn binary_ty(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr, span: Span) -> Option<Ty> {
        // NULL literals: only meaningful against pointers.
        let l_null = matches!(lhs, Expr::Null(_));
        let r_null = matches!(rhs, Expr::Null(_));
        if op.is_comparison() {
            if matches!(op, BinOp::Eq | BinOp::Ne) && (l_null || r_null) {
                let other = if l_null { rhs } else { lhs };
                if !(l_null && r_null) {
                    let t = self.expr_ty(other)?;
                    if !t.is_pointer() {
                        self.diags.push(Diagnostic::new(
                            span,
                            format!("cannot compare `{t}` with NULL"),
                        ));
                        return None;
                    }
                }
                return Some(Ty::Bool);
            }
            let lt = self.expr_ty(lhs)?;
            let rt = self.expr_ty(rhs)?;
            let compatible = match (&lt, &rt) {
                (Ty::Int, Ty::Int) | (Ty::Real, Ty::Real) => true,
                (Ty::Int, Ty::Real) | (Ty::Real, Ty::Int) => true,
                (Ty::Bool, Ty::Bool) if matches!(op, BinOp::Eq | BinOp::Ne) => true,
                (Ty::Ptr(a), Ty::Ptr(b)) if matches!(op, BinOp::Eq | BinOp::Ne) => a == b,
                _ => false,
            };
            if !compatible {
                self.diags.push(Diagnostic::new(
                    span,
                    format!("cannot compare `{lt}` with `{rt}`"),
                ));
                return None;
            }
            return Some(Ty::Bool);
        }
        if op.is_logical() {
            self.require_bool(lhs);
            self.require_bool(rhs);
            return Some(Ty::Bool);
        }
        // Arithmetic.
        let lt = self.expr_ty(lhs)?;
        let rt = self.expr_ty(rhs)?;
        match (&lt, &rt) {
            (Ty::Int, Ty::Int) => Some(Ty::Int),
            (Ty::Real, Ty::Real) | (Ty::Int, Ty::Real) | (Ty::Real, Ty::Int) => Some(Ty::Real),
            _ => {
                self.diags.push(Diagnostic::new(
                    span,
                    format!("arithmetic on `{lt}` and `{rt}`"),
                ));
                None
            }
        }
    }

    fn check_call(&mut self, c: &Call) -> Option<Ty> {
        if c.callee == "print" {
            if c.args.len() != 1 {
                self.diags.push(Diagnostic::new(
                    c.span,
                    "print takes exactly one argument".to_string(),
                ));
            } else {
                self.expr_ty(&c.args[0]);
            }
            return None;
        }
        let sig = match self.sigs.get(&c.callee).cloned() {
            Some(s) => s,
            None => match intrinsic_sig(&c.callee) {
                Some(s) => s,
                None => {
                    self.diags.push(Diagnostic::new(
                        c.span,
                        format!("unknown function `{}`", c.callee),
                    ));
                    return None;
                }
            },
        };
        if sig.params.len() != c.args.len() {
            self.diags.push(Diagnostic::new(
                c.span,
                format!(
                    "`{}` expects {} argument(s), got {}",
                    c.callee,
                    sig.params.len(),
                    c.args.len()
                ),
            ));
            return sig.ret;
        }
        for (arg, expect) in c.args.iter().zip(&sig.params) {
            if matches!(arg, Expr::Null(_)) {
                if !expect.is_pointer() {
                    self.diags.push(Diagnostic::new(
                        arg.span(),
                        format!("NULL passed where `{expect}` expected"),
                    ));
                }
                continue;
            }
            if let Some(at) = self.expr_ty(arg) {
                self.require_assignable(expect, &at, arg.span());
            }
        }
        sig.ret
    }

    fn require_assignable(&mut self, target: &Ty, value: &Ty, span: Span) {
        let ok = match (target, value) {
            (a, b) if a == b => true,
            (Ty::Real, Ty::Int) => true, // implicit int→real promotion
            _ => false,
        };
        if !ok {
            self.diags.push(Diagnostic::new(
                span,
                format!("cannot assign `{value}` to `{target}`"),
            ));
        }
    }

    fn require_nullable(&mut self, target: &Ty, span: Span) {
        if !target.is_pointer() {
            self.diags.push(Diagnostic::new(
                span,
                format!("cannot assign NULL to `{target}`"),
            ));
        }
    }

    fn require_bool(&mut self, e: &Expr) {
        if let Some(t) = self.expr_ty(e) {
            if t != Ty::Bool {
                self.diags.push(Diagnostic::new(
                    e.span(),
                    format!("expected bool, found `{t}`"),
                ));
            }
        }
    }

    fn require_int(&mut self, e: &Expr) {
        if let Some(t) = self.expr_ty(e) {
            if t != Ty::Int {
                self.diags.push(Diagnostic::new(
                    e.span(),
                    format!("expected int, found `{t}`"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIST: &str =
        "type ListNode [X] { int coef, exp; ListNode *next is uniquely forward along X; };";

    #[test]
    fn checks_paper_scale_loop() {
        let src = format!(
            "{LIST}
            procedure scale(head: ListNode*, c: int) {{
                var p: ListNode*;
                p = head;
                while p <> NULL {{
                    p->coef = p->coef * c;
                    p = p->next;
                }}
            }}"
        );
        let tp = check_source(&src).unwrap();
        assert_eq!(
            tp.var_ty("scale", "p"),
            Some(&Ty::Ptr("ListNode".to_string()))
        );
        assert_eq!(tp.field_ty("ListNode", "coef"), Some(Ty::Int));
    }

    #[test]
    fn infers_local_from_assignment() {
        let src = format!(
            "{LIST}
            function second(head: ListNode*): ListNode* {{
                q = head->next;
                return q;
            }}"
        );
        let tp = check_source(&src).unwrap();
        assert_eq!(
            tp.var_ty("second", "q"),
            Some(&Ty::Ptr("ListNode".to_string()))
        );
    }

    #[test]
    fn infers_null_first_local_via_fixpoint() {
        // `root = NULL` first, typed by the later assignment — the
        // build_tree pattern from §4.3.2.
        let src = format!(
            "{LIST}
            function pick(head: ListNode*): ListNode* {{
                root = NULL;
                if head <> NULL {{
                    root = head->next;
                }}
                return root;
            }}"
        );
        let tp = check_source(&src).unwrap();
        assert_eq!(
            tp.var_ty("pick", "root"),
            Some(&Ty::Ptr("ListNode".to_string()))
        );
    }

    #[test]
    fn rejects_unknown_field() {
        let src = format!(
            "{LIST}
            procedure f(p: ListNode*) {{ p->weight = 1; }}"
        );
        let err = check_source(&src).unwrap_err();
        assert!(err
            .0
            .iter()
            .any(|d| d.message.contains("no field `weight`")));
    }

    #[test]
    fn rejects_type_confusion() {
        let src = format!(
            "{LIST}
            procedure f(p: ListNode*) {{ p->coef = p->next; }}"
        );
        let err = check_source(&src).unwrap_err();
        assert!(err.0.iter().any(|d| d.message.contains("cannot assign")));
    }

    #[test]
    fn rejects_null_compared_to_int() {
        let src = format!(
            "{LIST}
            procedure f(p: ListNode*) {{ if p->coef == NULL then p->coef = 0; }}"
        );
        let err = check_source(&src).unwrap_err();
        assert!(err.0.iter().any(|d| d.message.contains("NULL")));
    }

    #[test]
    fn array_fields_require_index() {
        let src =
            "type Octree [down] { real mass; Octree *subtrees[8] is uniquely forward along down; };
            procedure f(n: Octree*) { n->subtrees = NULL; }";
        let err = check_source(src).unwrap_err();
        assert!(err
            .0
            .iter()
            .any(|d| d.message.contains("requires an index")));

        let ok =
            "type Octree [down] { real mass; Octree *subtrees[8] is uniquely forward along down; };
            procedure f(n: Octree*, q: Octree*) { n->subtrees[0] = q; }";
        assert!(check_source(ok).is_ok());
    }

    #[test]
    fn non_array_fields_reject_index() {
        let src = format!(
            "{LIST}
            procedure f(p: ListNode*, q: ListNode*) {{ p->next[0] = q; }}"
        );
        let err = check_source(&src).unwrap_err();
        assert!(err.0.iter().any(|d| d.message.contains("not an array")));
    }

    #[test]
    fn pes_constant_is_int() {
        let src = format!(
            "{LIST}
            procedure f(head: ListNode*) {{
                var i: int;
                for i = 0 to PEs-1 {{
                    print(i);
                }}
            }}"
        );
        assert!(check_source(&src).is_ok());
    }

    #[test]
    fn return_type_mismatch_is_rejected() {
        let src = format!(
            "{LIST}
            function f(p: ListNode*): int {{ return p; }}"
        );
        let err = check_source(&src).unwrap_err();
        assert!(err.0.iter().any(|d| d.message.contains("cannot assign")));
    }

    #[test]
    fn procedures_cannot_return_values() {
        let src = format!(
            "{LIST}
            procedure f(p: ListNode*) {{ return 3; }}"
        );
        let err = check_source(&src).unwrap_err();
        assert!(err.0.iter().any(|d| d.message.contains("cannot return")));
    }

    #[test]
    fn call_arity_and_types_checked() {
        let src = format!(
            "{LIST}
            function g(x: int): int {{ return x + 1; }}
            procedure f(p: ListNode*) {{
                p->coef = g(1, 2);
            }}"
        );
        let err = check_source(&src).unwrap_err();
        assert!(err
            .0
            .iter()
            .any(|d| d.message.contains("expects 1 argument")));
    }

    #[test]
    fn intrinsics_have_signatures() {
        let src = format!(
            "{LIST}
            procedure f(p: ListNode*) {{
                var x: real;
                x = sqrt(2.0);
                x = min(x, fabs(x));
                p->coef = abs(0 - 3);
            }}"
        );
        assert!(check_source(&src).is_ok());
    }

    #[test]
    fn int_promotes_to_real() {
        let src = format!(
            "{LIST}
            procedure f(p: ListNode*) {{
                var x: real;
                x = 3;
                x = x + 1;
            }}"
        );
        assert!(check_source(&src).is_ok());
    }

    #[test]
    fn uninferable_variable_is_an_error() {
        let src = format!(
            "{LIST}
            procedure f(p: ListNode*) {{
                q = NULL;
            }}"
        );
        let err = check_source(&src).unwrap_err();
        assert!(err
            .0
            .iter()
            .any(|d| d.message.contains("cannot infer") || d.message.contains("unknown variable")));
    }
}
