//! Pretty printer emitting paper-style source from the AST.
//!
//! The output re-parses to an identical AST (round-trip property, tested
//! here and property-tested in the crate tests), and is used for the golden
//! comparison of the strip-mined code in §4.3.3.

use crate::ast::*;
use std::fmt::Write;

/// Render a whole program.
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    for t in &p.types {
        type_decl(&mut out, t);
        out.push('\n');
    }
    for f in &p.funcs {
        fun_decl(&mut out, f);
        out.push('\n');
    }
    out
}

/// Render a single function.
pub fn function(f: &FunDecl) -> String {
    let mut out = String::new();
    fun_decl(&mut out, f);
    out
}

/// Render a single statement at given indent.
pub fn statement(s: &Stmt) -> String {
    let mut out = String::new();
    stmt(&mut out, s, 0);
    out
}

fn type_decl(out: &mut String, t: &TypeDecl) {
    let _ = write!(out, "type {}", t.name);
    for d in &t.dims {
        let _ = write!(out, " [{d}]");
    }
    if !t.independent.is_empty() {
        let clauses: Vec<String> = t
            .independent
            .iter()
            .map(|(a, b)| format!("{a}||{b}"))
            .collect();
        let _ = write!(out, " where {}", clauses.join(", "));
    }
    out.push_str("\n{\n");
    for f in &t.fields {
        field_decl(out, f);
    }
    out.push_str("};\n");
}

fn field_decl(out: &mut String, f: &FieldDecl) {
    match &f.kind {
        FieldKind::Scalar(st) => {
            let name = match st {
                ScalarTy::Int => "int",
                ScalarTy::Real => "real",
                ScalarTy::Bool => "bool",
            };
            let _ = writeln!(out, "    {} {};", name, f.names.join(", "));
        }
        FieldKind::Pointer {
            target,
            array_len,
            route,
        } => {
            let names: Vec<String> = f
                .names
                .iter()
                .map(|n| match array_len {
                    Some(len) => format!("*{n}[{len}]"),
                    None => format!("*{n}"),
                })
                .collect();
            let _ = write!(out, "    {} {}", target, names.join(", "));
            if let Some(r) = route {
                let _ = write!(
                    out,
                    " is {}{} along {}",
                    if r.unique { "uniquely " } else { "" },
                    match r.direction {
                        Direction::Forward => "forward",
                        Direction::Backward => "backward",
                        Direction::Unknown => "unknown",
                    },
                    r.dim
                );
            }
            out.push_str(";\n");
        }
    }
}

fn fun_decl(out: &mut String, f: &FunDecl) {
    let kw = if f.ret.is_some() {
        "function"
    } else {
        "procedure"
    };
    let params: Vec<String> = f
        .params
        .iter()
        .map(|p| format!("{}: {}", p.name, p.ty))
        .collect();
    let _ = write!(out, "{kw} {}({})", f.name, params.join(", "));
    if let Some(rt) = &f.ret {
        let _ = write!(out, ": {rt}");
    }
    out.push('\n');
    block(out, &f.body, 0);
}

fn block(out: &mut String, b: &Block, indent: usize) {
    indent_to(out, indent);
    out.push_str("{\n");
    for s in &b.stmts {
        stmt(out, s, indent + 1);
    }
    indent_to(out, indent);
    out.push_str("}\n");
}

fn indent_to(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("    ");
    }
}

fn stmt(out: &mut String, s: &Stmt, indent: usize) {
    match s {
        Stmt::VarDecl { name, ty, init, .. } => {
            indent_to(out, indent);
            let _ = write!(out, "var {name}");
            if let Some(t) = ty {
                let _ = write!(out, ": {t}");
            }
            if let Some(e) = init {
                let _ = write!(out, " = {}", expr(e));
            }
            out.push_str(";\n");
        }
        Stmt::Assign { lhs, rhs, .. } => {
            indent_to(out, indent);
            let _ = writeln!(out, "{} = {};", lvalue(lhs), expr(rhs));
        }
        Stmt::While { cond, body, .. } => {
            indent_to(out, indent);
            let _ = writeln!(out, "while {}", expr(cond));
            block(out, body, indent);
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            indent_to(out, indent);
            let _ = writeln!(out, "if {}", expr(cond));
            block(out, then_blk, indent);
            if let Some(e) = else_blk {
                indent_to(out, indent);
                out.push_str("else\n");
                block(out, e, indent);
            }
        }
        Stmt::For {
            var,
            from,
            to,
            body,
            parallel,
            ..
        } => {
            indent_to(out, indent);
            let kw = if *parallel { "parfor" } else { "for" };
            let _ = writeln!(out, "{kw} {var} = {} to {}", expr(from), expr(to));
            block(out, body, indent);
        }
        Stmt::Return { value, .. } => {
            indent_to(out, indent);
            match value {
                Some(e) => {
                    let _ = writeln!(out, "return {};", expr(e));
                }
                None => out.push_str("return;\n"),
            }
        }
        Stmt::Call(c) => {
            indent_to(out, indent);
            let _ = writeln!(out, "{};", call(c));
        }
    }
}

fn lvalue(lv: &LValue) -> String {
    let mut s = lv.base.clone();
    for acc in &lv.path {
        s.push_str("->");
        s.push_str(&acc.field);
        if let Some(i) = &acc.index {
            let _ = write!(s, "[{}]", expr(i));
        }
    }
    s
}

fn call(c: &Call) -> String {
    let args: Vec<String> = c.args.iter().map(expr).collect();
    format!("{}({})", c.callee, args.join(", "))
}

/// Render an expression with minimal parentheses (parenthesizing any binary
/// subexpression of a binary expression keeps the output unambiguous and
/// close to the paper's style).
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::Int(v, _) => v.to_string(),
        Expr::Real(v, _) => {
            let s = format!("{v}");
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Expr::Bool(b, _) => b.to_string(),
        Expr::Null(_) => "NULL".to_string(),
        Expr::Var(v, _) => v.clone(),
        Expr::Field {
            base, field, index, ..
        } => {
            let b = match base.as_ref() {
                e @ (Expr::Var(..) | Expr::Field { .. } | Expr::Call(_)) => expr(e),
                other => format!("({})", expr(other)),
            };
            match index {
                Some(i) => format!("{b}->{field}[{}]", expr(i)),
                None => format!("{b}->{field}"),
            }
        }
        Expr::Unary { op, operand, .. } => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            match operand.as_ref() {
                e @ (Expr::Int(..) | Expr::Real(..) | Expr::Var(..) | Expr::Field { .. }) => {
                    format!("{sym}{}", expr(e))
                }
                other => format!("{sym}({})", expr(other)),
            }
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            format!("{} {} {}", sub_expr(lhs), op.symbol(), sub_expr(rhs))
        }
        Expr::Call(c) => call(c),
        Expr::New(t, _) => format!("new {t}"),
    }
}

fn sub_expr(e: &Expr) -> String {
    match e {
        Expr::Binary { .. } => format!("({})", expr(e)),
        _ => expr(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn round_trip(src: &str) {
        let p1 = parse_program(src).unwrap();
        let printed = program(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n---\n{printed}"));
        // Compare shape, ignoring spans: print both and compare text.
        assert_eq!(printed, program(&p2), "round-trip not stable:\n{printed}");
    }

    #[test]
    fn round_trips_declarations() {
        round_trip(
            "type TwoDRangeTree [down][sub][leaves] where sub||down, sub||leaves {
                int data;
                TwoDRangeTree *left, *right is uniquely forward along down;
                TwoDRangeTree *subtree is uniquely forward along sub;
                TwoDRangeTree *next is uniquely forward along leaves;
                TwoDRangeTree *prev is backward along leaves;
            };",
        );
    }

    #[test]
    fn round_trips_functions() {
        round_trip(
            "type L [X] { int v; L *next is uniquely forward along X; };
            function sum(head: L*): int {
                var s: int = 0;
                var p: L*;
                p = head;
                while p <> NULL {
                    s = s + p->v;
                    p = p->next;
                }
                return s;
            }",
        );
    }

    #[test]
    fn round_trips_parallel_loops() {
        round_trip(
            "type O [down] { real m; O *kids[8] is uniquely forward along down; };
            procedure f(root: O*) {
                var i: int;
                parfor i = 0 to PEs-1 {
                    print(i);
                }
            }",
        );
    }

    #[test]
    fn prints_paper_style_condition() {
        let p = parse_program(
            "type L [X] { int v; L *next is uniquely forward along X; };
            procedure f(p: L*) { while p <> NULL { p = p->next; } }",
        )
        .unwrap();
        let s = program(&p);
        assert!(s.contains("while p <> NULL"), "{s}");
    }

    #[test]
    fn binary_nesting_is_parenthesized() {
        let e = crate::parser::parse_expr("a + b * c").unwrap();
        assert_eq!(expr(&e), "a + (b * c)");
    }

    #[test]
    fn real_literals_keep_decimal_point() {
        let e = crate::parser::parse_expr("2.0").unwrap();
        assert_eq!(expr(&e), "2.0");
        let e = crate::parser::parse_expr("1.0 / 2.0").unwrap();
        assert_eq!(expr(&e), "1.0 / 2.0");
    }
}
