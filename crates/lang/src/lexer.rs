//! Hand-written lexer for the ADDS intermediate language.
//!
//! Comments: `//` to end of line and `/* ... */` (non-nesting), both skipped.
//! The paper writes inequality as `<>`; we accept it as a synonym for `!=`.

use crate::source::{Diagnostic, Span};
use crate::token::{Token, TokenKind};

/// A hand-written scanner over the IL's token set.
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Start scanning `src` from the beginning.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    /// Lex the whole input into a token vector terminated by `Eof`.
    pub fn tokenize(mut self) -> Result<Vec<Token>, Diagnostic> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let end = tok.kind == TokenKind::Eof;
            out.push(tok);
            if end {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_trivia(&mut self) -> Result<(), Diagnostic> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(Diagnostic::new(
                                    Span::new(start as u32, self.pos as u32),
                                    "unterminated block comment",
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, Diagnostic> {
        self.skip_trivia()?;
        let start = self.pos as u32;
        let Some(b) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                span: Span::new(start, start),
            });
        };

        let kind = match b {
            b'{' => self.single(TokenKind::LBrace),
            b'}' => self.single(TokenKind::RBrace),
            b'(' => self.single(TokenKind::LParen),
            b')' => self.single(TokenKind::RParen),
            b'[' => self.single(TokenKind::LBracket),
            b']' => self.single(TokenKind::RBracket),
            b';' => self.single(TokenKind::Semi),
            b',' => self.single(TokenKind::Comma),
            b':' => self.single(TokenKind::Colon),
            b'*' => self.single(TokenKind::Star),
            b'+' => self.single(TokenKind::Plus),
            b'%' => self.single(TokenKind::Percent),
            b'/' => self.single(TokenKind::Slash),
            b'-' => {
                self.bump();
                if self.peek() == Some(b'>') {
                    self.bump();
                    TokenKind::Arrow
                } else {
                    TokenKind::Minus
                }
            }
            b'=' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::EqEq
                } else {
                    TokenKind::Assign
                }
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::NotEq
                } else {
                    TokenKind::Bang
                }
            }
            b'<' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        TokenKind::Le
                    }
                    Some(b'>') => {
                        self.bump();
                        TokenKind::NotEq
                    }
                    _ => TokenKind::Lt,
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            b'&' => {
                self.bump();
                if self.peek() == Some(b'&') {
                    self.bump();
                    TokenKind::AndAnd
                } else {
                    return Err(Diagnostic::new(
                        Span::new(start, self.pos as u32),
                        "expected `&&`",
                    ));
                }
            }
            b'|' => {
                self.bump();
                if self.peek() == Some(b'|') {
                    self.bump();
                    TokenKind::OrOr
                } else {
                    return Err(Diagnostic::new(
                        Span::new(start, self.pos as u32),
                        "expected `||`",
                    ));
                }
            }
            b'0'..=b'9' => self.number(start)?,
            b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.ident(),
            other => {
                return Err(Diagnostic::new(
                    Span::new(start, start + 1),
                    format!("unexpected character `{}`", other as char),
                ))
            }
        };

        Ok(Token {
            kind,
            span: Span::new(start, self.pos as u32),
        })
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.bump();
        kind
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'_' || b.is_ascii_alphanumeric() {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()))
    }

    fn number(&mut self, start: u32) -> Result<TokenKind, Diagnostic> {
        let begin = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_real = false;
        // A `.` begins a fractional part only when followed by a digit, so
        // that ranges or member access never lex as part of a number.
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
            is_real = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            let save = self.pos;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if matches!(self.peek(), Some(b'0'..=b'9')) {
                is_real = true;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            } else {
                // Not an exponent after all (e.g. identifier following).
                self.pos = save;
            }
        }
        let text = &self.src[begin..self.pos];
        if is_real {
            text.parse::<f64>()
                .map(TokenKind::Real)
                .map_err(|e| Diagnostic::new(Span::new(start, self.pos as u32), e.to_string()))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|e| Diagnostic::new(Span::new(start, self.pos as u32), e.to_string()))
        }
    }
}

/// Convenience: lex a complete source string.
pub fn lex(src: &str) -> Result<Vec<Token>, Diagnostic> {
    Lexer::new(src).tokenize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_paper_style_declaration() {
        let ks = kinds("type OneWayList [X] { OneWayList *next is uniquely forward along X; };");
        assert_eq!(
            ks,
            vec![
                KwType,
                Ident("OneWayList".into()),
                LBracket,
                Ident("X".into()),
                RBracket,
                LBrace,
                Ident("OneWayList".into()),
                Star,
                Ident("next".into()),
                KwIs,
                KwUniquely,
                KwForward,
                KwAlong,
                Ident("X".into()),
                Semi,
                RBrace,
                Semi,
                Eof
            ]
        );
    }

    #[test]
    fn paper_not_equal_spelling() {
        assert_eq!(
            kinds("p <> NULL"),
            vec![Ident("p".into()), NotEq, KwNull, Eof]
        );
        assert_eq!(
            kinds("p != NULL"),
            vec![Ident("p".into()), NotEq, KwNull, Eof]
        );
    }

    #[test]
    fn arrow_vs_minus() {
        assert_eq!(
            kinds("p->next - 1"),
            vec![
                Ident("p".into()),
                Arrow,
                Ident("next".into()),
                Minus,
                Int(1),
                Eof
            ]
        );
    }

    #[test]
    fn numbers_int_and_real() {
        assert_eq!(kinds("42"), vec![Int(42), Eof]);
        assert_eq!(kinds("3.25"), vec![Real(3.25), Eof]);
        assert_eq!(kinds("1e3"), vec![Real(1000.0), Eof]);
        assert_eq!(kinds("2.5e-1"), vec![Real(0.25), Eof]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a /* BHL1 */ b // trailing\nc"),
            vec![Ident("a".into()), Ident("b".into()), Ident("c".into()), Eof]
        );
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(lex("p # q").is_err());
        assert!(lex("a & b").is_err());
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >= == = !"),
            vec![Lt, Le, Gt, Ge, EqEq, Assign, Bang, Eof]
        );
    }

    #[test]
    fn spans_are_correct() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
    }
}
