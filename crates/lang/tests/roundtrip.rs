//! Property: pretty-printing is a right inverse of parsing — for any AST we
//! can generate, `parse(print(ast))` prints identically. This pins the
//! concrete syntax, which the golden tests of the transformation output
//! rely on.

use adds_lang::ast::*;
use adds_lang::parser::{parse_expr, parse_program};
use adds_lang::pretty;
use adds_lang::source::Span;
use proptest::prelude::*;

fn sp() -> Span {
    Span::default()
}

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..1000).prop_map(|v| Expr::Int(v, sp())),
        (0u32..1000).prop_map(|v| Expr::Real(v as f64 / 8.0, sp())),
        Just(Expr::Bool(true, sp())),
        Just(Expr::Bool(false, sp())),
        Just(Expr::Null(sp())),
        prop_oneof![Just("a"), Just("b"), Just("p")].prop_map(|v| Expr::Var(v.to_string(), sp())),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            // Binary
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Lt),
                    Just(BinOp::Eq),
                    Just(BinOp::Ne),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                ]
            )
                .prop_map(|(l, r, op)| Expr::Binary {
                    op,
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                    span: sp(),
                }),
            // Unary negate
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Neg,
                operand: Box::new(e),
                span: sp(),
            }),
            // Unary not
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Not,
                operand: Box::new(e),
                span: sp(),
            }),
            // Field access chains off a variable
            (
                prop_oneof![Just("p"), Just("q")],
                prop_oneof![Just("next"), Just("left")]
            )
                .prop_map(|(v, f)| Expr::Field {
                    base: Box::new(Expr::Var(v.to_string(), sp())),
                    field: f.to_string(),
                    index: None,
                    span: sp(),
                }),
            // Indexed field access
            (inner, 0usize..8).prop_map(|(idx, _)| Expr::Field {
                base: Box::new(Expr::Var("n".to_string(), sp())),
                field: "kids".to_string(),
                index: Some(Box::new(idx)),
                span: sp(),
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expr_print_parse_print_is_stable(e in arb_expr()) {
        let printed = pretty::expr(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|d| panic!("`{printed}` failed to re-parse: {d}"));
        prop_assert_eq!(pretty::expr(&reparsed), printed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random straight-line procedures round-trip through the printer.
    #[test]
    fn program_print_parse_print_is_stable(
        assigns in prop::collection::vec((0usize..3, arb_expr()), 0..8)
    ) {
        let vars = ["x", "y", "z"];
        let mut body = String::new();
        for (v, e) in &assigns {
            body.push_str(&format!("    {} = {};\n", vars[*v], pretty::expr(e)));
        }
        let src = format!(
            "type T [X] {{ int v; T *next is uniquely forward along X; \
             T *left is forward along X; T *kids[8] is forward along X; }};\n\
             procedure f(p: T*, q: T*, n: T*, a: int, b: int)\n{{\n{body}}}\n"
        );
        let p1 = match parse_program(&src) {
            Ok(p) => p,
            // Some generated RHS are not valid statement contexts (fine).
            Err(_) => return Ok(()),
        };
        let printed = pretty::program(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|d| panic!("re-parse failed: {d}\n{printed}"));
        prop_assert_eq!(pretty::program(&p2), printed);
    }
}
