//! Corpus-wide determinism pins for the parallel executor: every report
//! — per-stage documents, CLI-style batch renders, and `/v1/batch`
//! responses over real HTTP — must be **byte-identical** at `--jobs 1`,
//! `2`, and `8`. Results merge in canonical input order, never
//! completion order, and parallelism never participates in a
//! fingerprint, so thread count cannot leak into any output byte.

use adds_serve::json::Json;
use adds_serve::pipeline::Stage;
use adds_serve::server::{ServeOptions, Server, ServerHandle};
use adds_serve::service::{Session, StageRequest};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Render the whole corpus through one shared session at the given
/// worker count, reports concatenated in input order.
fn render_corpus(jobs: usize, stage: Stage, matrices: bool) -> String {
    let session = Session::with_jobs(jobs);
    let entries: Vec<_> = adds_serve::corpus::CORPUS.iter().collect();
    let reports = session.par_map(&entries, |e| {
        session
            .stage(e.source, StageRequest::with_matrices(stage, matrices))
            .named(e.name, "builtin")
    });
    reports.iter().map(|r| r.to_json().pretty()).collect()
}

#[test]
fn corpus_reports_are_byte_identical_across_jobs() {
    for (stage, matrices) in [
        (Stage::Analyze, true),
        (Stage::Parallelize, false),
        (Stage::Check, false),
    ] {
        let baseline = render_corpus(1, stage, matrices);
        for jobs in [2, 8] {
            assert_eq!(
                render_corpus(jobs, stage, matrices),
                baseline,
                "{stage:?} output drifted at jobs={jobs}"
            );
        }
    }
}

/// One request on a fresh connection, framed by Content-Length (the
/// server holds HTTP/1.1 sockets open by default). Returns (status, body).
fn http_req(addr: std::net::SocketAddr, method: &str, target: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut conn = BufReader::new(stream);
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    conn.get_mut().write_all(head.as_bytes()).expect("write");
    conn.get_mut().write_all(body).expect("write body");
    let mut status_line = String::new();
    conn.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        conn.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(": ") {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.parse().expect("length");
            }
        }
    }
    let mut resp = vec![0u8; content_length];
    conn.read_exact(&mut resp).expect("body");
    (status, resp)
}

fn http_post(addr: std::net::SocketAddr, target: &str, body: &[u8]) -> (u16, Vec<u8>) {
    http_req(addr, "POST", target, body)
}

fn spawn_server(jobs: usize) -> ServerHandle {
    let opts = ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        jobs,
        ..ServeOptions::default()
    };
    Server::bind(&opts).expect("bind").spawn().expect("spawn")
}

#[test]
fn batch_responses_are_byte_identical_across_jobs() {
    // A batch exercising every interesting shape at once: the whole
    // corpus, duplicate items (cache-label pins), an inline source, and
    // an item-level error — against fresh servers at three widths.
    let inline = adds_serve::corpus::find("list_sum").unwrap().source;
    let mut items: Vec<String> = adds_serve::corpus::CORPUS
        .iter()
        .map(|e| format!(r#"{{"stage": "analyze", "program": "{}"}}"#, e.name))
        .collect();
    items.push(r#"{"stage": "parallelize", "program": "barnes_hut"}"#.to_string());
    items.push(format!(
        r#"{{"stage": "check", "source": {}, "name": "inline.il"}}"#,
        Json::str(inline).compact()
    ));
    // Duplicates of earlier items: must re-render byte-identically (and
    // keep their serial cache labels) no matter which worker meets them.
    items.push(format!(
        r#"{{"stage": "analyze", "program": "{}"}}"#,
        adds_serve::corpus::CORPUS[0].name
    ));
    items.push(r#"{"stage": "analyze", "program": "no_such_program"}"#.to_string());
    let body = format!(r#"{{"items": [{}]}}"#, items.join(","));

    let mut baseline: Option<Vec<u8>> = None;
    for jobs in [1usize, 2, 8] {
        let server = spawn_server(jobs);
        let (status, resp) = http_post(server.addr(), "/v1/batch", body.as_bytes());
        assert_eq!(status, 200, "jobs={jobs}");
        match &baseline {
            None => baseline = Some(resp),
            Some(b) => assert_eq!(
                &resp, b,
                "batch response bytes drifted between jobs=1 and jobs={jobs}"
            ),
        }
        server.stop();
    }
}

/// Cross-restart determinism: run the full corpus through a store-backed
/// server, stop it cleanly, start a second server over the same
/// directory, and require (a) `GET /v1/report/{sha}` answers — documents
/// the second life never computed — byte-identical to the first life's
/// POST bytes, and (b) warm `POST /v1/analyze` responses byte-identical
/// to the cold ones. Persistence must be invisible in every output byte.
#[test]
fn store_backed_server_is_byte_identical_across_restarts() {
    let dir = std::env::temp_dir().join(format!(
        "adds_serve_restart_determinism_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        jobs: 2,
        store_dir: Some(dir.to_string_lossy().into_owned()),
        ..ServeOptions::default()
    };

    // First life: cold-compute analyze + parallelize over the corpus.
    let mut cold: Vec<(String, String, Vec<u8>, Vec<u8>)> = Vec::new();
    {
        let server = Server::bind(&opts).expect("bind").spawn().expect("spawn");
        for e in adds_serve::corpus::CORPUS {
            let sha = adds_serve::sha::sha256(e.source.as_bytes()).hex();
            let target = format!("/v1/analyze?name={}&matrices=1", e.name);
            let (status, analyze) = http_post(server.addr(), &target, e.source.as_bytes());
            assert_eq!(status, 200, "{}", e.name);
            let target = format!("/v1/parallelize?name={}", e.name);
            let (status, par) = http_post(server.addr(), &target, e.source.as_bytes());
            assert_eq!(status, 200, "{}", e.name);
            cold.push((e.name.to_string(), sha, analyze, par));
        }
        server.stop(); // clean stop = final commit
    }

    // Second life, same directory: recovery must hand every report back.
    let server = Server::bind(&opts)
        .expect("rebind")
        .spawn()
        .expect("respawn");
    for (name, sha, analyze, par) in &cold {
        // Documents this server never computed, served by content hash.
        let target = format!("/v1/report/{sha}?stage=analyze&matrices=1&name={name}");
        let (status, body) = http_req(server.addr(), "GET", &target, b"");
        assert_eq!(status, 200, "{name} not on disk");
        assert_eq!(
            &body, analyze,
            "{name}: GET /v1/report drifted across restart"
        );
        let target = format!("/v1/report/{sha}?stage=parallelize&name={name}");
        let (status, body) = http_req(server.addr(), "GET", &target, b"");
        assert_eq!(status, 200, "{name} parallelize not on disk");
        assert_eq!(
            &body, par,
            "{name}: parallelize report drifted across restart"
        );
        // Warm POST: answered from the disk tier, byte-identical to cold.
        let target = format!("/v1/analyze?name={name}&matrices=1");
        let (status, body) = http_post(server.addr(), &target, cold_source(name));
        assert_eq!(status, 200);
        assert_eq!(&body, analyze, "{name}: warm POST drifted across restart");
    }
    // The warm traffic really came from the store, not recomputes.
    let (status, stats) = http_req(server.addr(), "GET", "/v1/stats", b"");
    assert_eq!(status, 200);
    let doc = Json::parse(&String::from_utf8_lossy(&stats)).expect("stats JSON");
    let store = doc.get("store").expect("store section");
    assert_eq!(store.get("enabled").and_then(Json::as_bool), Some(true));
    assert!(
        store.get("hits").and_then(Json::as_usize).unwrap_or(0) >= cold.len(),
        "store hits missing: {}",
        String::from_utf8_lossy(&stats)
    );
    let disk_hits = doc
        .get("cache")
        .and_then(|c| c.get("disk_hits"))
        .and_then(Json::as_usize)
        .unwrap_or(0);
    assert!(disk_hits >= cold.len(), "disk_hits = {disk_hits}");
    assert_eq!(
        doc.get("queries")
            .and_then(|q| q.get("reports"))
            .and_then(Json::as_usize),
        Some(0),
        "the second life must not recompute any report"
    );
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

fn cold_source(name: &str) -> &'static [u8] {
    adds_serve::corpus::find(name)
        .expect("corpus entry")
        .source
        .as_bytes()
}

// A randomized sweep over thread counts and batch shapes: any mix of
// corpus programs and stages, with duplicates, must render byte-for-byte
// the same through a parallel session as through a serial one.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_batch_shapes_are_deterministic(
        jobs in 2usize..9,
        shape in proptest::collection::vec(
            (0usize..adds_serve::corpus::CORPUS.len(), 0usize..4),
            1..8,
        ),
    ) {
        let stages = [Stage::Parse, Stage::Check, Stage::Analyze, Stage::Parallelize];
        let units: Vec<(usize, usize)> = shape;
        let render = |jobs: usize| -> String {
            let session = Session::with_jobs(jobs);
            let reports = session.par_map(&units, |&(p, s)| {
                let entry = &adds_serve::corpus::CORPUS[p];
                session
                    .stage(entry.source, StageRequest::new(stages[s]))
                    .named(entry.name, "builtin")
            });
            reports.iter().map(|r| r.to_json().pretty()).collect()
        };
        prop_assert_eq!(render(1), render(jobs));
    }
}
