//! The reactor engine against the blocking engine, over real sockets:
//!
//! * **byte-identity** — the same request sequence against a fresh server
//!   of each engine must produce byte-identical responses, across every
//!   corpus program and stage, the GET endpoints, and the error paths
//!   (this is the contract that makes the engines interchangeable);
//! * **partial I/O torture** — requests dribbled a byte at a time and
//!   pipelined requests split at arbitrary packet boundaries must
//!   reassemble to the same responses;
//! * **slow-loris defense** — a client that trickles headers forever is
//!   answered `408` and reaped by the timer wheel, not parked on a worker;
//! * **connection budget** — connections over `--max-conns` get
//!   `503` + `Retry-After` and are counted, while established
//!   connections keep working;
//! * **`/v1/stats` v5** — the `net` section reports the live engine.

use adds_serve::json::Json;
use adds_serve::server::{Engine, ServeOptions, Server, ServerHandle};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn spawn_engine(engine: Engine) -> ServerHandle {
    let opts = ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        jobs: 2,
        engine,
        ..ServeOptions::default()
    };
    Server::bind(&opts).expect("bind").spawn().expect("spawn")
}

/// Read exactly one `Content-Length`-framed response as raw bytes,
/// leaving the connection usable. (Byte-level framing on purpose: the
/// parity tests compare entire responses, headers included.)
fn read_raw_response(conn: &mut TcpStream) -> Vec<u8> {
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    // Head: read byte-wise until the blank line (responses are small).
    while !raw.ends_with(b"\r\n\r\n") {
        match conn.read(&mut byte) {
            Ok(1) => raw.push(byte[0]),
            Ok(_) => panic!(
                "EOF inside response head: {:?}",
                String::from_utf8_lossy(&raw)
            ),
            Err(e) => panic!("read head: {e}"),
        }
    }
    let head = String::from_utf8_lossy(&raw).into_owned();
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (k, v) = l.split_once(": ")?;
            k.eq_ignore_ascii_case("content-length")
                .then(|| v.parse().ok())?
        })
        .expect("Content-Length");
    let mut body = vec![0u8; content_length];
    conn.read_exact(&mut body).expect("body");
    raw.extend_from_slice(&body);
    raw
}

/// One request on a fresh connection; returns the complete raw response.
fn raw_request(addr: SocketAddr, request: &[u8]) -> Vec<u8> {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_nodelay(true).unwrap();
    conn.write_all(request).expect("write");
    read_raw_response(&mut conn)
}

fn post(target: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn get(target: &str) -> Vec<u8> {
    format!("GET {target} HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n").into_bytes()
}

fn status_of(raw: &[u8]) -> u16 {
    String::from_utf8_lossy(raw)
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status")
}

#[test]
fn engines_answer_byte_identically_across_the_corpus() {
    let reactor = spawn_engine(Engine::Reactor);
    let blocking = spawn_engine(Engine::Blocking);

    // The same sequence against both fresh servers, so cache outcomes
    // (`X-Adds-Cache: miss` then `hit`) line up too. Stats/metrics are
    // excluded: their payloads intentionally differ per engine.
    let mut requests: Vec<Vec<u8>> = Vec::new();
    for entry in adds_serve::corpus::CORPUS {
        for stage in ["analyze", "parallelize", "check", "parse"] {
            requests.push(post(
                &format!("/v1/{stage}?name={}", entry.name),
                entry.source,
            ));
        }
    }
    // Cache hits (repeat of the first analyze), report fetch by digest,
    // corpus endpoints, health, and the error paths.
    let first = adds_serve::corpus::CORPUS[0];
    requests.push(post(
        &format!("/v1/analyze?name={}", first.name),
        first.source,
    ));
    let digest = adds_serve::sha::sha256(first.source.as_bytes()).hex();
    requests.push(get(&format!("/v1/report/{digest}?stage=analyze")));
    requests.push(get("/v1/corpus"));
    requests.push(get("/v1/corpus/barnes_hut"));
    requests.push(get("/healthz"));
    requests.push(get("/v1/nope"));
    requests.push(b"BOGUS /x HTTP/0.9\r\nHost: t\r\n\r\n".to_vec());
    requests.push(
        b"GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 1\r\nContent-Length: 1\r\n\r\nx"
            .to_vec(),
    );

    for (i, req) in requests.iter().enumerate() {
        let a = raw_request(reactor.addr(), req);
        let b = raw_request(blocking.addr(), req);
        assert_eq!(
            a,
            b,
            "request #{i} diverged:\nreactor:  {:?}\nblocking: {:?}",
            String::from_utf8_lossy(&a),
            String::from_utf8_lossy(&b)
        );
    }

    reactor.stop();
    blocking.stop();
}

#[test]
fn engines_agree_on_truncated_requests() {
    // A client that sends half a request and half-closes: the blocking
    // engine answers 400 on the parse error; the reactor's EOF path must
    // produce the identical bytes.
    let reactor = spawn_engine(Engine::Reactor);
    let blocking = spawn_engine(Engine::Blocking);
    let truncated: &[u8] = b"POST /v1/analyze HTTP/1.1\r\nHost: t\r\nContent-Le";
    let one = |addr: SocketAddr| {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(truncated).expect("write");
        conn.shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut resp = Vec::new();
        conn.read_to_end(&mut resp).expect("read");
        resp
    };
    let a = one(reactor.addr());
    let b = one(blocking.addr());
    assert_eq!(status_of(&a), 400);
    assert_eq!(a, b, "truncated-request responses diverged");
    reactor.stop();
    blocking.stop();
}

#[test]
fn one_byte_writes_reassemble_to_the_same_response() {
    let reactor = spawn_engine(Engine::Reactor);
    let blocking = spawn_engine(Engine::Blocking);
    let entry = adds_serve::corpus::find("list_scale_adds").unwrap();
    let req = post("/v1/analyze", entry.source);

    // Reference: the whole request in one write, against the oracle.
    let want = raw_request(blocking.addr(), &req);

    // Torture: the same bytes, one write syscall per byte.
    let mut conn = TcpStream::connect(reactor.addr()).expect("connect");
    conn.set_nodelay(true).unwrap();
    for chunk in req.chunks(1) {
        conn.write_all(chunk).expect("write byte");
    }
    let got = read_raw_response(&mut conn);

    assert_eq!(status_of(&got), 200);
    assert_eq!(got, want, "dribbled request produced different bytes");
    reactor.stop();
    blocking.stop();
}

#[test]
fn pipelined_requests_split_at_odd_boundaries_stay_ordered() {
    let reactor = spawn_engine(Engine::Reactor);
    let blocking = spawn_engine(Engine::Blocking);
    let sum = adds_serve::corpus::find("list_sum").unwrap();
    let scale = adds_serve::corpus::find("list_scale_adds").unwrap();
    let parts = [
        post("/v1/check", sum.source),
        post("/v1/analyze", scale.source),
        get("/healthz"),
        post("/v1/check", sum.source), // cache hit on its own prior item
    ];

    // Reference responses from the oracle, same order, fresh connections.
    let want: Vec<Vec<u8>> = parts
        .iter()
        .map(|r| raw_request(blocking.addr(), r))
        .collect();

    // One reactor connection, all four requests pipelined back-to-back,
    // written in 7-byte slices with pauses every 64 slices so the frames
    // land split across reads in many different places.
    let mut buf = Vec::new();
    for p in &parts {
        buf.extend_from_slice(p);
    }
    let mut conn = TcpStream::connect(reactor.addr()).expect("connect");
    conn.set_nodelay(true).unwrap();
    for (i, chunk) in buf.chunks(7).enumerate() {
        conn.write_all(chunk).expect("write chunk");
        if i % 64 == 63 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    for (i, want) in want.iter().enumerate() {
        let got = read_raw_response(&mut conn);
        assert_eq!(
            &got, want,
            "pipelined response #{i} diverged from the blocking oracle"
        );
    }
    reactor.stop();
    blocking.stop();
}

#[test]
fn slow_loris_is_answered_408_and_reaped() {
    let opts = ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        jobs: 1,
        read_timeout: Duration::from_millis(300),
        ..ServeOptions::default()
    };
    let server = Server::bind(&opts).expect("bind").spawn().expect("spawn");

    let mut conn = TcpStream::connect(server.addr()).expect("connect");
    conn.set_nodelay(true).unwrap();
    conn.set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let started = std::time::Instant::now();
    let mut resp = Vec::new();
    // Dribble one header byte at a time, forever — each byte is activity,
    // but the read deadline is absolute: it must NOT extend.
    'dribble: for byte in b"GET /healthz HTTP/1.1\r\nHost: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
        .iter()
        .cycle()
    {
        if conn.write_all(&[*byte]).is_err() {
            break; // server already closed on us
        }
        std::thread::sleep(Duration::from_millis(20));
        let mut chunk = [0u8; 256];
        loop {
            match conn.read(&mut chunk) {
                Ok(0) => break 'dribble, // closed: done
                Ok(n) => resp.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    break
                }
                Err(_) => break 'dribble,
            }
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "loris connection survived past the read deadline"
        );
    }
    // Reaped within the deadline (plus wheel granularity), with a 408.
    assert!(
        started.elapsed() >= Duration::from_millis(250),
        "closed before the read deadline could have fired"
    );
    let text = String::from_utf8_lossy(&resp);
    assert!(
        text.starts_with("HTTP/1.1 408"),
        "expected 408, got: {text:?}"
    );
    let net = server.state().net.snapshot();
    assert!(
        net.timer_expirations >= 1,
        "timer wheel never fired: {net:?}"
    );
    server.stop();
}

#[test]
fn connection_budget_rejects_with_503_and_counts() {
    let opts = ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        jobs: 1,
        max_connections: 2,
        ..ServeOptions::default()
    };
    let server = Server::bind(&opts).expect("bind").spawn().expect("spawn");

    // Two established connections fill the budget...
    let mut a = TcpStream::connect(server.addr()).expect("connect a");
    a.write_all(&get("/healthz")).unwrap();
    let first = read_raw_response(&mut a);
    assert_eq!(status_of(&first), 200);
    let _b = TcpStream::connect(server.addr()).expect("connect b");
    // ...wait until both are registered with the reactor.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while server.state().net.snapshot().accepted < 2 {
        assert!(std::time::Instant::now() < deadline, "b never accepted");
        std::thread::sleep(Duration::from_millis(5));
    }

    // ...so the third is answered 503 + Retry-After and closed.
    let mut c = TcpStream::connect(server.addr()).expect("connect c");
    c.write_all(&get("/healthz")).unwrap();
    let mut rejected = Vec::new();
    c.read_to_end(&mut rejected).expect("read rejection");
    let text = String::from_utf8_lossy(&rejected);
    assert!(
        text.starts_with("HTTP/1.1 503"),
        "expected 503, got: {text:?}"
    );
    assert!(
        text.contains("Retry-After: 1\r\n"),
        "missing Retry-After: {text:?}"
    );

    // The established connection is unaffected, and the rejection is
    // visible in both the stats snapshot and the Prometheus text.
    a.write_all(&get("/v1/metrics")).unwrap();
    let metrics = read_raw_response(&mut a);
    assert_eq!(status_of(&metrics), 200);
    let metrics = String::from_utf8_lossy(&metrics).into_owned();
    assert!(
        metrics.contains("adds_net_rejected_total 1"),
        "metrics missing rejection: {metrics}"
    );
    assert_eq!(server.state().net.snapshot().rejected, 1);
    server.stop();
}

#[test]
fn stats_v5_net_section_reports_the_reactor() {
    let server = spawn_engine(Engine::Reactor);
    // One inline-served probe and one pool-dispatched request.
    let h = raw_request(server.addr(), &get("/healthz"));
    assert_eq!(status_of(&h), 200);
    let entry = adds_serve::corpus::find("list_sum").unwrap();
    let c = raw_request(server.addr(), &post("/v1/check", entry.source));
    assert_eq!(status_of(&c), 200);

    let raw = raw_request(server.addr(), &get("/v1/stats"));
    let body_at = raw.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
    let doc = Json::parse(&String::from_utf8_lossy(&raw[body_at..])).expect("stats JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("adds.serve-stats/v5")
    );
    let net = doc.get("net").expect("net section");
    assert_eq!(net.get("engine").and_then(Json::as_str), Some("reactor"));
    assert!(net.get("accepted").unwrap().as_usize().unwrap() >= 3);
    assert!(net.get("dispatched").unwrap().as_usize().unwrap() >= 1);
    assert!(net.get("inline").unwrap().as_usize().unwrap() >= 1);
    assert!(net.get("open").unwrap().as_usize().unwrap() >= 1);
    server.stop();
}
