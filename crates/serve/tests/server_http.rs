//! Integration tests driving a real `adds-serve` server over TCP: routing,
//! cache semantics (hit/miss/single-flight), byte-identity with the CLI
//! report path, keep-alive connection reuse, the batch endpoint, and the
//! `/v1/stats` document shape.

use adds_serve::cache::{Cache, CacheStats, Outcome};
use adds_serve::http::KEEPALIVE_MAX_REQUESTS;
use adds_serve::json::Json;
use adds_serve::pipeline::{run_unit, InputUnit, Stage};
use adds_serve::server::{ServeOptions, Server, ServerHandle};
use adds_serve::service::Service;
use adds_serve::sha::sha256;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};

fn spawn_server(jobs: usize) -> ServerHandle {
    let opts = ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        jobs,
        ..ServeOptions::default()
    };
    Server::bind(&opts).expect("bind").spawn().expect("spawn")
}

/// Read exactly one `Content-Length`-framed response off `conn`, leaving
/// the socket usable for the next request. Returns (status, headers, body).
fn read_response(conn: &mut BufReader<TcpStream>) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut status_line = String::new();
    conn.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        conn.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(": ") {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.parse().expect("length");
            }
            headers.push((k.to_string(), v.to_string()));
        }
    }
    let mut body = vec![0u8; content_length];
    conn.read_exact(&mut body).expect("body");
    (status, headers, body)
}

/// Minimal HTTP client: one request on a fresh connection, framed by
/// `Content-Length`. No `Connection` header is sent — the server keeps
/// HTTP/1.1 connections alive by default, so reading to EOF here would
/// stall on the idle timeout; instead the socket is simply dropped.
/// Returns (status, headers, body).
fn http(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut conn = BufReader::new(stream);
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    conn.get_mut()
        .write_all(head.as_bytes())
        .expect("write head");
    conn.get_mut().write_all(body).expect("write body");
    read_response(&mut conn)
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

/// Send one request with an explicit `Connection` header over an existing
/// connection and read exactly one response. Returns (status, headers,
/// body).
fn http_keepalive(
    conn: &mut BufReader<TcpStream>,
    method: &str,
    target: &str,
    body: &[u8],
    close: bool,
) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let connection = if close { "close" } else { "keep-alive" };
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: test\r\nConnection: {connection}\r\n\
         Content-Length: {}\r\n\r\n",
        body.len()
    );
    conn.get_mut().write_all(head.as_bytes()).expect("write");
    conn.get_mut().write_all(body).expect("write body");
    read_response(conn)
}

#[test]
fn healthz_and_unknown_routes() {
    let server = spawn_server(2);
    let (status, _, body) = http(server.addr(), "GET", "/healthz", b"");
    assert_eq!(status, 200);
    assert_eq!(body, b"ok\n");

    let (status, _, _) = http(server.addr(), "GET", "/nope", b"");
    assert_eq!(status, 404);
    let (status, _, _) = http(server.addr(), "GET", "/v1/analyze", b"");
    assert_eq!(status, 405, "GET on a POST endpoint");
    let (status, _, _) = http(server.addr(), "POST", "/healthz", b"");
    assert_eq!(status, 405);
    let (status, _, _) = http(server.addr(), "GET", "/v1/batch", b"");
    assert_eq!(status, 405, "GET on the batch endpoint");
    server.stop();
}

#[test]
fn analyze_is_byte_identical_to_the_cli_report_path() {
    let server = spawn_server(2);
    let src = adds_serve::corpus::find("list_scale_adds").unwrap().source;

    // What `adds-cli analyze x.il --format json` renders: the same
    // session + wrapper path the batch executor uses.
    let unit = InputUnit {
        name: "x.il".to_string(),
        origin: "file",
        source: src.to_string(),
    };
    let report = run_unit(&unit, Stage::Analyze, false);
    let expected = Json::obj([
        ("schema", Json::str(Stage::Analyze.schema())),
        ("ok", Json::Bool(report.ok)),
        ("programs", Json::Arr(vec![report.to_json()])),
    ])
    .pretty();

    let (status, headers, body) = http(
        server.addr(),
        "POST",
        "/v1/analyze?name=x.il",
        src.as_bytes(),
    );
    assert_eq!(status, 200);
    assert_eq!(String::from_utf8_lossy(&body), expected, "byte-identical");
    assert_eq!(header(&headers, "X-Adds-Cache"), Some("miss"));
    assert_eq!(
        header(&headers, "X-Adds-Sha256"),
        Some(sha256(src.as_bytes()).hex().as_str())
    );
    server.stop();
}

#[test]
fn repeated_request_is_served_from_cache_byte_identically() {
    let server = spawn_server(2);
    let src = adds_serve::corpus::find("orth_row_scale").unwrap().source;

    let (s1, h1, b1) = http(server.addr(), "POST", "/v1/analyze", src.as_bytes());
    let (s2, h2, b2) = http(server.addr(), "POST", "/v1/analyze", src.as_bytes());
    assert_eq!((s1, s2), (200, 200));
    assert_eq!(b1, b2, "same bytes in, byte-identical report out");
    assert_eq!(header(&h1, "X-Adds-Cache"), Some("miss"));
    assert_eq!(header(&h2, "X-Adds-Cache"), Some("hit"));

    let state = server.state();
    let stats = state.service.stats();
    assert_eq!(stats.get(&stats.misses), 1, "computed once");
    assert_eq!(stats.get(&stats.hits), 1, "second request hit");
    server.stop();
}

#[test]
fn dependent_stage_reuses_upstream_artifacts() {
    // The tentpole property, observed over real HTTP: a warm
    // `parallelize` after an `analyze` of the same bytes re-parses and
    // re-checks nothing — it starts from the cached analysis artifacts.
    use adds_serve::sha::sha256;
    let server = spawn_server(2);
    let src = adds_serve::corpus::find("barnes_hut").unwrap().source;
    let digest = sha256(src.as_bytes());

    let (s1, _, _) = http(server.addr(), "POST", "/v1/analyze", src.as_bytes());
    assert_eq!(s1, 200);
    let state = server.state();
    let db = state.service.db();
    use adds_query::QueryKind;
    assert_eq!(db.computes(QueryKind::Parsed, &digest), 1);
    assert_eq!(db.computes(QueryKind::Typed, &digest), 1);
    assert_eq!(db.computes(QueryKind::Analyzed, &digest), 1);

    let (s2, h2, _) = http(server.addr(), "POST", "/v1/parallelize", src.as_bytes());
    assert_eq!(s2, 200);
    assert_eq!(
        header(&h2, "X-Adds-Cache"),
        Some("miss"),
        "different document"
    );
    assert_eq!(db.computes(QueryKind::Parsed, &digest), 1, "no re-parse");
    assert_eq!(db.computes(QueryKind::Typed, &digest), 1, "no re-check");
    assert_eq!(
        db.computes(QueryKind::Analyzed, &digest),
        1,
        "no re-analysis"
    );
    assert_eq!(db.computes(QueryKind::Transformed, &digest), 1);
    server.stop();
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let server = spawn_server(2);
    let src = adds_serve::corpus::find("list_scale_adds").unwrap().source;
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut conn = BufReader::new(stream);

    // Several requests over the same socket; persistence is the default,
    // and an explicit Connection: keep-alive is honored the same way.
    for i in 0..5 {
        let (status, headers, body) =
            http_keepalive(&mut conn, "POST", "/v1/analyze", src.as_bytes(), false);
        assert_eq!(status, 200, "request {i}");
        assert_eq!(header(&headers, "Connection"), Some("keep-alive"));
        assert!(!body.is_empty());
    }
    let (status, headers, _) = http_keepalive(&mut conn, "GET", "/healthz", b"", false);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "Connection"), Some("keep-alive"));

    // An explicit close ends the conversation: response says close, then
    // EOF.
    let (status, headers, _) = http_keepalive(&mut conn, "GET", "/healthz", b"", true);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "Connection"), Some("close"));
    let mut rest = Vec::new();
    conn.read_to_end(&mut rest).expect("EOF after close");
    assert!(rest.is_empty());

    // All of it was served by one worker pass over one socket; the cache
    // saw one miss and the rest hits.
    let state = server.state();
    let stats = state.service.stats();
    assert_eq!(stats.get(&stats.misses), 1);
    assert_eq!(stats.get(&stats.hits), 4);
    server.stop();
}

#[test]
fn persistent_connections_are_the_default() {
    let server = spawn_server(1);

    // HTTP/1.1 with no Connection header: the server answers keep-alive
    // and the same socket serves further requests.
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut conn = BufReader::new(stream);
    for i in 0..3 {
        let req = "GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n";
        conn.get_mut().write_all(req.as_bytes()).expect("write");
        let (status, headers, body) = read_response(&mut conn);
        assert_eq!(status, 200, "request {i}");
        assert_eq!(header(&headers, "Connection"), Some("keep-alive"));
        assert_eq!(body, b"ok\n");
    }
    drop(conn);

    // HTTP/1.0 with no Connection header: exactly one response, then EOF.
    let mut conn = BufReader::new(TcpStream::connect(server.addr()).expect("connect"));
    let req = "GET /healthz HTTP/1.0\r\nHost: t\r\n\r\n";
    conn.get_mut().write_all(req.as_bytes()).expect("write");
    let (status, headers, _) = read_response(&mut conn);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "Connection"), Some("close"));
    let mut rest = Vec::new();
    conn.read_to_end(&mut rest).expect("EOF after HTTP/1.0");
    assert!(rest.is_empty());

    // HTTP/1.0 opting into keep-alive is still honored.
    let mut conn = BufReader::new(TcpStream::connect(server.addr()).expect("connect"));
    let req = "GET /healthz HTTP/1.0\r\nHost: t\r\nConnection: keep-alive\r\n\r\n";
    conn.get_mut().write_all(req.as_bytes()).expect("write");
    let (status, headers, _) = read_response(&mut conn);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "Connection"), Some("keep-alive"));
    conn.get_mut().write_all(req.as_bytes()).expect("write");
    let (status, _, _) = read_response(&mut conn);
    assert_eq!(status, 200, "socket stayed usable");
    server.stop();
}

#[test]
fn pipelined_keep_alive_requests_all_get_answered() {
    // Two requests written back-to-back before reading anything (legal
    // HTTP/1.1 pipelining): the server's per-connection reader must not
    // drop the read-ahead containing request 2.
    let server = spawn_server(1);
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut conn = BufReader::new(stream);
    let one =
        "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\nContent-Length: 0\r\n\r\n";
    conn.get_mut()
        .write_all(format!("{one}{one}").as_bytes())
        .expect("write both");
    let mut ok = 0;
    for _ in 0..2 {
        let mut status_line = String::new();
        conn.read_line(&mut status_line).expect("status");
        assert!(status_line.contains("200"), "{status_line}");
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            conn.read_line(&mut line).expect("header");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(": ") {
                if k.eq_ignore_ascii_case("content-length") {
                    content_length = v.parse().expect("length");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        conn.read_exact(&mut body).expect("body");
        ok += 1;
    }
    assert_eq!(ok, 2, "both pipelined responses arrive");
    server.stop();
}

#[test]
fn keep_alive_honors_the_per_connection_request_cap() {
    let server = spawn_server(1);
    let mut conn = BufReader::new(TcpStream::connect(server.addr()).expect("connect"));
    for i in 1..=KEEPALIVE_MAX_REQUESTS {
        let (status, headers, _) = http_keepalive(&mut conn, "GET", "/healthz", b"", false);
        assert_eq!(status, 200, "request {i}");
        let expect = if i < KEEPALIVE_MAX_REQUESTS {
            "keep-alive"
        } else {
            "close"
        };
        assert_eq!(
            header(&headers, "Connection"),
            Some(expect),
            "request {i} of {KEEPALIVE_MAX_REQUESTS}"
        );
    }
    let mut rest = Vec::new();
    conn.read_to_end(&mut rest).expect("EOF at cap");
    assert!(rest.is_empty());
    server.stop();
}

#[test]
fn batch_request_runs_many_stages_through_one_session() {
    let server = spawn_server(2);
    let src = adds_serve::corpus::find("list_scale_adds").unwrap().source;
    let body = format!(
        r#"{{"items": [
            {{"stage": "analyze", "program": "list_scale_adds"}},
            {{"stage": "parallelize", "program": "list_scale_adds"}},
            {{"stage": "check", "source": {src_json}, "name": "inline.il"}},
            {{"stage": "analyze", "program": "list_scale_adds"}}
        ]}}"#,
        src_json = Json::str(src).compact(),
    );
    let (status, _, resp) = http(server.addr(), "POST", "/v1/batch", body.as_bytes());
    assert_eq!(status, 200);
    let doc = Json::parse(&String::from_utf8_lossy(&resp)).expect("valid batch response");
    assert_eq!(doc.get("schema").unwrap().as_str(), Some("adds.batch/v1"));
    assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
    let results = doc.get("results").unwrap().as_arr().unwrap();
    assert_eq!(results.len(), 4);
    assert_eq!(
        results[0].get("name").unwrap().as_str(),
        Some("list_scale_adds")
    );
    assert_eq!(results[0].get("cache").unwrap().as_str(), Some("miss"));
    assert_eq!(
        results[3].get("cache").unwrap().as_str(),
        Some("hit"),
        "repeated item served from cache"
    );
    assert_eq!(results[2].get("name").unwrap().as_str(), Some("inline.il"));
    // The embedded doc is the same document the single endpoint emits.
    let inner = results[0].get("doc").unwrap();
    assert_eq!(
        inner.get("schema").unwrap().as_str(),
        Some("adds.analyze/v2")
    );

    // The items shared one session: corpus source and inline source are
    // the same bytes, so the parse happened once for them.
    let state = server.state();
    use adds_query::QueryKind;
    let digest = sha256(src.as_bytes());
    assert_eq!(state.service.db().computes(QueryKind::Parsed, &digest), 1);

    // Malformed bodies are a 400, not a crash.
    let (status, _, _) = http(server.addr(), "POST", "/v1/batch", b"{nope");
    assert_eq!(status, 400);
    let (status, _, _) = http(server.addr(), "POST", "/v1/batch", b"{\"items\": 3}");
    assert_eq!(status, 400);

    // A batch may carry only a few `run` items (each can be heavy and
    // the batch runs synchronously on one worker).
    let run_item = r#"{"stage": "run", "program": "barnes_hut"}"#;
    let too_many = format!(r#"{{"items": [{}]}}"#, [run_item; 5].join(","));
    let (status, _, resp) = http(server.addr(), "POST", "/v1/batch", too_many.as_bytes());
    assert_eq!(status, 400);
    assert!(String::from_utf8_lossy(&resp).contains("run"));

    // Item-level failures embed an error and flip `ok`.
    let (status, _, resp) = http(
        server.addr(),
        "POST",
        "/v1/batch",
        br#"{"items": [{"stage": "analyze", "program": "no_such_program"}]}"#,
    );
    assert_eq!(status, 200);
    let doc = Json::parse(&String::from_utf8_lossy(&resp)).expect("valid");
    assert_eq!(doc.get("ok").unwrap().as_bool(), Some(false));
    let results = doc.get("results").unwrap().as_arr().unwrap();
    assert!(results[0].get("error").unwrap().as_str().is_some());
    server.stop();
}

#[test]
fn report_lookup_round_trips_and_misses_cleanly() {
    let server = spawn_server(2);
    let src = adds_serve::corpus::find("list_sum").unwrap().source;
    let sha = sha256(src.as_bytes()).hex();

    // Not computed yet: 404 with a pointer to the POST endpoint.
    let (status, _, body) = http(server.addr(), "GET", &format!("/v1/report/{sha}"), b"");
    assert_eq!(status, 404);
    assert!(String::from_utf8_lossy(&body).contains("/v1/analyze"));

    let (_, _, posted) = http(server.addr(), "POST", "/v1/analyze", src.as_bytes());
    let (status, headers, looked_up) =
        http(server.addr(), "GET", &format!("/v1/report/{sha}"), b"");
    assert_eq!(status, 200);
    assert_eq!(looked_up, posted, "lookup returns the cached document");
    assert_eq!(header(&headers, "X-Adds-Cache"), Some("hit"));

    // A different stage for the same bytes is a different cache entry.
    let (status, _, _) = http(
        server.addr(),
        "GET",
        &format!("/v1/report/{sha}?stage=parallelize"),
        b"",
    );
    assert_eq!(status, 404);

    let (status, _, _) = http(server.addr(), "GET", "/v1/report/nothex", b"");
    assert_eq!(status, 400);
    server.stop();
}

#[test]
fn corpus_endpoints_serve_the_builtin_programs() {
    let server = spawn_server(2);
    let (status, _, body) = http(server.addr(), "GET", "/v1/corpus", b"");
    assert_eq!(status, 200);
    let listing = String::from_utf8_lossy(&body).into_owned();
    assert!(listing.contains("\"schema\": \"adds.corpus/v1\""));
    for e in adds_serve::corpus::CORPUS {
        assert!(listing.contains(e.name), "{} listed", e.name);
    }

    let (status, _, body) = http(server.addr(), "GET", "/v1/corpus/barnes_hut", b"");
    assert_eq!(status, 200);
    assert_eq!(
        String::from_utf8_lossy(&body),
        adds_serve::corpus::find("barnes_hut").unwrap().source
    );

    let (status, _, _) = http(server.addr(), "GET", "/v1/corpus/nope", b"");
    assert_eq!(status, 404);
    server.stop();
}

#[test]
fn bad_requests_are_4xx_not_crashes() {
    let server = spawn_server(2);
    let (status, _, _) = http(server.addr(), "POST", "/v1/analyze", b"");
    assert_eq!(status, 400, "empty body");
    let (status, _, _) = http(server.addr(), "POST", "/v1/analyze", &[0xff, 0xfe]);
    assert_eq!(status, 400, "invalid UTF-8");
    let (status, _, _) = http(
        server.addr(),
        "POST",
        "/v1/run?pes=zero",
        b"proc main() { }",
    );
    assert_eq!(status, 400, "bad run params");

    // A syntactically broken program is still a well-formed report
    // (ok=false with diagnostics), matching the CLI.
    let (status, _, body) = http(server.addr(), "POST", "/v1/analyze", b"type T {");
    assert_eq!(status, 200);
    let text = String::from_utf8_lossy(&body);
    assert!(text.contains("\"ok\": false"));
    assert!(text.contains("\"diagnostics\""));

    // A checkable program without a `simulate` entry can't `run`: 422.
    let src = adds_serve::corpus::find("list_sum").unwrap().source;
    let (status, _, body) = http(server.addr(), "POST", "/v1/run", src.as_bytes());
    assert_eq!(status, 422);
    assert!(String::from_utf8_lossy(&body).contains("simulate"));

    // The error message honors ?name= like the Ok path (the cached
    // canonical error names the program by its content hash).
    let (status, _, body) = http(
        server.addr(),
        "POST",
        "/v1/run?name=mylist.il",
        src.as_bytes(),
    );
    assert_eq!(status, 422);
    let text = String::from_utf8_lossy(&body);
    assert!(text.contains("mylist.il"), "{text}");
    assert!(!text.contains(&sha256(src.as_bytes()).hex()), "{text}");

    // Non-finite run parameters are rejected before they can poison the
    // cache.
    let bh = adds_serve::corpus::find("barnes_hut").unwrap().source;
    let (status, _, _) = http(server.addr(), "POST", "/v1/run?theta=NaN", bh.as_bytes());
    assert_eq!(status, 400, "NaN theta");
    let (status, _, _) = http(server.addr(), "POST", "/v1/run?dt=-1", bh.as_bytes());
    assert_eq!(status, 400, "negative dt");
    let (status, _, _) = http(
        server.addr(),
        "POST",
        "/v1/run?bodies=999999999",
        bh.as_bytes(),
    );
    assert_eq!(status, 400, "absurd bodies");

    // Ambiguous or unsupported framing is refused, not guessed at.
    let raw = |head: &str| {
        let mut conn = TcpStream::connect(server.addr()).expect("connect");
        conn.write_all(head.as_bytes()).expect("write");
        let mut resp = Vec::new();
        conn.read_to_end(&mut resp).expect("read");
        String::from_utf8_lossy(&resp).into_owned()
    };
    let dup =
        raw("GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\nContent-Length: 0\r\n\r\n");
    assert!(dup.starts_with("HTTP/1.1 400"), "duplicate CL: {dup}");
    let te = raw("GET /healthz HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n");
    assert!(te.starts_with("HTTP/1.1 400"), "transfer-encoding: {te}");
    server.stop();
}

#[test]
fn stats_document_shape_is_golden_on_a_fresh_server() {
    // The blocking engine keeps the `net` section deterministic (all
    // zeros): the reactor's poll-wakeup count depends on timing. The
    // reactor-mode `net` section is covered structurally in the
    // `reactor_parity` suite.
    let opts = ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        jobs: 1,
        engine: adds_serve::server::Engine::Blocking,
        ..ServeOptions::default()
    };
    let server = Server::bind(&opts).expect("bind").spawn().expect("spawn");
    let (status, _, body) = http(server.addr(), "GET", "/v1/stats", b"");
    assert_eq!(status, 200);
    // The full `adds.serve-stats/v3` document for one `/v1/stats` hit on
    // a fresh single-worker server: all counters zero except the stats
    // request itself and the requesting connection's own `open` gauge
    // (latency for the stats route records *after* the handler, so its
    // histogram is still empty here).
    // `REGEN_GOLDEN=1 cargo test -p adds-serve stats_document` rewrites it.
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/stats_fresh.json");
        std::fs::write(path, &body).expect("write golden");
    }
    let expected = include_str!("golden/stats_fresh.json");
    assert_eq!(String::from_utf8_lossy(&body), expected);
    server.stop();
}

#[test]
fn metrics_endpoint_serves_prometheus_text() {
    let server = spawn_server(1);
    // One analyze populates the request counter, its route latency
    // histogram, and the per-layer query duration histograms.
    let src = adds_serve::corpus::find("list_scale_adds").unwrap().source;
    let (status, _, _) = http(server.addr(), "POST", "/v1/analyze", src.as_bytes());
    assert_eq!(status, 200);
    let (status, headers, body) = http(server.addr(), "GET", "/v1/metrics", b"");
    assert_eq!(status, 200);
    assert!(header(&headers, "Content-Type")
        .unwrap_or_default()
        .starts_with("text/plain"));
    let text = String::from_utf8_lossy(&body);
    assert!(text.starts_with("# adds.metrics/v1\n"), "{text}");
    assert!(text.contains("adds_requests_total{route=\"analyze\"} 1"));
    assert!(text.contains("adds_requests_total{route=\"metrics\"} 1"));
    assert!(text.contains("adds_request_duration_us_count{route=\"analyze\"} 1"));
    assert!(text.contains("adds_query_computes_total{layer=\"parsed\"} 1"));
    assert!(text.contains("adds_query_duration_us_count{layer=\"analyzed\"} 1"));
    assert!(text.contains("adds_cache_misses_total 1"));
    assert!(text.contains("adds_connections_open 1"));
    // The analyze body was counted.
    assert!(text.contains(&format!("adds_request_body_bytes_total {}", src.len())));
    // Stats and metrics agree on the analyze latency count.
    let (_, _, stats) = http(server.addr(), "GET", "/v1/stats", b"");
    let doc = Json::parse(&String::from_utf8_lossy(&stats)).expect("stats JSON");
    let analyze = doc
        .get("latency")
        .and_then(|l| l.get("routes"))
        .and_then(|r| r.get("analyze"))
        .expect("latency.routes.analyze");
    assert_eq!(analyze.get("count").unwrap().as_usize(), Some(1));
    assert!(analyze.get("p50_us").unwrap().as_usize().unwrap() > 0);
    server.stop();
}

#[test]
fn trace_endpoint_returns_spans_when_tracing() {
    // Tracing state is process-global, so this test owns its whole
    // enable→serve→disable window.
    let opts = ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        jobs: 1,
        trace_path: Some("/dev/null".to_string()),
        ..ServeOptions::default()
    };
    let server = Server::bind(&opts).expect("bind").spawn().expect("spawn");
    let src = adds_serve::corpus::find("list_sum").unwrap().source;
    let (status, _, _) = http(server.addr(), "POST", "/v1/check", src.as_bytes());
    assert_eq!(status, 200);
    let (status, _, body) = http(server.addr(), "GET", "/v1/trace", b"");
    assert_eq!(status, 200);
    let text = String::from_utf8_lossy(&body);
    let doc = Json::parse(&text).expect("trace JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("adds.trace/v1")
    );
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("events");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    assert!(names.contains(&"serve.request"), "{names:?}");
    assert!(names.contains(&"serve.parse-body"), "{names:?}");
    assert!(names.contains(&"serve.execute"), "{names:?}");
    assert!(names.contains(&"serve.serialize"), "{names:?}");
    assert!(names.contains(&"query.typed"), "{names:?}");
    server.stop();
    adds_obs::trace::disable();
    adds_obs::trace::clear();
}

#[test]
fn bounded_server_cache_reports_evictions() {
    // A tiny capacity forces report-cache evictions; `/v1/stats` counts
    // them. (Capacity is approximate — per shard — so drive enough
    // distinct sources through to overflow any shard.)
    let opts = ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        jobs: 1,
        cache_capacity: 16, // one report per shard
        ..ServeOptions::default()
    };
    let server = Server::bind(&opts).expect("bind").spawn().expect("spawn");
    for i in 0..24 {
        let src = format!("type T{i} [X] {{ int v; }};");
        let (status, _, _) = http(server.addr(), "POST", "/v1/parse", src.as_bytes());
        assert_eq!(status, 200);
    }
    let state = server.state();
    let stats = state.service.stats();
    assert!(
        stats.get(&stats.evicted) > 0,
        "24 distinct sources through a 16-entry cache must evict"
    );
    // The artifact caches evict under the same cap and surface their own
    // counter in the `queries` section.
    let qs = state.service.query_stats();
    assert!(qs.get(&qs.evicted) > 0, "artifact caches evict too");
    let (_, _, body) = http(server.addr(), "GET", "/v1/stats", b"");
    let text = String::from_utf8_lossy(&body);
    assert_eq!(
        text.matches("\"evicted\"").count(),
        2,
        "both cache sections report evictions: {text}"
    );
    server.stop();
}

#[test]
fn single_flight_under_concurrent_identical_requests() {
    // Drive the cache directly with real threads: the first caller
    // computes (slowly), everyone else coalesces onto its flight.
    let cache: Arc<Cache<String>> = Arc::new(Cache::new(Arc::new(CacheStats::default())));
    let digest = sha256(b"the source");
    const THREADS: usize = 8;
    let start = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                start.wait();
                cache.get_or_compute(digest, "analyze/v2", || {
                    // Slow compute: give every other thread time to arrive
                    // and park on the flight.
                    std::thread::sleep(std::time::Duration::from_millis(150));
                    "the report".to_string()
                })
            })
        })
        .collect();
    let results: Vec<(Arc<String>, Outcome)> = handles
        .into_iter()
        .map(|h| h.join().expect("joins"))
        .collect();

    let misses = results.iter().filter(|(_, o)| *o == Outcome::Miss).count();
    assert_eq!(misses, 1, "exactly one computation");
    for (v, _) in &results {
        assert!(Arc::ptr_eq(v, &results[0].0), "everyone shares one Arc");
    }
    let stats = cache.stats();
    assert_eq!(stats.get(&stats.misses), 1);
    assert_eq!(
        stats.get(&stats.hits) + stats.get(&stats.coalesced),
        (THREADS - 1) as u64
    );
    assert_eq!(stats.get(&stats.in_flight), 0);
    assert_eq!(cache.len(), 1);
}

#[test]
fn single_flight_through_the_service_computes_once() {
    // Same property at the session level, with a real analysis as the
    // payload: concurrent identical requests share one canonical report.
    let svc = Arc::new(Service::new());
    let src = adds_serve::corpus::find("barnes_hut").unwrap().source;
    const THREADS: usize = 6;
    let start = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                start.wait();
                svc.analyze(src, false)
            })
        })
        .collect();
    let results: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("joins"))
        .collect();

    let stats = svc.stats();
    assert_eq!(stats.get(&stats.misses), 1, "one compute across threads");
    for out in &results {
        assert!(Arc::ptr_eq(&out.report, &results[0].report));
    }
    assert_eq!(svc.entries(), 1);
}

#[test]
fn concurrent_distinct_requests_spread_over_workers() {
    // Sanity: a multi-worker server answers interleaved distinct posts
    // correctly (each becomes its own cache entry).
    let server = spawn_server(4);
    let names: Vec<&str> = adds_serve::corpus::CORPUS.iter().map(|e| e.name).collect();
    let addr = server.addr();
    let handles: Vec<_> = names
        .iter()
        .map(|&name| {
            let src = adds_serve::corpus::find(name).unwrap().source;
            std::thread::spawn(move || http(addr, "POST", "/v1/check", src.as_bytes()))
        })
        .collect();
    for h in handles {
        let (status, _, _) = h.join().expect("joins");
        assert_eq!(status, 200);
    }
    let state = server.state();
    let stats = state.service.stats();
    assert_eq!(stats.get(&stats.misses), names.len() as u64);
    assert_eq!(state.service.entries(), names.len());
    server.stop();
}
