//! A minimal HTTP/1.1 subset over `std::net`: enough to read requests
//! (request line, headers, `Content-Length` body) and write responses,
//! with hard limits on header and body size.
//!
//! ## Connection lifetime
//!
//! HTTP/1.1 connections are **persistent by default**, per the spec: the
//! server answers `Connection: keep-alive` and reads the next request off
//! the same socket, up to a per-connection request cap
//! ([`KEEPALIVE_MAX_REQUESTS`]) and an idle timeout
//! ([`KEEPALIVE_IDLE_TIMEOUT`]) between requests. A client that sends
//! `Connection: close` (or speaks HTTP/1.0 without asking for
//! keep-alive) gets exactly one response followed by a close, so
//! close-mode clients and benches still get the one-shot framing by
//! asking for it. (Earlier revisions inverted this default to keep
//! read-to-EOF test clients working; those clients now frame responses by
//! `Content-Length`, so the spec default is back.)

use std::io::{BufRead, BufReader, Read, Write};

/// Largest accepted header block.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Largest accepted request body (IL sources are a few KB; batch
/// documents a few MB at most).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// Most requests served over one keep-alive connection before the server
/// forces a close (bounds per-connection resource pinning; clients
/// reconnect transparently).
pub const KEEPALIVE_MAX_REQUESTS: usize = 256;

/// How long an idle keep-alive connection may sit between requests before
/// the server drops it.
pub const KEEPALIVE_IDLE_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(5);

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Decoded path, without the query string.
    pub path: String,
    /// Query parameters, percent-decoded, in order of appearance.
    pub query: Vec<(String, String)>,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection may serve another request after this one:
    /// true for HTTP/1.1 unless the client sent `Connection: close`,
    /// false for HTTP/1.0 unless it sent `Connection: keep-alive`.
    pub keep_alive: bool,
}

impl Request {
    /// First value of query parameter `key`.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read (mapped to 4xx responses).
#[derive(Debug)]
pub enum BadRequest {
    /// Malformed request line or headers.
    Malformed(String),
    /// Header block or body over the size limits.
    TooLarge(String),
    /// Socket error mid-request.
    Io(std::io::Error),
    /// Clean close before any request byte (end of a keep-alive
    /// conversation, or a probe); not an error to report.
    Closed,
}

impl std::fmt::Display for BadRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BadRequest::Malformed(m) => write!(f, "malformed request: {m}"),
            BadRequest::TooLarge(m) => write!(f, "request too large: {m}"),
            BadRequest::Io(e) => write!(f, "io error: {e}"),
            BadRequest::Closed => write!(f, "connection closed"),
        }
    }
}

/// Read one request off a **persistent** buffered reader. The reader must
/// live as long as the connection: read-ahead from one request (e.g. a
/// pipelined next request) stays buffered for the next call instead of
/// being dropped with a per-request reader.
pub fn read_request<R: Read>(reader: &mut BufReader<R>) -> Result<Request, BadRequest> {
    let mut header_bytes = 0usize;
    let line = read_header_line(reader, &mut header_bytes, true)?;
    let line = line.trim_end();
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(BadRequest::Malformed(format!("request line `{line}`")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(BadRequest::Malformed(format!("version `{version}`")));
    }
    // Persistence follows the spec default for the protocol version;
    // an explicit Connection header below overrides it either way.
    let mut keep_alive = version != "HTTP/1.0";
    let (method, target) = (method.to_string(), target.to_string());

    let mut content_length: Option<usize> = None;
    loop {
        let h = read_header_line(reader, &mut header_bytes, false)?;
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                // Exactly one Content-Length: accepting duplicates
                // (last-wins) would let a front proxy and this parser
                // frame the same bytes differently — the CL.CL flavor of
                // the desync the transfer-encoding rejection below closes.
                if content_length.is_some() {
                    return Err(BadRequest::Malformed(
                        "duplicate content-length header".into(),
                    ));
                }
                content_length = Some(
                    value
                        .trim()
                        .parse()
                        .map_err(|_| BadRequest::Malformed(format!("content-length `{value}`")))?,
                );
            } else if name.eq_ignore_ascii_case("connection") {
                let value = value.trim();
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                // Only Content-Length framing is implemented. Silently
                // ignoring a chunked body would desync a keep-alive
                // connection (the chunk bytes would parse as the next
                // request) — request-smuggling territory behind a
                // coalescing proxy — so refuse it outright.
                return Err(BadRequest::Malformed(
                    "transfer-encoding is not supported; send a Content-Length body".into(),
                ));
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(BadRequest::TooLarge(format!(
            "body of {content_length} bytes"
        )));
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(BadRequest::Io)?;

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, parse_query(q)),
        None => (target.as_str(), Vec::new()),
    };
    Ok(Request {
        method,
        path: percent_decode(path),
        query,
        body,
        keep_alive,
    })
}

/// Read one `\n`-terminated line via `fill_buf`/`consume`, capping the
/// whole header block at [`MAX_HEADER_BYTES`] so a client streaming an
/// endless line cannot grow the buffer without bound. Clean EOF before
/// the first byte of a request line reads as [`BadRequest::Closed`] (the
/// client finished its keep-alive conversation); EOF anywhere else is a
/// malformed request.
fn read_header_line<R: Read>(
    reader: &mut BufReader<R>,
    used: &mut usize,
    request_line: bool,
) -> Result<String, BadRequest> {
    let mut line = Vec::new();
    loop {
        let (consumed, done) = {
            let chunk = reader.fill_buf().map_err(BadRequest::Io)?;
            if chunk.is_empty() {
                if request_line && line.is_empty() && *used == 0 {
                    return Err(BadRequest::Closed);
                }
                if request_line {
                    // Partial request line at EOF: report it like any
                    // other malformed first line.
                    break;
                }
                return Err(BadRequest::Malformed(
                    "connection closed mid-headers".into(),
                ));
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    line.extend_from_slice(&chunk[..=i]);
                    (i + 1, true)
                }
                None => {
                    line.extend_from_slice(chunk);
                    (chunk.len(), false)
                }
            }
        };
        reader.consume(consumed);
        *used += consumed;
        if *used >= MAX_HEADER_BYTES {
            return Err(BadRequest::TooLarge(
                if request_line {
                    "request line"
                } else {
                    "header block"
                }
                .into(),
            ));
        }
        if done {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&line).into_owned())
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect()
}

/// Decode `%XX` escapes and `+`-as-space; invalid escapes pass through.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A response about to be written.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (name, value).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A JSON error document `{"error": ...}`.
    pub fn error(status: u16, message: &str) -> Response {
        let doc = crate::json::Json::obj([("error", crate::json::Json::str(message))]);
        Response::json(status, doc.pretty())
    }

    /// Append a header.
    pub fn with_header(mut self, name: &str, value: String) -> Response {
        self.headers.push((name.to_string(), value));
        self
    }

    /// First value of an extra header (case-insensitive name match).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Reason phrases for the statuses the server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Serialize `resp` to wire bytes (head + body in one buffer). Both server
/// engines — the blocking worker pool and the event-driven reactor — emit
/// responses through this single function, which is what makes their
/// response bytes identical by construction.
pub fn serialize_response(resp: &Response, keep_alive: bool) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    )
    .into_bytes();
    for (name, value) in &resp.headers {
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&resp.body);
    out
}

/// Serialize and send `resp`. With `keep_alive` the connection header
/// invites the client to reuse the socket; otherwise it announces the
/// close that follows. Head and body go out as **one** write: the server
/// sets `TCP_NODELAY`, so a separate small head write would become its
/// own segment (and its own syscall) on every response.
pub fn write_response(
    stream: &mut impl Write,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let out = serialize_response(resp, keep_alive);
    stream.write_all(&out)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_percent_and_plus() {
        assert_eq!(percent_decode("a%2Fb+c"), "a/b c");
        assert_eq!(percent_decode("plain"), "plain");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("trunc%2"), "trunc%2");
    }

    #[test]
    fn parses_query_pairs() {
        let q = parse_query("name=%2Ftmp%2Fx.il&matrices&pes=2,4");
        assert_eq!(
            q,
            vec![
                ("name".to_string(), "/tmp/x.il".to_string()),
                ("matrices".to_string(), String::new()),
                ("pes".to_string(), "2,4".to_string()),
            ]
        );
    }
}
