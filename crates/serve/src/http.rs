//! A minimal HTTP/1.1 subset over `std::net`: enough to read one request
//! (request line, headers, `Content-Length` body) and write one response,
//! with hard limits on header and body size. Connections are
//! `Connection: close` — one request per connection keeps the server a
//! straight-line worker loop with no keep-alive bookkeeping. (curl, load
//! balancers, and the bench client all handle this fine; revisit if a
//! workload ever becomes connection-setup-bound.)

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted header block.
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Largest accepted request body (IL sources are a few KB).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Decoded path, without the query string.
    pub path: String,
    /// Query parameters, percent-decoded, in order of appearance.
    pub query: Vec<(String, String)>,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of query parameter `key`.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read (mapped to 4xx responses).
#[derive(Debug)]
pub enum BadRequest {
    /// Malformed request line or headers.
    Malformed(String),
    /// Header block or body over the size limits.
    TooLarge(String),
    /// Socket error mid-request.
    Io(std::io::Error),
}

impl std::fmt::Display for BadRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BadRequest::Malformed(m) => write!(f, "malformed request: {m}"),
            BadRequest::TooLarge(m) => write!(f, "request too large: {m}"),
            BadRequest::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

/// Read one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, BadRequest> {
    // The head is read through a `Take` so a client streaming an endless
    // request line (or header block) hits the cap instead of growing the
    // line buffer without bound; the limit is raised for the body below.
    let mut reader = BufReader::new(stream.take(MAX_HEADER_BYTES as u64));
    let mut header_bytes = 0usize;
    let mut line = String::new();
    reader.read_line(&mut line).map_err(BadRequest::Io)?;
    header_bytes += line.len();
    let line = line.trim_end();
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        if header_bytes >= MAX_HEADER_BYTES {
            return Err(BadRequest::TooLarge("request line".into()));
        }
        return Err(BadRequest::Malformed(format!("request line `{line}`")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(BadRequest::Malformed(format!("version `{version}`")));
    }
    let (method, target) = (method.to_string(), target.to_string());

    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        let n = reader.read_line(&mut h).map_err(BadRequest::Io)?;
        header_bytes += h.len();
        if header_bytes >= MAX_HEADER_BYTES {
            return Err(BadRequest::TooLarge("header block".into()));
        }
        if n == 0 {
            return Err(BadRequest::Malformed(
                "connection closed mid-headers".into(),
            ));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| BadRequest::Malformed(format!("content-length `{value}`")))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(BadRequest::TooLarge(format!(
            "body of {content_length} bytes"
        )));
    }

    // Allow the body through: the new limit covers the worst case where
    // none of it was read ahead into the BufReader yet.
    reader.get_mut().set_limit(content_length as u64);
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(BadRequest::Io)?;

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, parse_query(q)),
        None => (target.as_str(), Vec::new()),
    };
    Ok(Request {
        method,
        path: percent_decode(path),
        query,
        body,
    })
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect()
}

/// Decode `%XX` escapes and `+`-as-space; invalid escapes pass through.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A response about to be written.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (name, value).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A JSON error document `{"error": ...}`.
    pub fn error(status: u16, message: &str) -> Response {
        let doc = crate::json::Json::obj([("error", crate::json::Json::str(message))]);
        Response::json(status, doc.pretty())
    }

    /// Append a header.
    pub fn with_header(mut self, name: &str, value: String) -> Response {
        self.headers.push((name.to_string(), value));
        self
    }
}

/// Reason phrases for the statuses the server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        _ => "",
    }
}

/// Serialize and send `resp`; the connection closes afterwards.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    for (name, value) in &resp.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_percent_and_plus() {
        assert_eq!(percent_decode("a%2Fb+c"), "a/b c");
        assert_eq!(percent_decode("plain"), "plain");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("trunc%2"), "trunc%2");
    }

    #[test]
    fn parses_query_pairs() {
        let q = parse_query("name=%2Ftmp%2Fx.il&matrices&pes=2,4");
        assert_eq!(
            q,
            vec![
                ("name".to_string(), "/tmp/x.il".to_string()),
                ("matrices".to_string(), String::new()),
                ("pes".to_string(), "2,4".to_string()),
            ]
        );
    }
}
