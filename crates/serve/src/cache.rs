//! The sharded, single-flight, content-addressed report cache.
//!
//! ## Key contract
//!
//! A cache entry is addressed by `(sha256(source bytes), config
//! fingerprint)`. The fingerprint (see [`crate::service`]) encodes every
//! input that can change the report besides the source itself — the stage
//! and its schema version (`analyze/v2`), plus option flags (`+matrices`,
//! the `run` parameters). Reports deliberately contain *no* other inputs:
//! no timestamps, no hostnames, no request identity — so the same bytes
//! under the same fingerprint are guaranteed a byte-identical report, and
//! a cached answer is indistinguishable from a recompute. Display fields
//! (program name, origin) are restored per request *after* retrieval; the
//! cached canonical value always carries the content hash as its name.
//!
//! ## Single flight
//!
//! Concurrent requests for the same key compute the value once: the first
//! requester inserts an in-flight marker and computes; everyone else
//! blocks on the flight's condvar and receives the winner's `Arc`. If the
//! computing thread panics, the flight is marked failed and waiters retry
//! (one of them becomes the new computer), so a poisoned entry cannot
//! wedge the cache.
//!
//! Entries are never evicted: the corpus of distinct sources a server sees
//! is bounded by its clients' program set, and an entry is a few KB of
//! rendered report. (`/v1/stats` exposes the entry count so an operator
//! can watch it.)

use crate::sha::Digest;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Number of independent shards; keys spread by the first digest byte.
const SHARDS: usize = 16;

/// How a lookup was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The value was already cached.
    Hit,
    /// This request computed the value.
    Miss,
    /// Another in-flight request computed it; this one waited.
    Coalesced,
}

impl Outcome {
    /// Stable lowercase name (used in the `X-Adds-Cache` response header).
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Hit => "hit",
            Outcome::Miss => "miss",
            Outcome::Coalesced => "coalesced",
        }
    }
}

/// Monotonic cache counters, shared across caches of different value
/// types (the server aggregates its report and run caches into one set).
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Lookups answered from a completed entry.
    pub hits: AtomicU64,
    /// Lookups that computed the value.
    pub misses: AtomicU64,
    /// Lookups that waited on another request's computation.
    pub coalesced: AtomicU64,
    /// Computations currently running.
    pub in_flight: AtomicU64,
}

impl CacheStats {
    fn add(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot a counter.
    pub fn get(&self, counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// One in-flight computation: waiters sleep on `cv` until `state` leaves
/// `Running`.
struct Flight<V> {
    state: Mutex<FlightState<V>>,
    cv: Condvar,
}

enum FlightState<V> {
    Running,
    Done(Arc<V>),
    /// The computing thread panicked; waiters must retry.
    Failed,
}

enum Entry<V> {
    Ready(Arc<V>),
    Pending(Arc<Flight<V>>),
}

type Key = (Digest, String);

/// A sharded single-flight cache from `(content digest, fingerprint)` to
/// immutable values.
pub struct Cache<V> {
    shards: Vec<Mutex<HashMap<Key, Entry<V>>>>,
    stats: Arc<CacheStats>,
}

impl<V> Cache<V> {
    /// An empty cache recording into `stats`.
    pub fn new(stats: Arc<CacheStats>) -> Self {
        Cache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            stats,
        }
    }

    fn shard(&self, digest: &Digest) -> &Mutex<HashMap<Key, Entry<V>>> {
        &self.shards[digest.0[0] as usize % SHARDS]
    }

    /// Total entries across shards (completed + in flight).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard").len())
            .sum()
    }

    /// True when no entry has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shared counters.
    pub fn stats(&self) -> &Arc<CacheStats> {
        &self.stats
    }

    /// Fetch the value for `(digest, fingerprint)`, computing it with `f`
    /// on a miss. Concurrent calls with the same key compute once; the
    /// others block until the winner finishes and share its `Arc`.
    pub fn get_or_compute(
        &self,
        digest: Digest,
        fingerprint: &str,
        f: impl FnOnce() -> V,
    ) -> (Arc<V>, Outcome) {
        let key: Key = (digest, fingerprint.to_string());
        loop {
            let flight = {
                let mut map = self.shard(&digest).lock().expect("cache shard");
                match map.get(&key) {
                    Some(Entry::Ready(v)) => {
                        self.stats.add(&self.stats.hits);
                        return (Arc::clone(v), Outcome::Hit);
                    }
                    Some(Entry::Pending(fl)) => Some(Arc::clone(fl)),
                    None => {
                        let fl = Arc::new(Flight {
                            state: Mutex::new(FlightState::Running),
                            cv: Condvar::new(),
                        });
                        map.insert(key.clone(), Entry::Pending(Arc::clone(&fl)));
                        self.stats.add(&self.stats.misses);
                        None
                    }
                }
            };

            if let Some(fl) = flight {
                // Wait out the other request's computation.
                let mut st = fl.state.lock().expect("flight state");
                while matches!(*st, FlightState::Running) {
                    st = fl.cv.wait(st).expect("flight wait");
                }
                match &*st {
                    FlightState::Done(v) => {
                        self.stats.add(&self.stats.coalesced);
                        return (Arc::clone(v), Outcome::Coalesced);
                    }
                    // The computer panicked: retry from the top (this
                    // request may become the new computer).
                    FlightState::Failed => continue,
                    FlightState::Running => unreachable!("loop exits on non-Running"),
                }
            }

            // This request computes. The guard publishes failure (and
            // removes the pending entry) if `f` panics, so waiters retry
            // instead of hanging.
            self.stats.add(&self.stats.in_flight);
            let guard = FlightGuard {
                cache: self,
                key: &key,
            };
            let value = Arc::new(f());
            self.finish(&key, FlightState::Done(Arc::clone(&value)), true);
            std::mem::forget(guard);
            self.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
            return (value, Outcome::Miss);
        }
    }

    /// Look up a completed entry without computing.
    pub fn peek(&self, digest: &Digest, fingerprint: &str) -> Option<Arc<V>> {
        let key: Key = (*digest, fingerprint.to_string());
        let map = self.shard(digest).lock().expect("cache shard");
        match map.get(&key) {
            Some(Entry::Ready(v)) => Some(Arc::clone(v)),
            _ => None,
        }
    }

    /// Publish a flight's terminal state and wake waiters. With
    /// `keep: true` the entry becomes `Ready`; otherwise it is removed
    /// (failure path).
    fn finish(&self, key: &Key, terminal: FlightState<V>, keep: bool) {
        let mut map = self.shard(&key.0).lock().expect("cache shard");
        let Some(Entry::Pending(fl)) = (if keep {
            match &terminal {
                FlightState::Done(v) => map.insert(key.clone(), Entry::Ready(Arc::clone(v))),
                _ => unreachable!("keep implies Done"),
            }
        } else {
            map.remove(key)
        }) else {
            return;
        };
        drop(map);
        let mut st = fl.state.lock().expect("flight state");
        *st = terminal;
        fl.cv.notify_all();
    }
}

/// Removes a pending entry and fails its flight if the computing closure
/// unwinds; defused with `mem::forget` on success.
struct FlightGuard<'a, V> {
    cache: &'a Cache<V>,
    key: &'a Key,
}

impl<V> Drop for FlightGuard<'_, V> {
    fn drop(&mut self) {
        self.cache.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.cache.finish(self.key, FlightState::Failed, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha::sha256;

    fn cache() -> Cache<String> {
        Cache::new(Arc::new(CacheStats::default()))
    }

    #[test]
    fn hit_after_miss_returns_same_arc() {
        let c = cache();
        let d = sha256(b"source");
        let (v1, o1) = c.get_or_compute(d, "analyze/v2", || "report".to_string());
        let (v2, o2) = c.get_or_compute(d, "analyze/v2", || unreachable!("cached"));
        assert_eq!(o1, Outcome::Miss);
        assert_eq!(o2, Outcome::Hit);
        assert!(Arc::ptr_eq(&v1, &v2));
        assert_eq!(c.stats().get(&c.stats().hits), 1);
        assert_eq!(c.stats().get(&c.stats().misses), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn fingerprint_separates_entries() {
        let c = cache();
        let d = sha256(b"source");
        c.get_or_compute(d, "analyze/v2", || "a".to_string());
        let (v, o) = c.get_or_compute(d, "parallelize/v2", || "p".to_string());
        assert_eq!(o, Outcome::Miss);
        assert_eq!(*v, "p");
        assert_eq!(c.len(), 2);
        assert!(c.peek(&d, "analyze/v2").is_some());
        assert!(c.peek(&d, "check/v1").is_none());
    }

    #[test]
    fn panicking_compute_does_not_wedge() {
        let c = cache();
        let d = sha256(b"source");
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.get_or_compute(d, "analyze/v2", || -> String { panic!("boom") })
        }));
        assert!(r.is_err());
        assert_eq!(c.stats().get(&c.stats().in_flight), 0);
        // The key is free again and computable.
        let (v, o) = c.get_or_compute(d, "analyze/v2", || "ok".to_string());
        assert_eq!(o, Outcome::Miss);
        assert_eq!(*v, "ok");
    }
}
