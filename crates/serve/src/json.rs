//! Minimal JSON document model and serializer.
//!
//! The workspace has no network access to pull `serde`/`serde_json`, and the
//! CLI's reports are write-only, so this hand-rolled emitter is all that is
//! needed. Object keys keep insertion order, making the output byte-stable —
//! the property the golden tests rely on.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (emitted without a fraction).
    Int(i64),
    /// Unsigned integer (cycles counters exceed `i64` comfort zone).
    UInt(u64),
    /// Float (emitted via shortest-roundtrip `{}` formatting).
    Float(f64),
    /// String (escaped on write).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let mut s = format!("{f}");
                    // `{}` prints integral floats without a point; keep the
                    // value unambiguously a float.
                    if !s.contains(['.', 'e', 'E']) {
                        s.push_str(".0");
                    }
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience: a JSON array of strings.
pub fn str_arr<S: AsRef<str>>(items: impl IntoIterator<Item = S>) -> Json {
    Json::Arr(items.into_iter().map(|s| Json::str(s.as_ref())).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_nests() {
        let v = Json::obj([
            ("name", Json::str("say \"hi\"\nthere")),
            ("n", Json::Int(-3)),
            ("f", Json::Float(2.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("arr", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = v.pretty();
        assert!(s.contains("\"say \\\"hi\\\"\\nthere\""));
        assert!(s.contains("\"f\": 2.5"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn integral_floats_keep_a_point() {
        let s = Json::Float(3.0).pretty();
        assert_eq!(s, "3.0\n");
    }
}
