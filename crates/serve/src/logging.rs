//! Structured access logs: with `adds-cli serve --log`, the server emits
//! **one JSON line per request** on stdout. The shape is golden-tested
//! and byte-stable given the same inputs — fixed key order, no
//! timestamps beyond the duration — so log pipelines can parse it with a
//! one-line schema:
//!
//! ```json
//! {"method":"POST","path":"/v1/analyze","sha":"9c0b…","cache":"hit","status":200,"duration_us":412,"bytes_in":120}
//! ```
//!
//! `sha` is `null` and `cache` is `"bypass"` for requests that never
//! touch the cache (`/healthz`, corpus reads, 4xx rejections).
//! `bytes_in` is the request body length in bytes.

use crate::json::Json;

/// Render one access-log line (no trailing newline). `sha` is the
/// request body's content address and `cache` the `hit|miss|coalesced`
/// disposition when the route produced them (`bypass` otherwise).
pub fn access_line(
    method: &str,
    path: &str,
    sha: Option<&str>,
    cache: Option<&str>,
    status: u16,
    duration_us: u64,
    bytes_in: u64,
) -> String {
    let opt = |v: Option<&str>| v.map(Json::str).unwrap_or(Json::Null);
    Json::obj([
        ("method", Json::str(method)),
        ("path", Json::str(path)),
        ("sha", opt(sha)),
        ("cache", Json::str(cache.unwrap_or("bypass"))),
        ("status", Json::UInt(status as u64)),
        ("duration_us", Json::UInt(duration_us)),
        ("bytes_in", Json::UInt(bytes_in)),
    ])
    .compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_line_shape_is_golden() {
        assert_eq!(
            access_line(
                "POST",
                "/v1/analyze",
                Some("abc123"),
                Some("miss"),
                200,
                412,
                120
            ),
            r#"{"method":"POST","path":"/v1/analyze","sha":"abc123","cache":"miss","status":200,"duration_us":412,"bytes_in":120}"#
        );
        assert_eq!(
            access_line("GET", "/healthz", None, None, 200, 3, 0),
            r#"{"method":"GET","path":"/healthz","sha":null,"cache":"bypass","status":200,"duration_us":3,"bytes_in":0}"#
        );
    }

    #[test]
    fn access_line_is_parseable_json() {
        let line = access_line("GET", "/v1/stats", None, None, 200, 17, 0);
        let v = Json::parse(&line).expect("valid JSON");
        assert_eq!(v.get("path").unwrap().as_str(), Some("/v1/stats"));
        assert_eq!(v.get("status").unwrap().as_usize(), Some(200));
        assert_eq!(v.get("sha"), Some(&Json::Null));
        assert_eq!(v.get("cache").unwrap().as_str(), Some("bypass"));
        assert_eq!(v.get("bytes_in").unwrap().as_usize(), Some(0));
    }
}
