//! Input units for the batch frontends and the one-shot stage runner.
//!
//! The stage dispatch itself lives in the query session
//! (`adds_query::session`): a [`Stage`] names the derived document, a
//! typed `StageRequest` asks for it, and the session memoizes every layer
//! underneath. This module keeps the CLI-facing input model ([`InputUnit`])
//! and a convenience one-shot runner for tests and scripts.

pub use adds_query::session::Stage;

use crate::report::ProgramReport;
use crate::service::{Session, StageRequest};

/// One unit of work for the batch executor.
#[derive(Clone, Debug)]
pub struct InputUnit {
    /// Corpus name or file path.
    pub name: String,
    /// `"builtin"` or `"file"`.
    pub origin: &'static str,
    /// IL source text.
    pub source: String,
}

/// Run the selected pipeline `stage` over one program through a throwaway
/// session, restoring the unit's display name/origin. Equivalent to (and
/// byte-identical with) one CLI invocation over one file.
pub fn run_unit(unit: &InputUnit, stage: Stage, matrices: bool) -> ProgramReport {
    let session = Session::new();
    session
        .stage(&unit.source, StageRequest { stage, matrices })
        .named(&unit.name, unit.origin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adds::lang::programs;

    fn unit(name: &str, source: &str) -> InputUnit {
        InputUnit {
            name: name.into(),
            origin: "builtin",
            source: source.into(),
        }
    }

    #[test]
    fn analyze_list_scale_adds_parallelizes() {
        let u = unit("list_scale_adds", programs::LIST_SCALE_ADDS);
        let r = run_unit(&u, Stage::Analyze, false);
        assert!(r.ok);
        assert_eq!(r.name, "list_scale_adds");
        assert_eq!(r.origin, "builtin");
        let a = r.analyze.unwrap();
        let scale = a.functions.iter().find(|f| f.name == "scale").unwrap();
        assert_eq!(scale.loops.len(), 1);
        assert!(scale.loops[0].parallelizable, "{:?}", scale.loops[0]);
        assert_eq!(scale.loops[0].pattern.as_deref(), Some("p via next"));
    }

    #[test]
    fn analyze_plain_list_stays_sequential() {
        let u = unit("list_scale_plain", programs::LIST_SCALE_PLAIN);
        let r = run_unit(&u, Stage::Analyze, false);
        assert!(r.ok);
        let a = r.analyze.unwrap();
        let scale = a.functions.iter().find(|f| f.name == "scale").unwrap();
        assert!(!scale.loops[0].parallelizable);
        assert!(!scale.loops[0].reasons.is_empty());
    }

    #[test]
    fn parse_reports_roundtrip() {
        let u = unit("barnes_hut", programs::BARNES_HUT);
        let r = run_unit(&u, Stage::Parse, false);
        assert!(r.ok);
        assert!(r.parse.unwrap().roundtrip_stable);
    }

    #[test]
    fn parallelize_barnes_hut_reports_decisions() {
        let u = unit("barnes_hut", programs::BARNES_HUT);
        let r = run_unit(&u, Stage::Parallelize, false);
        assert!(r.ok);
        let t = r.transform.unwrap();
        assert!(t.reparses);
        let funcs: Vec<&str> = t.parallelized.iter().map(|d| d.func.as_str()).collect();
        assert!(
            funcs.contains(&"bhl1") && funcs.contains(&"bhl2"),
            "{funcs:?}"
        );
        assert!(t.source.contains("parfor"));
    }

    #[test]
    fn bad_source_fails_with_diagnostics() {
        let u = unit("broken", "type T {");
        let r = run_unit(&u, Stage::Analyze, false);
        assert!(!r.ok);
        assert!(!r.diagnostics.is_empty());
    }

    #[test]
    fn matrices_flag_adds_exit_matrix() {
        let u = unit("list_scale_adds", programs::LIST_SCALE_ADDS);
        let r = run_unit(&u, Stage::Analyze, true);
        let a = r.analyze.unwrap();
        assert!(a.functions[0].exit_matrix.is_some());
    }
}
