//! Per-program pipeline stages behind the `parse`, `check`, `analyze`, and
//! `parallelize` subcommands and the matching `POST /v1/*` endpoints. Each
//! stage builds on the previous one: analyze implies check implies parse.

use crate::report::{
    AnalyzeReport, CheckReport, FnReport, LoopEffectsReport, LoopReport, ParseReport,
    ProgramReport, ReasonEntry, SkippedLoop, TransformDecision, TransformReport, TypeSummary,
};
use adds::lang::adds::AddsFieldKind;
use adds::lang::ast::Direction;
use adds::lang::source::line_col;

/// A report-producing pipeline stage. (The CLI's `run`/`ladder`/`serve`
/// subcommands have their own drivers; only these four flow through
/// [`run_unit`] and the report cache.)
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Parse and pretty-print, verifying the print→parse round trip.
    Parse,
    /// ADDS well-formedness + type check.
    Check,
    /// Path-matrix analysis with per-loop dependence verdicts.
    Analyze,
    /// Strip-mine parallelizable loops and emit transformed source.
    Parallelize,
}

impl Stage {
    /// The stage's lowercase name, as used in CLI commands and URL paths.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Check => "check",
            Stage::Analyze => "analyze",
            Stage::Parallelize => "parallelize",
        }
    }

    /// The JSON `schema` tag of the stage's report document.
    pub fn schema(self) -> &'static str {
        match self {
            Stage::Parse => "adds.parse/v1",
            Stage::Check => "adds.check/v1",
            Stage::Analyze => "adds.analyze/v2",
            Stage::Parallelize => "adds.parallelize/v2",
        }
    }
}

/// One unit of work for the batch executor.
#[derive(Clone, Debug)]
pub struct InputUnit {
    /// Corpus name or file path.
    pub name: String,
    /// `"builtin"` or `"file"`.
    pub origin: &'static str,
    /// IL source text.
    pub source: String,
}

/// Run the selected pipeline `stage` over one program.
pub fn run_unit(unit: &InputUnit, stage: Stage, matrices: bool) -> ProgramReport {
    let mut report = ProgramReport {
        name: unit.name.clone(),
        origin: unit.origin,
        ok: true,
        diagnostics: Vec::new(),
        parse: None,
        check: None,
        analyze: None,
        transform: None,
    };

    // Stage 1: parse (every command needs it; only `parse` reports it).
    let program = match adds::lang::parse_program(&unit.source) {
        Ok(p) => p,
        Err(d) => {
            return ProgramReport::failed(
                unit.name.clone(),
                unit.origin,
                vec![d.render(&unit.source)],
            )
        }
    };
    if stage == Stage::Parse {
        let pretty = adds::lang::pretty::program(&program);
        let roundtrip_stable = match adds::lang::parse_program(&pretty) {
            Ok(p2) => adds::lang::pretty::program(&p2) == pretty,
            Err(_) => false,
        };
        report.parse = Some(ParseReport {
            pretty,
            roundtrip_stable,
        });
        report.ok = roundtrip_stable;
        return report;
    }

    // Stage 2: ADDS well-formedness + type check.
    let tp = match adds::lang::check_source(&unit.source) {
        Ok(tp) => tp,
        Err(d) => {
            return ProgramReport::failed(
                unit.name.clone(),
                unit.origin,
                vec![d.render(&unit.source)],
            )
        }
    };
    if stage == Stage::Check {
        report.check = Some(check_report(&tp));
        return report;
    }

    // Stage 3: path-matrix analysis + dependence verdicts.
    let compiled = match adds::core::compile(&unit.source) {
        Ok(c) => c,
        Err(d) => {
            return ProgramReport::failed(
                unit.name.clone(),
                unit.origin,
                vec![d.render(&unit.source)],
            )
        }
    };
    if stage == Stage::Analyze {
        report.analyze = Some(analyze_report(&unit.source, &compiled, matrices));
        return report;
    }

    // Stage 4: the strip-mining transformation.
    debug_assert_eq!(stage, Stage::Parallelize);
    let (prog, decisions) = adds::core::transform::stripmine::strip_mine_program(
        &compiled.tp,
        &compiled.summaries,
        &compiled.analyses,
    );
    let source = adds::lang::pretty::program(&prog);
    let reparses = adds::lang::check_source(&source).is_ok();
    let mut parallelized = Vec::new();
    let mut skipped = Vec::new();
    for d in &decisions {
        for p in &d.parallelized {
            parallelized.push(TransformDecision {
                func: d.func.name.clone(),
                var: p.var.clone(),
                field: p.field.clone(),
            });
        }
        for s in &d.skipped {
            skipped.push(SkippedLoop {
                func: d.func.name.clone(),
                line: line_col(&unit.source, s.span.start).line,
                reasons: crate::report::dedup_reasons(s.reasons.iter().map(ReasonEntry::of)),
            });
        }
    }
    report.ok = reparses;
    report.transform = Some(TransformReport {
        parallelized,
        skipped,
        source,
        reparses,
    });
    report
}

fn check_report(tp: &adds::lang::TypedProgram) -> CheckReport {
    let mut types = Vec::new();
    for t in tp.program.types.iter() {
        let Some(a) = tp.adds.get(&t.name) else {
            continue;
        };
        let mut routes = Vec::new();
        for f in &a.fields {
            if let AddsFieldKind::Pointer {
                target,
                array_len,
                route,
            } = &f.kind
            {
                let arr = array_len.map(|n| format!("[{n}]")).unwrap_or_default();
                let unique = if route.unique { "uniquely " } else { "" };
                let dir = match route.direction {
                    Direction::Forward => "forward",
                    Direction::Backward => "backward",
                    Direction::Unknown => "unknown-direction",
                };
                routes.push(format!(
                    "{}{arr}: {target}* {unique}{dir} along {}",
                    f.name, a.dims[route.dim]
                ));
            }
        }
        types.push(TypeSummary {
            name: a.name.clone(),
            dims: a.dims.clone(),
            routes,
        });
    }
    CheckReport {
        types,
        functions: tp.program.funcs.iter().map(|f| f.name.clone()).collect(),
    }
}

fn analyze_report(src: &str, compiled: &adds::core::Compiled, matrices: bool) -> AnalyzeReport {
    let mut functions = Vec::new();
    for f in &compiled.tp.program.funcs {
        let Some(an) = compiled.analysis(&f.name) else {
            continue;
        };
        let checks = adds::core::check_function(&compiled.tp, &compiled.summaries, an, &f.name);
        let loops = checks
            .iter()
            .map(|c| LoopReport {
                line: line_col(src, c.span.start).line,
                pattern: c
                    .pattern
                    .as_ref()
                    .map(|p| format!("{} via {}", p.var, p.field)),
                parallelizable: c.parallelizable,
                reasons: crate::report::dedup_reasons(c.reasons.iter().map(ReasonEntry::of)),
                effects: c.effects.as_ref().map(|fx| {
                    let (writes, reads, ptr_writes, advances) =
                        adds::core::depend::render_effects(fx);
                    LoopEffectsReport {
                        writes,
                        reads,
                        ptr_writes,
                        advances,
                    }
                }),
            })
            .collect();
        functions.push(FnReport {
            name: f.name.clone(),
            loops,
            events: an.events.iter().map(|e| e.to_string()).collect(),
            exit_valid: an.exit.fully_valid(),
            exit_matrix: matrices.then(|| an.exit.pm.render().lines().map(String::from).collect()),
        });
    }
    AnalyzeReport { functions }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(name: &str, source: &str) -> InputUnit {
        InputUnit {
            name: name.into(),
            origin: "builtin",
            source: source.into(),
        }
    }

    #[test]
    fn analyze_list_scale_adds_parallelizes() {
        let u = unit("list_scale_adds", adds::lang::programs::LIST_SCALE_ADDS);
        let r = run_unit(&u, Stage::Analyze, false);
        assert!(r.ok);
        let a = r.analyze.unwrap();
        let scale = a.functions.iter().find(|f| f.name == "scale").unwrap();
        assert_eq!(scale.loops.len(), 1);
        assert!(scale.loops[0].parallelizable, "{:?}", scale.loops[0]);
        assert_eq!(scale.loops[0].pattern.as_deref(), Some("p via next"));
    }

    #[test]
    fn analyze_plain_list_stays_sequential() {
        let u = unit("list_scale_plain", adds::lang::programs::LIST_SCALE_PLAIN);
        let r = run_unit(&u, Stage::Analyze, false);
        assert!(r.ok);
        let a = r.analyze.unwrap();
        let scale = a.functions.iter().find(|f| f.name == "scale").unwrap();
        assert!(!scale.loops[0].parallelizable);
        assert!(!scale.loops[0].reasons.is_empty());
    }

    #[test]
    fn parse_reports_roundtrip() {
        let u = unit("barnes_hut", adds::lang::programs::BARNES_HUT);
        let r = run_unit(&u, Stage::Parse, false);
        assert!(r.ok);
        assert!(r.parse.unwrap().roundtrip_stable);
    }

    #[test]
    fn parallelize_barnes_hut_reports_decisions() {
        let u = unit("barnes_hut", adds::lang::programs::BARNES_HUT);
        let r = run_unit(&u, Stage::Parallelize, false);
        assert!(r.ok);
        let t = r.transform.unwrap();
        assert!(t.reparses);
        let funcs: Vec<&str> = t.parallelized.iter().map(|d| d.func.as_str()).collect();
        assert!(
            funcs.contains(&"bhl1") && funcs.contains(&"bhl2"),
            "{funcs:?}"
        );
        assert!(t.source.contains("parfor"));
    }

    #[test]
    fn bad_source_fails_with_diagnostics() {
        let u = unit("broken", "type T {");
        let r = run_unit(&u, Stage::Analyze, false);
        assert!(!r.ok);
        assert!(!r.diagnostics.is_empty());
    }

    #[test]
    fn matrices_flag_adds_exit_matrix() {
        let u = unit("list_scale_adds", adds::lang::programs::LIST_SCALE_ADDS);
        let r = run_unit(&u, Stage::Analyze, true);
        let a = r.analyze.unwrap();
        assert!(a.functions[0].exit_matrix.is_some());
    }
}
