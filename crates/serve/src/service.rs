//! The cache-backed executor shared by the HTTP server and the CLI — now
//! the demand-driven [`Session`] from `adds-query` — and the
//! **fingerprint contract** it memoizes under.
//!
//! Every cached value is addressed by `(sha256(source), fingerprint)`.
//! Fingerprints compose: each query's fingerprint embeds its own
//! `layer/version` token plus the fingerprints of the queries it depends
//! on (the full table lives in `adds_query::fingerprint`), so bumping one
//! layer's schema invalidates that layer and everything downstream —
//! upstream entries stay warm. Report-level versions are still derived
//! from the report schema tags (`adds.analyze/v2` → `analyze/v2`), so a
//! report schema bump self-invalidates with no second table to edit.
//!
//! Cached canonical reports carry the content hash as their display name;
//! [`Session::stage_doc`] restores the caller's name/origin on the way
//! out, which is what makes a served report byte-identical to the CLI's.

pub use adds_query::fingerprint::{run_fingerprint, stage_fingerprint};
pub use adds_query::session::{
    RunOutcome, RunRequest, Session, SessionConfig, StageOutcome, StageRequest,
};

/// Back-compat name: the server's executor *is* the shared query session.
pub type Service = Session;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Stage;
    use adds_query::runner::RunOptions;

    #[test]
    fn stage_fingerprints_compose_and_stay_schema_tagged() {
        assert_eq!(
            stage_fingerprint(Stage::Analyze, false),
            "analyze/v2(effects/v1(analyzed/v1(typed/v1(parsed/v1))))"
        );
        assert_eq!(
            stage_fingerprint(Stage::Analyze, true),
            "analyze/v2(effects/v1(analyzed/v1(typed/v1(parsed/v1))))+matrices"
        );
        assert_eq!(
            stage_fingerprint(Stage::Parse, false),
            "parse/v1(roundtrip/v1(parsed/v1))"
        );
        // `--matrices` only affects analyze reports.
        assert_eq!(
            stage_fingerprint(Stage::Check, true),
            stage_fingerprint(Stage::Check, false)
        );
        assert!(run_fingerprint(&RunOptions::default())
            .ends_with(":pes=4;bodies=64;steps=2;theta=0.7;dt=0.001"));
        assert!(run_fingerprint(&RunOptions::default()).starts_with("run/v1("));
    }
}
