//! The cache-backed stage executor shared by the HTTP server and the CLI
//! batch mode, and the **config-fingerprint contract**.
//!
//! Every cached value is addressed by `(sha256(source), fingerprint)`.
//! The fingerprint strings are part of the service's stable surface:
//!
//! | request | fingerprint |
//! |---|---|
//! | `parse` | `parse/v1` |
//! | `check` | `check/v1` |
//! | `analyze` | `analyze/v2` |
//! | `analyze --matrices` | `analyze/v2+matrices` |
//! | `parallelize` | `parallelize/v2` |
//! | `run` | `run/v1:pes=2,4;bodies=64;steps=2;theta=0.7;dt=0.001` |
//!
//! The version segment tracks the report schema tag (`adds.analyze/v2`
//! etc.), so a schema bump automatically invalidates old entries. Cached
//! canonical reports carry the content hash as their display name;
//! [`Service::stage_doc`] restores the caller's name/origin on the way
//! out, which is what makes a served report byte-identical to the CLI's.

use crate::cache::{Cache, CacheStats, Outcome};
use crate::json::Json;
use crate::pipeline::{run_unit, InputUnit, Stage};
use crate::report::ProgramReport;
use crate::runner::{self, RunOptions, RunReport};
use crate::sha::{sha256, Digest};
use std::sync::Arc;

/// The fingerprint of a stage request (see the module table). Derived
/// from [`Stage::schema`] (`adds.analyze/v2` → `analyze/v2`), so bumping
/// a schema tag invalidates cached entries with no second table to edit.
pub fn stage_fingerprint(stage: Stage, matrices: bool) -> String {
    let schema = stage.schema();
    let version = schema.strip_prefix("adds.").unwrap_or(schema);
    if matrices && stage == Stage::Analyze {
        format!("{version}+matrices")
    } else {
        version.to_string()
    }
}

/// The fingerprint of a `run` request: the schema version (derived from
/// [`runner::RUN_SCHEMA`]) plus every parameter that shapes the
/// simulation.
pub fn run_fingerprint(opts: &RunOptions) -> String {
    let version = runner::RUN_SCHEMA
        .strip_prefix("adds.")
        .unwrap_or(runner::RUN_SCHEMA);
    let pes: Vec<String> = opts.pes.iter().map(|p| p.to_string()).collect();
    format!(
        "{version}:pes={};bodies={};steps={};theta={};dt={}",
        pes.join(","),
        opts.bodies,
        opts.steps,
        opts.theta,
        opts.dt
    )
}

/// Run `stage` over `source` through `cache`: compute on miss, share the
/// canonical report otherwise. The canonical report's display name is the
/// content hash (origin `"file"`); callers restore their own name.
pub fn cached_stage_report(
    cache: &Cache<ProgramReport>,
    stage: Stage,
    matrices: bool,
    source: &str,
) -> (Digest, Arc<ProgramReport>, Outcome) {
    let digest = sha256(source.as_bytes());
    let fingerprint = stage_fingerprint(stage, matrices);
    let (report, outcome) = cache.get_or_compute(digest, &fingerprint, || {
        let unit = InputUnit {
            name: digest.hex(),
            origin: "file",
            source: source.to_string(),
        };
        run_unit(&unit, stage, matrices)
    });
    (digest, report, outcome)
}

/// The server's state: one report cache, one run cache, shared counters.
pub struct Service {
    reports: Cache<ProgramReport>,
    runs: Cache<Result<RunReport, String>>,
    stats: Arc<CacheStats>,
}

impl Default for Service {
    fn default() -> Self {
        Self::new()
    }
}

impl Service {
    /// A fresh service with empty caches.
    pub fn new() -> Self {
        let stats = Arc::new(CacheStats::default());
        Service {
            reports: Cache::new(Arc::clone(&stats)),
            runs: Cache::new(Arc::clone(&stats)),
            stats,
        }
    }

    /// The shared cache counters.
    pub fn stats(&self) -> &Arc<CacheStats> {
        &self.stats
    }

    /// Completed entries across both caches.
    pub fn entries(&self) -> usize {
        self.reports.len() + self.runs.len()
    }

    /// Run a stage request against the cache.
    pub fn stage_report(
        &self,
        stage: Stage,
        matrices: bool,
        source: &str,
    ) -> (Digest, Arc<ProgramReport>, Outcome) {
        cached_stage_report(&self.reports, stage, matrices, source)
    }

    /// Run a `run` request against the cache. Errors (e.g. a program
    /// without a `simulate` entry) are cached too: the same bytes produce
    /// the same error.
    pub fn run_report(
        &self,
        source: &str,
        opts: &RunOptions,
    ) -> (Digest, Arc<Result<RunReport, String>>, Outcome) {
        let digest = sha256(source.as_bytes());
        let fingerprint = run_fingerprint(opts);
        let (result, outcome) = cache_run(&self.runs, digest, &fingerprint, source, opts);
        (digest, result, outcome)
    }

    /// Look up an already-computed stage report by content hash, without
    /// computing (`GET /v1/report/{sha256}`).
    pub fn lookup_report(
        &self,
        digest: &Digest,
        stage: Stage,
        matrices: bool,
    ) -> Option<Arc<ProgramReport>> {
        self.reports
            .peek(digest, &stage_fingerprint(stage, matrices))
    }

    /// The full response document for a stage request: the CLI's
    /// `{schema, ok, programs}` wrapper around the canonical report with
    /// the caller's display name restored. With `name = <digest hex>` and
    /// origin `"file"` this is byte-identical to
    /// `adds-cli <stage> <file> --format json`. The report is only cloned
    /// when a rename is actually requested — the default (canonical-name)
    /// path is a pure render, keeping warm cache hits cheap.
    pub fn stage_doc(stage: Stage, report: &ProgramReport, name: Option<&str>) -> Json {
        let program = match name {
            Some(n) if n != report.name => {
                let mut r = report.clone();
                r.name = n.to_string();
                r.to_json()
            }
            _ => report.to_json(),
        };
        Json::obj([
            ("schema", Json::str(stage.schema())),
            ("ok", Json::Bool(report.ok)),
            ("programs", Json::Arr(vec![program])),
        ])
    }

    /// The full response document for a `run` request, with the caller's
    /// display name restored (clones only when renaming).
    pub fn run_doc(report: &RunReport, name: Option<&str>) -> Json {
        match name {
            Some(n) if n != report.program => {
                let mut r = report.clone();
                r.program = n.to_string();
                runner::to_json(&r)
            }
            _ => runner::to_json(report),
        }
    }
}

fn cache_run(
    cache: &Cache<Result<RunReport, String>>,
    digest: Digest,
    fingerprint: &str,
    source: &str,
    opts: &RunOptions,
) -> (Arc<Result<RunReport, String>>, Outcome) {
    cache.get_or_compute(digest, fingerprint, || {
        runner::run_workload(&digest.hex(), source, opts)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adds::lang::programs;

    #[test]
    fn stage_fingerprints_are_stable() {
        assert_eq!(stage_fingerprint(Stage::Analyze, false), "analyze/v2");
        assert_eq!(
            stage_fingerprint(Stage::Analyze, true),
            "analyze/v2+matrices"
        );
        assert_eq!(stage_fingerprint(Stage::Parse, false), "parse/v1");
        // `--matrices` only affects analyze reports.
        assert_eq!(stage_fingerprint(Stage::Check, true), "check/v1");
        assert_eq!(
            run_fingerprint(&RunOptions::default()),
            "run/v1:pes=4;bodies=64;steps=2;theta=0.7;dt=0.001"
        );
    }

    #[test]
    fn repeated_stage_request_hits_cache() {
        let svc = Service::new();
        let src = programs::LIST_SCALE_ADDS;
        let (d1, r1, o1) = svc.stage_report(Stage::Analyze, false, src);
        let (d2, r2, o2) = svc.stage_report(Stage::Analyze, false, src);
        assert_eq!(d1, d2);
        assert_eq!(o1, Outcome::Miss);
        assert_eq!(o2, Outcome::Hit);
        assert!(Arc::ptr_eq(&r1, &r2));
        assert_eq!(svc.entries(), 1);
        assert!(svc.lookup_report(&d1, Stage::Analyze, false).is_some());
        assert!(svc.lookup_report(&d1, Stage::Parallelize, false).is_none());
    }

    #[test]
    fn canonical_report_is_named_by_content_hash() {
        let svc = Service::new();
        let src = programs::LIST_SUM;
        let (digest, report, _) = svc.stage_report(Stage::Check, false, src);
        assert_eq!(report.name, digest.hex());
        assert_eq!(report.origin, "file");
        // Renaming through the doc wrapper restores the caller's view.
        let doc = Service::stage_doc(Stage::Check, &report, Some("lists/sum.il")).pretty();
        assert!(doc.contains("\"program\": \"lists/sum.il\""));
        assert!(doc.contains("\"schema\": \"adds.check/v1\""));
    }

    #[test]
    fn run_errors_are_cached() {
        let svc = Service::new();
        let src = programs::LIST_SUM; // no `simulate` entry
        let (_, r1, o1) = svc.run_report(src, &RunOptions::default());
        let (_, r2, o2) = svc.run_report(src, &RunOptions::default());
        assert!(r1.is_err());
        assert_eq!(o1, Outcome::Miss);
        assert_eq!(o2, Outcome::Hit);
        assert!(Arc::ptr_eq(&r1, &r2));
    }
}
