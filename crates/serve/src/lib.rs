//! # adds-serve — the ADDS pipeline as a long-running service
//!
//! This crate is the HTTP face of the demand-driven analysis session in
//! `adds-query`, with no dependencies beyond `std` (the build environment
//! is offline):
//!
//! * [`cache`] / [`json`] / [`report`] / [`runner`] / [`sha`] — re-exports
//!   of the shared query-layer model, so existing `adds_serve::` paths
//!   keep working: the report model is byte-stable and identical between
//!   the CLI and the server because both render through the same session.
//! * [`pipeline`] — the CLI's input units and the one-shot stage runner,
//!   now thin wrappers over a [`service::Session`].
//! * [`service`] — the session re-export plus the fingerprint contract
//!   (see `adds_query::fingerprint` for the composed per-query table).
//! * [`http`] — a minimal HTTP/1.1 request reader / response writer over
//!   `std::net`, with opt-in keep-alive.
//! * [`logging`] — the structured access-log line (`serve --log`).
//! * [`server`] — the `adds-cli serve` engine: a `TcpListener` accept loop
//!   fanned out over a fixed worker pool, routing
//!   `POST /v1/{analyze,parallelize,run,check,parse,batch}`,
//!   `GET /v1/report/{sha256}`, `GET /v1/corpus[/{name}]`,
//!   `GET /v1/stats`, `GET /v1/metrics` (Prometheus text),
//!   `GET /v1/trace` (Chrome `trace_event` JSON, with `--trace`), and
//!   `GET /healthz`.
//!
//! The wire format *is* the CLI report format: `POST /v1/analyze` with a
//! source body answers with a document byte-identical to
//! `adds-cli analyze` on the same bytes (given the same display name), so
//! goldens, scripts, and dashboards can consume either interchangeably.
//! And because every endpoint runs over one shared session, a
//! `parallelize` request after an `analyze` of the same bytes reuses the
//! parse/typecheck/analysis artifacts instead of recomputing them.

#![warn(missing_docs)]

pub use adds_query::cache;
pub use adds_query::json;
pub use adds_query::report;
pub use adds_query::runner;
pub use adds_query::sha;

pub mod corpus;
pub mod http;
pub mod logging;
pub mod pipeline;
pub mod server;
pub mod service;
