//! # adds-serve — the ADDS pipeline as a long-running service
//!
//! This crate turns the per-invocation CLI pipeline into an
//! analysis-as-a-service layer, with no dependencies beyond `std` (the
//! build environment is offline):
//!
//! * [`json`] / [`report`] / [`pipeline`] / [`runner`] / [`corpus`] — the
//!   report model and stage drivers, moved here from `adds-cli` so both
//!   the CLI and the server render the *same* byte-stable documents. A
//!   report depends only on the source bytes and the stage options, never
//!   on who asked.
//! * [`sha`] — a self-contained SHA-256, the content address of every
//!   source.
//! * [`cache`] — a sharded, single-flight, content-hash report cache:
//!   keyed by `(sha256(source), config fingerprint)`, concurrent identical
//!   requests compute once and everyone else waits for the winner.
//! * [`service`] — the cache-backed stage executor shared by the server
//!   and the CLI batch mode, plus the config-fingerprint contract.
//! * [`http`] — a minimal HTTP/1.1 request reader / response writer over
//!   `std::net`.
//! * [`server`] — the `adds-cli serve` engine: a `TcpListener` accept loop
//!   fanned out over a fixed worker pool, routing
//!   `POST /v1/{analyze,parallelize,run,check,parse}`,
//!   `GET /v1/report/{sha256}`, `GET /v1/corpus[/{name}]`,
//!   `GET /v1/stats`, and `GET /healthz`.
//!
//! The wire format *is* the CLI report format: `POST /v1/analyze` with a
//! source body answers with a document byte-identical to
//! `adds-cli analyze` on the same bytes (given the same display name), so
//! goldens, scripts, and dashboards can consume either interchangeably.

#![warn(missing_docs)]

pub mod cache;
pub mod corpus;
pub mod http;
pub mod json;
pub mod pipeline;
pub mod report;
pub mod runner;
pub mod server;
pub mod service;
pub mod sha;
