//! The built-in program corpus: every IL example the workspace embeds,
//! addressable by name from the command line.

use adds::lang::programs as lp;

/// One corpus entry.
#[derive(Clone, Copy, Debug)]
pub struct CorpusEntry {
    /// Stable CLI name.
    pub name: &'static str,
    /// IL source.
    pub source: &'static str,
    /// One-line description for `--list`.
    pub about: &'static str,
}

/// The paper programs from `adds_lang::programs`, in a stable order.
pub static CORPUS: &[CorpusEntry] = &[
    CorpusEntry {
        name: "list_scale_plain",
        source: lp::LIST_SCALE_PLAIN,
        about: "§3.3.2 one-way list scaling, no ADDS declaration (conservative)",
    },
    CorpusEntry {
        name: "list_scale_adds",
        source: lp::LIST_SCALE_ADDS,
        about: "§3.3.2 one-way list scaling with the ADDS declaration",
    },
    CorpusEntry {
        name: "subtree_move",
        source: lp::SUBTREE_MOVE,
        about: "§3.3.1 binary-tree subtree move (temporary sharing)",
    },
    CorpusEntry {
        name: "orth_row_scale",
        source: lp::ORTH_ROW_SCALE,
        about: "§3.1.4 orthogonal-list sparse matrix, row-walk scaling",
    },
    CorpusEntry {
        name: "octree_decl",
        source: lp::OCTREE_DECL,
        about: "§4.3.1 octree declaration (types only)",
    },
    CorpusEntry {
        name: "barnes_hut",
        source: lp::BARNES_HUT,
        about: "§4 full Barnes-Hut tree-code with the BHL1/BHL2 loops",
    },
    CorpusEntry {
        name: "list_sum",
        source: lp::LIST_SUM,
        about: "one-way list summation (function-return form)",
    },
];

/// Look up a corpus entry by CLI name.
pub fn find(name: &str) -> Option<&'static CorpusEntry> {
    CORPUS.iter().find(|e| e.name == name)
}

/// Render the `--list` table.
pub fn list_table() -> String {
    let mut out = String::from("built-in corpus programs:\n");
    for e in CORPUS {
        out.push_str(&format!("  {:<18} {}\n", e.name, e.about));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_resolvable() {
        for e in CORPUS {
            assert!(std::ptr::eq(find(e.name).unwrap(), e));
        }
        let mut names: Vec<_> = CORPUS.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CORPUS.len());
    }

    #[test]
    fn every_corpus_program_typechecks() {
        for e in CORPUS {
            adds::lang::check_source(e.source)
                .unwrap_or_else(|d| panic!("{} fails to typecheck: {d}", e.name));
        }
    }
}
