//! The `adds-cli serve` engine: the `/v1` API over [`crate::http`] into
//! one shared, demand-driven [`Service`] session, behind either of two
//! connection engines:
//!
//! * [`Engine::Reactor`] (default) — the event-driven core from
//!   [`adds_net`]: one nonblocking `poll(2)` loop owns every socket, an
//!   explicit connection budget answers overload with `503 Retry-After`,
//!   a timer wheel enforces read/idle deadlines (slow-loris defense), and
//!   parsed requests are executed on the `--jobs` worker pool. Scales to
//!   tens of thousands of keep-alive connections.
//! * [`Engine::Blocking`] — the original thread-per-connection accept
//!   loop over a fixed worker pool; one worker per in-flight connection.
//!
//! Both engines route through [`ServerState::handle`] and serialize through
//! [`crate::http::serialize_response`], so responses are **byte-identical**
//! between them (pinned by the `reactor_parity` tests).
//!
//! ## Endpoints
//!
//! | method + path | body | response |
//! |---|---|---|
//! | `POST /v1/analyze` | IL source | `adds.analyze/v2` document |
//! | `POST /v1/parallelize` | IL source | `adds.parallelize/v2` document |
//! | `POST /v1/check` | IL source | `adds.check/v1` document |
//! | `POST /v1/parse` | IL source | `adds.parse/v1` document |
//! | `POST /v1/run` | IL source | `adds.run/v1` document |
//! | `POST /v1/batch` | `adds.batch/v1` request | `adds.batch/v1` results |
//! | `GET /v1/report/{sha256}` | — | cached stage document or 404 |
//! | `GET /v1/corpus` | — | built-in program list |
//! | `GET /v1/corpus/{name}` | — | built-in program source (text) |
//! | `GET /v1/stats` | — | `adds.serve-stats/v4` counters + latency |
//! | `GET /v1/metrics` | — | Prometheus text (`adds.metrics/v1`) |
//! | `GET /v1/trace` | — | `adds.trace/v1` buffered spans (needs `--trace`) |
//! | `GET /healthz` | — | `ok` |
//!
//! `POST` endpoints accept `?name=NAME` to set the report's display name
//! (default: the body's sha256), `analyze` accepts `&matrices=1`, and
//! `run` accepts `&pes=2,4&bodies=64&steps=2&theta=0.7&dt=0.001`.
//! `GET /v1/report/{sha}` accepts `?stage=analyze|parallelize|check|parse`
//! (default `analyze`), `&matrices=1`, and `&name=`. Responses to cacheable
//! requests carry `X-Adds-Sha256` (the content address for later
//! `/v1/report` fetches) and `X-Adds-Cache: hit|miss|coalesced|disk`
//! (`disk`: answered from the `--store` persistent tier, byte-identical
//! to a recompute).
//!
//! ## `POST /v1/batch`
//!
//! One request, many stage/run items, all through the same session — so
//! an `analyze` item warms every artifact a later `parallelize` item of
//! the same source needs:
//!
//! ```json
//! {"items": [
//!   {"stage": "analyze", "program": "barnes_hut", "matrices": false},
//!   {"stage": "parallelize", "program": "barnes_hut"},
//!   {"stage": "check", "source": "type T ...", "name": "inline.il"},
//!   {"stage": "run", "program": "barnes_hut", "pes": [2, 4], "bodies": 32}
//! ]}
//! ```
//!
//! Each item names either a built-in `program` or carries inline
//! `source`. The response (`adds.batch/v1`) holds one result per item in
//! order: `{name, sha256, cache, ok, doc}` — `doc` being byte-identical
//! to the matching single-request document — or `{error}` for items that
//! could not run.
//!
//! Connections are persistent by default (HTTP/1.1 keep-alive) unless the
//! client sends `Connection: close`; see [`crate::http`]. With `--log`,
//! every request emits one structured JSON line ([`crate::logging`]) on
//! stdout.

use crate::corpus;
use crate::http::{
    read_request, serialize_response, write_response, BadRequest, Request, Response,
    KEEPALIVE_IDLE_TIMEOUT, KEEPALIVE_MAX_REQUESTS, MAX_BODY_BYTES, MAX_HEADER_BYTES,
};
use crate::json::Json;
use crate::logging;
use crate::pipeline::Stage;
use crate::runner::RunOptions;
use crate::service::{RunRequest, Service, SessionConfig, StageRequest};
use crate::sha::Digest;
use adds_net::reactor::{Framed, Protocol, Reactor, ReactorOptions, Reply, StopHandle};
use adds_net::stats::NetStats;
use adds_obs::metrics::{prom_counter, prom_gauge, prom_histogram, Counter, Gauge, Histogram};
use adds_obs::trace;
use adds_query::QueryKind;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which connection engine drives the sockets. Responses are
/// byte-identical between the two; only concurrency behavior differs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Engine {
    /// Event-driven: one `poll(2)` reactor thread owns every connection,
    /// requests execute on the worker pool ([`adds_net`]).
    #[default]
    Reactor,
    /// Thread-per-connection over a fixed worker pool (the pre-reactor
    /// engine, kept for A/B comparison and as the parity oracle).
    Blocking,
}

impl Engine {
    /// Stable label (stats documents, CLI).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Reactor => "reactor",
            Engine::Blocking => "blocking",
        }
    }

    /// Parse a CLI value.
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "reactor" => Some(Engine::Reactor),
            "blocking" => Some(Engine::Blocking),
            _ => None,
        }
    }
}

/// Default connection budget for the reactor engine.
pub const DEFAULT_MAX_CONNECTIONS: usize = 10_240;

/// Default deadline for reading one full request (slow-loris bound).
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Bind address, e.g. `127.0.0.1:8199` (port 0 picks an ephemeral one).
    pub addr: String,
    /// Worker budget (0 = one per core): HTTP worker threads, and the
    /// session's parallel fan-out width (batch items, per-function
    /// effects, per-PE runs). Only affects wall-clock — responses are
    /// byte-identical at every value.
    pub jobs: usize,
    /// Per-cache entry bound (0 = unbounded) with CLOCK eviction.
    pub cache_capacity: usize,
    /// Emit one structured JSON access-log line per request on stdout.
    pub log: bool,
    /// Record metrics (latency histograms, gauges) and, when tracing is
    /// on, spans. Default `true`; the bench driver's "bare" mode turns it
    /// off to measure instrumentation overhead.
    pub instrument: bool,
    /// Write a Chrome `trace_event` JSON file here on shutdown
    /// (`serve --trace out.json`); enables span recording.
    pub trace_path: Option<String>,
    /// Persistent store directory (`serve --store DIR`): report/run cache
    /// values survive restarts in an append-only, checksummed segment
    /// store. A background thread commits the write-behind buffer every
    /// [`COMMIT_INTERVAL`]; shutdown commits once more.
    pub store_dir: Option<String>,
    /// Connection engine (`--engine reactor|blocking`).
    pub engine: Engine,
    /// Reactor connection budget: accepts beyond it are answered with
    /// `503` + `Retry-After` and counted (`adds_net_rejected_total`)
    /// instead of piling into the accept queue. Ignored by the blocking
    /// engine (its budget is its thread count).
    pub max_connections: usize,
    /// Reactor deadline for reading one full request, from accept (or the
    /// first byte after an idle gap) to the last body byte — the
    /// slow-loris bound. A dribbling client cannot extend it.
    pub read_timeout: Duration,
    /// Reactor idle keep-alive timeout between requests (the blocking
    /// engine's [`KEEPALIVE_IDLE_TIMEOUT`] is the same default).
    pub idle_timeout: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:8199".to_string(),
            jobs: 0,
            cache_capacity: 0,
            log: false,
            instrument: true,
            trace_path: None,
            store_dir: None,
            engine: Engine::Reactor,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            read_timeout: DEFAULT_READ_TIMEOUT,
            idle_timeout: KEEPALIVE_IDLE_TIMEOUT,
        }
    }
}

/// Per-endpoint request counters (monotonic, relaxed).
#[derive(Debug, Default)]
pub struct RequestStats {
    /// `POST /v1/analyze`
    pub analyze: AtomicU64,
    /// `POST /v1/parallelize`
    pub parallelize: AtomicU64,
    /// `POST /v1/run`
    pub run: AtomicU64,
    /// `POST /v1/check`
    pub check: AtomicU64,
    /// `POST /v1/parse`
    pub parse: AtomicU64,
    /// `POST /v1/batch`
    pub batch: AtomicU64,
    /// `GET /v1/report/{sha}`
    pub report: AtomicU64,
    /// `GET /v1/corpus[/{name}]`
    pub corpus: AtomicU64,
    /// `GET /v1/stats`
    pub stats: AtomicU64,
    /// `GET /healthz`
    pub healthz: AtomicU64,
    /// `GET /v1/metrics`
    pub metrics: AtomicU64,
    /// `GET /v1/trace`
    pub trace: AtomicU64,
    /// Anything else (404s, bad methods, unreadable requests).
    pub other: AtomicU64,
}

/// Route classification for per-route metrics — one variant per
/// `/v1/stats` request counter, dense so histograms index by it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
#[allow(missing_docs)] // names mirror the RequestStats fields 1:1
pub enum Route {
    Analyze,
    Parallelize,
    Run,
    Check,
    Parse,
    Batch,
    Report,
    Corpus,
    Stats,
    Healthz,
    Metrics,
    Trace,
    Other,
}

impl Route {
    /// Number of routes (the histogram array length).
    pub const COUNT: usize = 13;

    /// Every route, in declaration order (`as usize` indexes this).
    pub const ALL: &'static [Route] = &[
        Route::Analyze,
        Route::Parallelize,
        Route::Run,
        Route::Check,
        Route::Parse,
        Route::Batch,
        Route::Report,
        Route::Corpus,
        Route::Stats,
        Route::Healthz,
        Route::Metrics,
        Route::Trace,
        Route::Other,
    ];

    /// Stable metric label (matches the `/v1/stats` request keys).
    pub fn name(self) -> &'static str {
        match self {
            Route::Analyze => "analyze",
            Route::Parallelize => "parallelize",
            Route::Run => "run",
            Route::Check => "check",
            Route::Parse => "parse",
            Route::Batch => "batch",
            Route::Report => "report",
            Route::Corpus => "corpus",
            Route::Stats => "stats",
            Route::Healthz => "healthz",
            Route::Metrics => "metrics",
            Route::Trace => "trace",
            Route::Other => "other",
        }
    }

    /// Classify a request the same way [`ServerState::handle`] routes it.
    pub fn classify(method: &str, path: &str) -> Route {
        match (method, path) {
            ("GET", "/healthz") => Route::Healthz,
            ("GET", "/v1/stats") => Route::Stats,
            ("GET", "/v1/metrics") => Route::Metrics,
            ("GET", "/v1/trace") => Route::Trace,
            ("GET", p) if p == "/v1/corpus" || p.starts_with("/v1/corpus/") => Route::Corpus,
            ("GET", p) if p.starts_with("/v1/report/") => Route::Report,
            ("POST", "/v1/analyze") => Route::Analyze,
            ("POST", "/v1/parallelize") => Route::Parallelize,
            ("POST", "/v1/run") => Route::Run,
            ("POST", "/v1/check") => Route::Check,
            ("POST", "/v1/parse") => Route::Parse,
            ("POST", "/v1/batch") => Route::Batch,
            _ => Route::Other,
        }
    }
}

/// Per-route latency histograms plus connection gauges — the
/// `GET /v1/metrics` backing store. All lock-free.
pub struct ServeMetrics {
    /// Request latency (µs) per route, indexed by `Route as usize`.
    pub route_latency: [Histogram; Route::COUNT],
    /// Total request body bytes read.
    pub bytes_in: Counter,
    /// Connections currently open.
    pub open_connections: Gauge,
    /// Connections currently parked in (or serving) keep-alive reuse.
    pub keepalive_connections: Gauge,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics {
            route_latency: std::array::from_fn(|_| Histogram::new()),
            bytes_in: Counter::new(),
            open_connections: Gauge::new(),
            keepalive_connections: Gauge::new(),
        }
    }
}

/// The shared server state: the session-backed [`Service`] plus request
/// counters. Routing lives here so tests can drive it without sockets.
pub struct ServerState {
    /// The demand-driven stage/run executor.
    pub service: Service,
    /// Per-endpoint counters surfaced by `/v1/stats`.
    pub requests: RequestStats,
    /// Latency histograms and connection gauges (`/v1/metrics`).
    pub metrics: ServeMetrics,
    /// Emit access-log lines (`serve --log`).
    pub log_requests: bool,
    /// Record latency/gauges and (when tracing) spans; off in the bench
    /// driver's bare mode.
    pub instrument: bool,
    /// Event-loop counters (`/v1/stats` `net` section, `adds_net_*`
    /// metrics). All-zero under the blocking engine.
    pub net: Arc<NetStats>,
    /// Which engine is serving (labels the stats document).
    pub engine: Engine,
}

impl Default for ServerState {
    fn default() -> Self {
        ServerState {
            service: Service::default(),
            requests: RequestStats::default(),
            metrics: ServeMetrics::default(),
            log_requests: false,
            instrument: true,
            net: Arc::new(NetStats::default()),
            engine: Engine::default(),
        }
    }
}

/// Most items accepted in one `/v1/batch` request.
const MAX_BATCH_ITEMS: usize = 256;

/// Most `run` items per batch. A batch executes synchronously on one
/// worker, and a single `run` item may legitimately sit near the per-run
/// parameter caps — letting 256 of them ride one request would multiply
/// the "don't tie the worker up indefinitely" bound by 256. Clients
/// wanting more runs issue separate requests, which spread over the pool.
const MAX_BATCH_RUN_ITEMS: usize = 4;

impl ServerState {
    fn count(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Route one request to a response.
    pub fn handle(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => {
                self.count(&self.requests.healthz);
                Response::text(200, "ok\n")
            }
            ("GET", "/v1/stats") => {
                self.count(&self.requests.stats);
                Response::json(200, self.stats_doc().pretty())
            }
            ("GET", "/v1/metrics") => {
                self.count(&self.requests.metrics);
                Response::text(200, self.metrics_text())
            }
            ("GET", "/v1/trace") => {
                self.count(&self.requests.trace);
                if trace::enabled() {
                    Response::json(200, trace::render_current())
                } else {
                    Response::error(404, "tracing is off; start the server with --trace")
                }
            }
            ("GET", "/v1/corpus") => {
                self.count(&self.requests.corpus);
                let list = Json::obj([
                    ("schema", Json::str("adds.corpus/v1")),
                    (
                        "programs",
                        Json::Arr(
                            corpus::CORPUS
                                .iter()
                                .map(|e| {
                                    Json::obj([
                                        ("name", Json::str(e.name)),
                                        ("about", Json::str(e.about)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]);
                Response::json(200, list.pretty())
            }
            ("GET", path) if path.starts_with("/v1/corpus/") => {
                self.count(&self.requests.corpus);
                let name = &path["/v1/corpus/".len()..];
                match corpus::find(name) {
                    Some(e) => Response::text(200, e.source),
                    None => Response::error(404, &format!("unknown corpus program `{name}`")),
                }
            }
            ("GET", path) if path.starts_with("/v1/report/") => {
                self.count(&self.requests.report);
                self.report_lookup(&path["/v1/report/".len()..], req)
            }
            ("POST", "/v1/analyze") => {
                self.count(&self.requests.analyze);
                self.stage_request(Stage::Analyze, req)
            }
            ("POST", "/v1/parallelize") => {
                self.count(&self.requests.parallelize);
                self.stage_request(Stage::Parallelize, req)
            }
            ("POST", "/v1/check") => {
                self.count(&self.requests.check);
                self.stage_request(Stage::Check, req)
            }
            ("POST", "/v1/parse") => {
                self.count(&self.requests.parse);
                self.stage_request(Stage::Parse, req)
            }
            ("POST", "/v1/run") => {
                self.count(&self.requests.run);
                self.run_request(req)
            }
            ("POST", "/v1/batch") => {
                self.count(&self.requests.batch);
                self.batch_request(req)
            }
            (method, path) => {
                self.count(&self.requests.other);
                let known_path = matches!(
                    path,
                    "/healthz"
                        | "/v1/stats"
                        | "/v1/metrics"
                        | "/v1/trace"
                        | "/v1/corpus"
                        | "/v1/analyze"
                        | "/v1/parallelize"
                        | "/v1/check"
                        | "/v1/parse"
                        | "/v1/run"
                        | "/v1/batch"
                );
                if known_path {
                    Response::error(405, &format!("method {method} not allowed on {path}"))
                } else {
                    Response::error(404, &format!("no route for {method} {path}"))
                }
            }
        }
    }

    /// The `/v1/stats` document (`adds.serve-stats/v5`): request-level
    /// cache counters, per-query-layer compute counters, per-endpoint
    /// request counts, latency quantiles (per route and per query layer,
    /// derived from the lock-free log₂ histograms), parallel-executor
    /// counters, connection gauges, event-loop counters, and the
    /// persistent store's counters. No timestamps — the document is a
    /// pure function of the counters, so tests can golden it. (`/v2`
    /// added `queries.dropped`, `latency`, and `connections` to the `/v1`
    /// shape; `/v3` added `parallel`; `/v4` added `cache.disk_hits` and
    /// the `store` section; `/v5` added the `net` section for the
    /// event-driven engine.)
    pub fn stats_doc(&self) -> Json {
        let cs = self.service.stats();
        let u = |a: &AtomicU64| Json::UInt(a.load(Ordering::Relaxed));
        Json::obj([
            ("schema", Json::str("adds.serve-stats/v5")),
            (
                "cache",
                Json::obj([
                    ("hits", u(&cs.hits)),
                    ("misses", u(&cs.misses)),
                    ("coalesced", u(&cs.coalesced)),
                    ("disk_hits", u(&cs.disk_hits)),
                    ("in_flight", u(&cs.in_flight)),
                    ("evicted", u(&cs.evicted)),
                    ("entries", Json::UInt(self.service.entries() as u64)),
                ]),
            ),
            (
                "queries",
                Json::Obj(
                    // Per-layer compute counts, then the artifact caches'
                    // own entry/hit/miss/eviction counters — with
                    // `--cache-cap`, the memory-heavy artifacts (typed
                    // programs, fixpoints, bytecode) evict here, not in
                    // the report-level `cache` section above.
                    self.service
                        .query_computes()
                        .into_iter()
                        .map(|(name, n)| (name.to_string(), Json::UInt(n)))
                        .chain({
                            let qs = self.service.query_stats();
                            [
                                (
                                    "entries".to_string(),
                                    Json::UInt(self.service.db().artifact_entries() as u64),
                                ),
                                ("hits".to_string(), u(&qs.hits)),
                                ("misses".to_string(), u(&qs.misses)),
                                ("evicted".to_string(), u(&qs.evicted)),
                                (
                                    "dropped".to_string(),
                                    Json::UInt(self.service.db().dropped_digest_entries()),
                                ),
                            ]
                        })
                        .collect(),
                ),
            ),
            (
                "requests",
                Json::obj([
                    ("analyze", u(&self.requests.analyze)),
                    ("parallelize", u(&self.requests.parallelize)),
                    ("run", u(&self.requests.run)),
                    ("check", u(&self.requests.check)),
                    ("parse", u(&self.requests.parse)),
                    ("batch", u(&self.requests.batch)),
                    ("report", u(&self.requests.report)),
                    ("corpus", u(&self.requests.corpus)),
                    ("stats", u(&self.requests.stats)),
                    ("healthz", u(&self.requests.healthz)),
                    ("metrics", u(&self.requests.metrics)),
                    ("trace", u(&self.requests.trace)),
                    ("other", u(&self.requests.other)),
                ]),
            ),
            (
                "latency",
                Json::obj([
                    (
                        "routes",
                        Json::Obj(
                            Route::ALL
                                .iter()
                                .map(|&r| {
                                    (
                                        r.name().to_string(),
                                        latency_summary(&self.metrics.route_latency[r as usize]),
                                    )
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "layers",
                        Json::Obj(
                            QueryKind::ALL
                                .iter()
                                .map(|&k| {
                                    (
                                        k.name().to_string(),
                                        latency_summary(self.service.db().layer_duration(k)),
                                    )
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            ("parallel", {
                let par = self.service.par_stats();
                let qs = self.service.query_stats();
                let ut = par.utilization();
                Json::obj([
                    // The *configured* budget (0 = one per core), not
                    // the resolved count: the document must stay a
                    // pure function of the counters, host-independent,
                    // so the golden test can pin it.
                    ("jobs", Json::UInt(self.service.jobs() as u64)),
                    ("fanouts", Json::UInt(par.fanouts())),
                    ("inline", Json::UInt(par.inline_runs())),
                    ("tasks", Json::UInt(par.tasks())),
                    ("steals", Json::UInt(par.steals())),
                    // Single-flight coalescing across both cache
                    // banks: concurrent duplicate demands that shared
                    // one compute instead of racing.
                    (
                        "coalesced_flights",
                        Json::UInt(
                            qs.coalesced.load(Ordering::Relaxed)
                                + cs.coalesced.load(Ordering::Relaxed),
                        ),
                    ),
                    (
                        "utilization_pct",
                        Json::obj([
                            ("count", Json::UInt(ut.count())),
                            ("p50", Json::UInt(ut.quantile(0.5))),
                            ("p90", Json::UInt(ut.quantile(0.9))),
                            ("p99", Json::UInt(ut.quantile(0.99))),
                        ]),
                    ),
                ])
            }),
            (
                "connections",
                Json::obj([
                    ("open", Json::Int(self.metrics.open_connections.get())),
                    (
                        "keepalive",
                        Json::Int(self.metrics.keepalive_connections.get()),
                    ),
                ]),
            ),
            ("net", {
                let n = self.net.snapshot();
                Json::obj([
                    ("engine", Json::str(self.engine.name())),
                    ("open", Json::UInt(n.open)),
                    ("accepted", Json::UInt(n.accepted)),
                    ("rejected", Json::UInt(n.rejected)),
                    ("dispatched", Json::UInt(n.dispatched)),
                    ("inline", Json::UInt(n.inline_served)),
                    ("poll_wakeups", Json::UInt(n.poll_wakeups)),
                    ("timer_expirations", Json::UInt(n.timer_expirations)),
                ])
            }),
            ("store", self.store_doc()),
        ])
    }

    /// The `store` section of `/v1/stats`: the persistent tier's counter
    /// snapshot, or `{"enabled": false}` when the server runs without
    /// `--store` — present either way so the document shape is stable.
    fn store_doc(&self) -> Json {
        let Some(store) = self.service.db().store() else {
            return Json::obj([("enabled", Json::Bool(false))]);
        };
        let s = store.stats();
        Json::obj([
            ("enabled", Json::Bool(true)),
            ("entries", Json::UInt(s.entries)),
            ("pending", Json::UInt(s.pending)),
            ("segments", Json::UInt(s.segments)),
            ("live_bytes", Json::UInt(s.live_bytes)),
            ("gets", Json::UInt(s.gets)),
            ("hits", Json::UInt(s.hits)),
            ("misses", Json::UInt(s.misses)),
            ("puts", Json::UInt(s.puts)),
            ("puts_ignored", Json::UInt(s.puts_ignored)),
            ("commits", Json::UInt(s.commits)),
            ("commit_failures", Json::UInt(s.commit_failures)),
            ("committed_records", Json::UInt(s.committed_records)),
            ("committed_bytes", Json::UInt(s.committed_bytes)),
            ("recovered_records", Json::UInt(s.recovered_records)),
            ("truncated_bytes", Json::UInt(s.truncated_bytes)),
            ("quarantined_records", Json::UInt(s.quarantined_records)),
            ("rotations", Json::UInt(s.rotations)),
            ("compactions", Json::UInt(s.compactions)),
        ])
    }

    /// The `GET /v1/metrics` body: Prometheus text exposition, headed by
    /// a `# adds.metrics/v1` schema comment. Counters mirror `/v1/stats`;
    /// the histograms add full per-route and per-query-layer latency
    /// distributions (log₂ buckets, µs).
    pub fn metrics_text(&self) -> String {
        let cs = self.service.stats();
        let qs = self.service.query_stats();
        let a = |x: &AtomicU64| x.load(Ordering::Relaxed);
        let mut out = String::from("# adds.metrics/v1\n");

        out.push_str("# TYPE adds_requests_total counter\n");
        for (&route, counter) in Route::ALL.iter().zip([
            &self.requests.analyze,
            &self.requests.parallelize,
            &self.requests.run,
            &self.requests.check,
            &self.requests.parse,
            &self.requests.batch,
            &self.requests.report,
            &self.requests.corpus,
            &self.requests.stats,
            &self.requests.healthz,
            &self.requests.metrics,
            &self.requests.trace,
            &self.requests.other,
        ]) {
            let label = format!("route=\"{}\"", route.name());
            prom_counter(&mut out, "adds_requests_total", &label, a(counter));
        }
        prom_counter(
            &mut out,
            "adds_request_body_bytes_total",
            "",
            self.metrics.bytes_in.get(),
        );

        out.push_str("# TYPE adds_cache_hits_total counter\n");
        prom_counter(&mut out, "adds_cache_hits_total", "", a(&cs.hits));
        prom_counter(&mut out, "adds_cache_misses_total", "", a(&cs.misses));
        prom_counter(&mut out, "adds_cache_coalesced_total", "", a(&cs.coalesced));
        prom_counter(&mut out, "adds_cache_disk_hits_total", "", a(&cs.disk_hits));
        prom_counter(&mut out, "adds_cache_evicted_total", "", a(&cs.evicted));
        prom_gauge(
            &mut out,
            "adds_cache_entries",
            "",
            self.service.entries() as i64,
        );

        out.push_str("# TYPE adds_query_computes_total counter\n");
        for (name, n) in self.service.query_computes() {
            let label = format!("layer=\"{name}\"");
            prom_counter(&mut out, "adds_query_computes_total", &label, n);
        }
        prom_counter(&mut out, "adds_query_cache_hits_total", "", a(&qs.hits));
        prom_counter(&mut out, "adds_query_cache_misses_total", "", a(&qs.misses));
        prom_counter(
            &mut out,
            "adds_query_cache_evicted_total",
            "",
            a(&qs.evicted),
        );
        prom_counter(
            &mut out,
            "adds_query_dropped_digests_total",
            "",
            self.service.db().dropped_digest_entries(),
        );
        prom_gauge(
            &mut out,
            "adds_query_artifact_entries",
            "",
            self.service.db().artifact_entries() as i64,
        );

        let par = self.service.par_stats();
        out.push_str("# TYPE adds_par_tasks_total counter\n");
        prom_counter(&mut out, "adds_par_fanouts_total", "", par.fanouts());
        prom_counter(&mut out, "adds_par_inline_total", "", par.inline_runs());
        prom_counter(&mut out, "adds_par_tasks_total", "", par.tasks());
        prom_counter(&mut out, "adds_par_steals_total", "", par.steals());
        prom_counter(
            &mut out,
            "adds_par_coalesced_flights_total",
            "",
            a(&qs.coalesced) + a(&cs.coalesced),
        );

        out.push_str("# TYPE adds_par_worker_utilization_pct histogram\n");
        prom_histogram(
            &mut out,
            "adds_par_worker_utilization_pct",
            "",
            par.utilization(),
        );

        out.push_str("# TYPE adds_request_duration_us histogram\n");
        for &route in Route::ALL {
            let label = format!("route=\"{}\"", route.name());
            prom_histogram(
                &mut out,
                "adds_request_duration_us",
                &label,
                &self.metrics.route_latency[route as usize],
            );
        }

        out.push_str("# TYPE adds_query_duration_us histogram\n");
        for &kind in QueryKind::ALL {
            let label = format!("layer=\"{}\"", kind.name());
            prom_histogram(
                &mut out,
                "adds_query_duration_us",
                &label,
                self.service.db().layer_duration(kind),
            );
        }

        out.push_str("# TYPE adds_connections_open gauge\n");
        prom_gauge(
            &mut out,
            "adds_connections_open",
            "",
            self.metrics.open_connections.get(),
        );
        prom_gauge(
            &mut out,
            "adds_connections_keepalive",
            "",
            self.metrics.keepalive_connections.get(),
        );

        let n = self.net.snapshot();
        out.push_str("# TYPE adds_net_accepted_total counter\n");
        prom_counter(&mut out, "adds_net_accepted_total", "", n.accepted);
        prom_counter(&mut out, "adds_net_rejected_total", "", n.rejected);
        prom_counter(&mut out, "adds_net_dispatched_total", "", n.dispatched);
        prom_counter(&mut out, "adds_net_inline_total", "", n.inline_served);
        prom_counter(&mut out, "adds_net_poll_wakeups_total", "", n.poll_wakeups);
        prom_counter(
            &mut out,
            "adds_net_timer_expirations_total",
            "",
            n.timer_expirations,
        );
        out.push_str("# TYPE adds_net_open_connections gauge\n");
        prom_gauge(&mut out, "adds_net_open_connections", "", n.open as i64);

        if let Some(store) = self.service.db().store() {
            let s = store.stats();
            out.push_str("# TYPE adds_store_entries gauge\n");
            prom_gauge(&mut out, "adds_store_entries", "", s.entries as i64);
            prom_gauge(&mut out, "adds_store_pending", "", s.pending as i64);
            prom_gauge(&mut out, "adds_store_segments", "", s.segments as i64);
            prom_gauge(&mut out, "adds_store_live_bytes", "", s.live_bytes as i64);
            out.push_str("# TYPE adds_store_gets_total counter\n");
            prom_counter(&mut out, "adds_store_gets_total", "", s.gets);
            prom_counter(&mut out, "adds_store_hits_total", "", s.hits);
            prom_counter(&mut out, "adds_store_misses_total", "", s.misses);
            prom_counter(&mut out, "adds_store_puts_total", "", s.puts);
            prom_counter(&mut out, "adds_store_commits_total", "", s.commits);
            prom_counter(
                &mut out,
                "adds_store_commit_failures_total",
                "",
                s.commit_failures,
            );
            prom_counter(
                &mut out,
                "adds_store_committed_bytes_total",
                "",
                s.committed_bytes,
            );
            prom_counter(
                &mut out,
                "adds_store_recovered_records_total",
                "",
                s.recovered_records,
            );
            prom_counter(
                &mut out,
                "adds_store_truncated_bytes_total",
                "",
                s.truncated_bytes,
            );
            prom_counter(
                &mut out,
                "adds_store_quarantined_records_total",
                "",
                s.quarantined_records,
            );
        }
        out
    }

    fn stage_request(&self, stage: Stage, req: &Request) -> Response {
        let Ok(source) = std::str::from_utf8(&req.body) else {
            return Response::error(400, "body is not valid UTF-8");
        };
        if source.is_empty() {
            return Response::error(400, "empty body: POST the IL source");
        }
        let matrices = flag(req, "matrices");
        let out = self.service.stage(source, StageRequest { stage, matrices });
        let doc = Service::stage_doc(stage, &out.report, req.param("name"));
        Response::json(200, doc.pretty())
            .with_header("X-Adds-Sha256", out.digest.hex())
            .with_header("X-Adds-Cache", out.outcome.name().to_string())
    }

    fn run_request(&self, req: &Request) -> Response {
        let Ok(source) = std::str::from_utf8(&req.body) else {
            return Response::error(400, "body is not valid UTF-8");
        };
        if source.is_empty() {
            return Response::error(400, "empty body: POST the IL source");
        }
        let opts = match run_options(req) {
            Ok(o) => o,
            Err(msg) => return Response::error(400, &msg),
        };
        let out = self.service.run(source, &RunRequest { opts });
        let resp = match &*out.result {
            Ok(report) => Response::json(200, Service::run_doc(report, req.param("name")).pretty()),
            Err(msg) => {
                // The cached canonical error names the program by its
                // content hash; restore the caller's display name, same
                // as the Ok path does.
                let msg = match req.param("name") {
                    Some(n) => msg.replace(&out.digest.hex(), n),
                    None => msg.clone(),
                };
                Response::error(422, &msg)
            }
        };
        resp.with_header("X-Adds-Sha256", out.digest.hex())
            .with_header("X-Adds-Cache", out.outcome.name().to_string())
    }

    fn batch_request(&self, req: &Request) -> Response {
        let Ok(body) = std::str::from_utf8(&req.body) else {
            return Response::error(400, "body is not valid UTF-8");
        };
        let doc = match Json::parse(body) {
            Ok(d) => d,
            Err(e) => return Response::error(400, &format!("batch body is not JSON: {e}")),
        };
        let Some(items) = doc.get("items").and_then(Json::as_arr) else {
            return Response::error(400, "batch body needs an `items` array");
        };
        if items.len() > MAX_BATCH_ITEMS {
            return Response::error(
                400,
                &format!("batch accepts at most {MAX_BATCH_ITEMS} items"),
            );
        }
        let runs = items
            .iter()
            .filter(|i| i.get("stage").and_then(Json::as_str) == Some("run"))
            .count();
        if runs > MAX_BATCH_RUN_ITEMS {
            return Response::error(
                400,
                &format!("batch accepts at most {MAX_BATCH_RUN_ITEMS} `run` items"),
            );
        }
        // Resolve every item up front (corpus lookup, option parsing) so
        // execution works over plain data, then execute each *distinct*
        // cache key once, concurrently, through the shared session.
        // Duplicates are answered afterwards from the warm cache, so
        // their `cache` labels ("hit") match a serial left-to-right
        // execution exactly — parallelism must never leak into the bytes.
        let resolved: Vec<Result<BatchItem, String>> =
            items.iter().map(|i| self.resolve_batch_item(i)).collect();
        let mut seen = std::collections::HashSet::new();
        let mut firsts: Vec<usize> = Vec::new();
        let mut dups: Vec<usize> = Vec::new();
        for (i, r) in resolved.iter().enumerate() {
            if let Ok(item) = r {
                if seen.insert(item.cache_key(&self.service)) {
                    firsts.push(i);
                } else {
                    dups.push(i);
                }
            }
        }
        let first_results = self.service.par_map(&firsts, |&i| match &resolved[i] {
            Ok(item) => self.exec_batch_item(item),
            Err(_) => unreachable!("only resolved items are scheduled"),
        });

        let mut slots: Vec<Option<(bool, Json)>> = resolved
            .iter()
            .map(|r| match r {
                Ok(_) => None,
                Err(msg) => Some((false, Json::obj([("error", Json::str(msg))]))),
            })
            .collect();
        for (&i, result) in firsts.iter().zip(first_results) {
            slots[i] = Some(result);
        }
        for i in dups {
            let Ok(item) = &resolved[i] else {
                unreachable!()
            };
            slots[i] = Some(self.exec_batch_item(item));
        }

        let mut ok = true;
        let mut results = Vec::with_capacity(items.len());
        for slot in slots {
            let (item_ok, json) = slot.expect("every item answered");
            ok &= item_ok;
            results.push(json);
        }
        let doc = Json::obj([
            ("schema", Json::str("adds.batch/v1")),
            ("ok", Json::Bool(ok)),
            ("results", Json::Arr(results)),
        ]);
        Response::json(200, doc.pretty())
    }

    /// Validate one batch item into executable form (no session work yet).
    fn resolve_batch_item(&self, item: &Json) -> Result<BatchItem, String> {
        let stage_name = item
            .get("stage")
            .and_then(Json::as_str)
            .ok_or("item needs a `stage` string")?;
        let (name, source): (String, String) = match (
            item.get("program").and_then(Json::as_str),
            item.get("source").and_then(Json::as_str),
        ) {
            (Some(p), None) => {
                let e = corpus::find(p).ok_or(format!("unknown corpus program `{p}`"))?;
                (p.to_string(), e.source.to_string())
            }
            (None, Some(s)) => (String::new(), s.to_string()),
            (Some(_), Some(_)) => return Err("item takes `program` or `source`, not both".into()),
            (None, None) => return Err("item needs `program` or `source`".into()),
        };
        let display = item
            .get("name")
            .and_then(Json::as_str)
            .map(str::to_string)
            .or(if name.is_empty() { None } else { Some(name) });

        let op = if stage_name == "run" {
            BatchOp::Run(batch_run_options(item)?)
        } else {
            let stage =
                Stage::parse_name(stage_name).ok_or(format!("unknown stage `{stage_name}`"))?;
            let matrices = item
                .get("matrices")
                .and_then(Json::as_bool)
                .unwrap_or(false);
            BatchOp::Stage { stage, matrices }
        };
        Ok(BatchItem {
            display,
            source,
            op,
        })
    }

    /// Execute one resolved batch item → `(ok, result object)`.
    fn exec_batch_item(&self, item: &BatchItem) -> (bool, Json) {
        let display = &item.display;
        match &item.op {
            BatchOp::Run(opts) => {
                let out = self
                    .service
                    .run(&item.source, &RunRequest { opts: opts.clone() });
                let (item_ok, doc) = match &*out.result {
                    Ok(report) => (true, Service::run_doc(report, display.as_deref())),
                    Err(msg) => {
                        let msg = match display {
                            Some(n) => msg.replace(&out.digest.hex(), n),
                            None => msg.clone(),
                        };
                        (false, Json::obj([("error", Json::str(&msg))]))
                    }
                };
                (
                    item_ok,
                    batch_result(display, &out.digest, out.outcome.name(), item_ok, doc),
                )
            }
            BatchOp::Stage { stage, matrices } => {
                let out = self.service.stage(
                    &item.source,
                    StageRequest {
                        stage: *stage,
                        matrices: *matrices,
                    },
                );
                let doc = Service::stage_doc(*stage, &out.report, display.as_deref());
                (
                    out.report.ok,
                    batch_result(display, &out.digest, out.outcome.name(), out.report.ok, doc),
                )
            }
        }
    }

    fn report_lookup(&self, hex: &str, req: &Request) -> Response {
        let Some(digest) = Digest::parse(hex) else {
            return Response::error(400, "report id must be a 64-char sha256 hex string");
        };
        let Some(stage) = Stage::parse_name(req.param("stage").unwrap_or("analyze")) else {
            let other = req.param("stage").unwrap_or_default();
            return Response::error(400, &format!("unknown stage `{other}`"));
        };
        let matrices = flag(req, "matrices");
        match self
            .service
            .lookup(&digest, StageRequest { stage, matrices })
        {
            Some(report) => {
                let doc = Service::stage_doc(stage, &report, req.param("name"));
                Response::json(200, doc.pretty())
                    .with_header("X-Adds-Sha256", digest.hex())
                    .with_header("X-Adds-Cache", "hit".to_string())
            }
            None => Response::error(
                404,
                &format!(
                    "no cached {} report for {hex}; POST the source to /v1/{} first",
                    stage.name(),
                    stage.name()
                ),
            ),
        }
    }
}

/// A `{count, p50_us, p90_us, p99_us}` summary of one latency histogram
/// (quantiles are log₂-bucket upper bounds — within one bucket width of
/// the true value; 0 when empty).
fn latency_summary(h: &Histogram) -> Json {
    Json::obj([
        ("count", Json::UInt(h.count())),
        ("p50_us", Json::UInt(h.quantile(0.5))),
        ("p90_us", Json::UInt(h.quantile(0.9))),
        ("p99_us", Json::UInt(h.quantile(0.99))),
    ])
}

/// One batch item, validated into executable form.
struct BatchItem {
    /// Caller's display name (`name`, or the corpus program name).
    display: Option<String>,
    /// Resolved IL source text.
    source: String,
    /// What to do with it.
    op: BatchOp,
}

/// The operation a batch item requests.
enum BatchOp {
    Run(RunOptions),
    Stage { stage: Stage, matrices: bool },
}

impl BatchItem {
    /// The `(digest, fingerprint)` cache key this item's request-level
    /// query resolves to — the identity the batch executor dedupes on, so
    /// two items that would share a cache entry never race for it.
    fn cache_key(&self, service: &Service) -> (Digest, String) {
        let digest = crate::sha::sha256(self.source.as_bytes());
        let fp = service.db().fingerprints();
        let fingerprint = match &self.op {
            BatchOp::Run(opts) => fp.run_report(opts),
            BatchOp::Stage { stage, matrices } => fp.stage_report(*stage, *matrices),
        };
        (digest, fingerprint)
    }
}

/// One `adds.batch/v1` result object.
fn batch_result(name: &Option<String>, digest: &Digest, cache: &str, ok: bool, doc: Json) -> Json {
    Json::obj([
        (
            "name",
            match name {
                Some(n) => Json::str(n),
                None => Json::str(digest.hex()),
            },
        ),
        ("sha256", Json::str(digest.hex())),
        ("cache", Json::str(cache)),
        ("ok", Json::Bool(ok)),
        ("doc", doc),
    ])
}

/// A boolean query flag: present (empty), `1`, or `true`.
fn flag(req: &Request, key: &str) -> bool {
    matches!(req.param(key), Some("" | "1" | "true"))
}

fn run_options(req: &Request) -> Result<RunOptions, String> {
    let mut opts = RunOptions::default();
    if let Some(v) = req.param("pes") {
        opts.pes = parse_usize_list(v).ok_or(format!("pes expects e.g. 2,4,7 — got `{v}`"))?;
    }
    if let Some(v) = req.param("bodies") {
        opts.bodies = v
            .parse()
            .map_err(|_| format!("bodies expects an integer, got `{v}`"))?;
    }
    if let Some(v) = req.param("steps") {
        opts.steps = v
            .parse()
            .map_err(|_| format!("steps expects an integer, got `{v}`"))?;
    }
    if let Some(v) = req.param("theta") {
        opts.theta = v
            .parse()
            .map_err(|_| format!("theta expects a number, got `{v}`"))?;
    }
    if let Some(v) = req.param("dt") {
        opts.dt = v
            .parse()
            .map_err(|_| format!("dt expects a number, got `{v}`"))?;
    }
    validate_run_options(&opts)?;
    Ok(opts)
}

/// Run parameters from a batch item's JSON fields (same caps as the query
/// string form).
fn batch_run_options(item: &Json) -> Result<RunOptions, String> {
    let mut opts = RunOptions::default();
    if let Some(pes) = item.get("pes") {
        let list = pes
            .as_arr()
            .map(|items| items.iter().map(Json::as_usize).collect::<Option<Vec<_>>>())
            .unwrap_or_default()
            .filter(|v: &Vec<usize>| !v.is_empty() && v.iter().all(|&x| x > 0));
        opts.pes = list.ok_or("pes expects an array of positive integers")?;
    }
    if let Some(v) = item.get("bodies") {
        opts.bodies = v.as_usize().ok_or("bodies expects an integer")?;
    }
    if let Some(v) = item.get("steps") {
        opts.steps = v
            .as_f64()
            .filter(|f| f.fract() == 0.0)
            .ok_or("steps expects an integer")? as i64;
    }
    if let Some(v) = item.get("theta") {
        opts.theta = v.as_f64().ok_or("theta expects a number")?;
    }
    if let Some(v) = item.get("dt") {
        opts.dt = v.as_f64().ok_or("dt expects a number")?;
    }
    validate_run_options(&opts)?;
    Ok(opts)
}

/// Shared `/v1/run` parameter caps: one request runs synchronously on one
/// worker, so the knobs are bounded well past the paper's grid (N ≤ 1024,
/// 80 steps, 7 PEs) but short of tying the worker up indefinitely.
fn validate_run_options(opts: &RunOptions) -> Result<(), String> {
    if opts.pes.len() > MAX_PES_LIST || opts.pes.iter().any(|&p| p > MAX_PES) {
        return Err(format!(
            "pes accepts at most {MAX_PES_LIST} values of at most {MAX_PES}"
        ));
    }
    if opts.bodies > MAX_BODIES {
        return Err(format!("bodies is capped at {MAX_BODIES}"));
    }
    if !(0..=MAX_STEPS).contains(&opts.steps) {
        return Err(format!("steps must be between 0 and {MAX_STEPS}"));
    }
    if !(0.0..=MAX_THETA).contains(&opts.theta) {
        return Err(format!("theta must be finite and in 0..={MAX_THETA}"));
    }
    if !(opts.dt > 0.0 && opts.dt <= MAX_DT) {
        return Err(format!("dt must be finite and in (0, {MAX_DT}]"));
    }
    Ok(())
}

const MAX_BODIES: usize = 16_384;
const MAX_STEPS: i64 = 1_000;
const MAX_PES: usize = 1_024;
const MAX_PES_LIST: usize = 16;
const MAX_THETA: f64 = 100.0;
const MAX_DT: f64 = 100.0;

/// Parse a comma-separated list of positive integers (`2,4,7`). Shared
/// with the CLI's `--pes`/`--klimit` flags.
pub fn parse_usize_list(s: &str) -> Option<Vec<usize>> {
    let out: Option<Vec<usize>> = s.split(',').map(|p| p.trim().parse().ok()).collect();
    out.filter(|v: &Vec<usize>| !v.is_empty() && v.iter().all(|&x| x > 0))
}

/// A bound, not-yet-serving server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    jobs: usize,
    trace_path: Option<String>,
    engine: Engine,
    reactor_opts: ReactorOptions,
}

/// The reactor's timer-wheel granularity: 50ms normally, but finer when
/// the configured deadlines are short (tests use sub-second timeouts and
/// need expiry resolution well inside them).
fn reactor_tick(read: Duration, idle: Duration) -> Duration {
    Duration::from_millis(50)
        .min(read / 2)
        .min(idle / 2)
        .max(Duration::from_millis(5))
}

impl Server {
    /// Bind `opts.addr` and prepare `opts.jobs` workers. A `trace_path`
    /// turns span recording on; the trace file is written when the server
    /// stops.
    pub fn bind(opts: &ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let jobs = if opts.jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            opts.jobs
        };
        if opts.trace_path.is_some() {
            trace::enable();
        }
        // Opening the store runs recovery: segments are checksum-scanned,
        // torn tails truncated, corrupt records quarantined — a crashed
        // previous life never blocks startup.
        let store = match &opts.store_dir {
            Some(dir) => Some(Arc::new(adds_store::Store::open(dir)?)),
            None => None,
        };
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                // One `jobs` budget for both layers: HTTP workers above,
                // query fan-out workers below. A fan-out inside a request
                // spawns scoped threads, so peak threads are bounded by
                // jobs × jobs, not unbounded recursion (nested fan-outs
                // run inline).
                service: Service::with_config(&SessionConfig {
                    cache_capacity: opts.cache_capacity,
                    versions: None,
                    jobs: opts.jobs,
                    store,
                }),
                requests: RequestStats::default(),
                metrics: ServeMetrics::default(),
                net: Arc::new(NetStats::default()),
                log_requests: opts.log,
                instrument: opts.instrument,
                engine: opts.engine,
            }),
            jobs,
            trace_path: opts.trace_path.clone(),
            engine: opts.engine,
            reactor_opts: ReactorOptions {
                workers: jobs,
                max_connections: opts.max_connections.max(1),
                read_deadline: opts.read_timeout,
                idle_deadline: opts.idle_timeout,
                write_deadline: Duration::from_secs(30),
                drain_deadline: Duration::from_secs(5),
                tick: reactor_tick(opts.read_timeout, opts.idle_timeout),
                max_frame_bytes: MAX_HEADER_BYTES + MAX_BODY_BYTES + 4096,
            },
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared state (stats, service) — mainly for tests.
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Serve until the process exits. [`Engine::Reactor`] runs the event
    /// loop on the calling thread (workers live inside the reactor);
    /// [`Engine::Blocking`] runs `jobs - 1` background accept workers
    /// plus the calling thread.
    pub fn run(self) -> std::io::Result<()> {
        let stop = Arc::new(AtomicBool::new(false));
        let flusher = spawn_flusher(&self.state, &stop);
        match self.engine {
            Engine::Blocking => {
                let mut workers = Vec::new();
                for _ in 1..self.jobs {
                    workers.push(spawn_worker(&self.listener, &self.state, &stop)?);
                }
                worker_loop(&self.listener, &self.state, &stop);
                for w in workers {
                    let _ = w.join();
                }
            }
            Engine::Reactor => {
                let proto = Arc::new(HttpProto {
                    state: Arc::clone(&self.state),
                });
                let reactor = Reactor::new(
                    self.listener,
                    proto,
                    self.reactor_opts,
                    Arc::clone(&self.state.net),
                    Arc::clone(&stop),
                )?;
                reactor.run();
            }
        }
        stop.store(true, Ordering::SeqCst);
        if let Some(f) = flusher {
            let _ = f.join();
        }
        if let Some(path) = &self.trace_path {
            trace::dump_to_file(path)?;
        }
        Ok(())
    }

    /// Start serving on background threads and return a handle that can
    /// stop the server (used by tests and the bench driver).
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flusher = spawn_flusher(&self.state, &stop);
        let (workers, reactor_stop) = match self.engine {
            Engine::Blocking => {
                let mut workers = Vec::new();
                for _ in 0..self.jobs {
                    workers.push(spawn_worker(&self.listener, &self.state, &stop)?);
                }
                (workers, None)
            }
            Engine::Reactor => {
                let proto = Arc::new(HttpProto {
                    state: Arc::clone(&self.state),
                });
                let reactor = Reactor::new(
                    self.listener,
                    proto,
                    self.reactor_opts,
                    Arc::clone(&self.state.net),
                    Arc::clone(&stop),
                )?;
                let handle = reactor.stop_handle();
                let join = std::thread::Builder::new()
                    .name("net-reactor".into())
                    .spawn(move || reactor.run())?;
                (vec![join], Some(handle))
            }
        };
        Ok(ServerHandle {
            addr,
            state: self.state,
            stop,
            workers,
            flusher,
            trace_path: self.trace_path,
            reactor_stop,
        })
    }
}

/// How often the store flusher commits the write-behind buffer. Between
/// commits, freshly computed values are durable-pending only — a crash
/// loses at most this window (recovery still never serves anything
/// corrupt; it just recomputes what was lost).
pub const COMMIT_INTERVAL: std::time::Duration = std::time::Duration::from_millis(200);

/// The write-behind commit loop: every [`COMMIT_INTERVAL`], fold the
/// store's pending puts into a durable, fsynced segment append. One
/// committer thread per server; commit errors poison the store (observable
/// in `/v1/stats` as `commit_failures`) rather than crashing the server.
/// On shutdown the loop commits one final time so a clean stop is lossless.
fn spawn_flusher(
    state: &Arc<ServerState>,
    stop: &Arc<AtomicBool>,
) -> Option<std::thread::JoinHandle<()>> {
    let store = Arc::clone(state.service.db().store()?);
    let stop = Arc::clone(stop);
    Some(std::thread::spawn(move || {
        while !stop.load(Ordering::SeqCst) {
            std::thread::sleep(COMMIT_INTERVAL);
            let _ = store.commit();
        }
        let _ = store.commit();
    }))
}

fn spawn_worker(
    listener: &TcpListener,
    state: &Arc<ServerState>,
    stop: &Arc<AtomicBool>,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    let listener = listener.try_clone()?;
    let state = Arc::clone(state);
    let stop = Arc::clone(stop);
    Ok(std::thread::spawn(move || {
        worker_loop(&listener, &state, &stop)
    }))
}

/// Per-connection socket timeout for the *first* request: a worker
/// blocked on a silent client gets its thread back instead of being
/// parked forever (which would let `jobs` idle connections freeze the
/// whole fixed pool). Subsequent keep-alive reads use the shorter
/// [`KEEPALIVE_IDLE_TIMEOUT`].
const SOCKET_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(30);

fn worker_loop(listener: &TcpListener, state: &ServerState, stop: &AtomicBool) {
    loop {
        let conn = listener.accept();
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok((mut conn, _)) = conn else {
            // Accept can fail persistently (e.g. EMFILE under fd
            // exhaustion); back off instead of spinning the core.
            std::thread::sleep(std::time::Duration::from_millis(10));
            continue;
        };
        handle_connection(&mut conn, state);
    }
}

/// Serve one connection: read a request, route it, write the response —
/// and, when the client opted into keep-alive, loop for the next request
/// until the idle timeout, the per-connection cap, or a close. Socket
/// errors are dropped: the client has gone away and the exit code of a
/// server is not the place to report that.
/// Keeps the connection gauges honest on every exit path: open on
/// construction, closed (and un-counted from keep-alive, if parked
/// there) on drop.
struct ConnGauges<'a> {
    metrics: &'a ServeMetrics,
    on: bool,
    keepalive: bool,
}

impl<'a> ConnGauges<'a> {
    fn new(metrics: &'a ServeMetrics, on: bool) -> ConnGauges<'a> {
        if on {
            metrics.open_connections.inc();
        }
        ConnGauges {
            metrics,
            on,
            keepalive: false,
        }
    }

    /// The connection survived its first response and is now reusable.
    fn entered_keepalive(&mut self) {
        if self.on && !self.keepalive {
            self.keepalive = true;
            self.metrics.keepalive_connections.inc();
        }
    }
}

impl Drop for ConnGauges<'_> {
    fn drop(&mut self) {
        if self.on {
            self.metrics.open_connections.dec();
            if self.keepalive {
                self.metrics.keepalive_connections.dec();
            }
        }
    }
}

/// The shared request-execution path of **both** engines: routing, panic
/// containment, tracing, route-latency metrics, and access logging, in
/// exactly this order. Returns the response, whether the connection may
/// be kept alive (`served` is 1-based), and the still-open `serve.request`
/// span — the caller drops it after serializing, so span timing matches
/// the blocking engine's historical shape.
fn process_request(
    state: &ServerState,
    req: &Request,
    served: usize,
) -> (Response, bool, Option<trace::Span>) {
    let tracing = state.instrument && trace::enabled();
    let keep_alive = req.keep_alive && served < KEEPALIVE_MAX_REQUESTS;
    let mut root = if tracing {
        trace::span("serve.request", "serve")
    } else {
        None
    };
    let started = std::time::Instant::now();
    let resp = {
        let _execute = if tracing {
            trace::span("serve.execute", "serve")
        } else {
            None
        };
        // A handler panic must not take down a pool worker (blocking
        // engine) or wedge a reactor connection forever.
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| state.handle(req))) {
            Ok(resp) => resp,
            Err(_) => Response::error(500, "internal error"),
        }
    };
    let micros = started.elapsed().as_micros() as u64;
    if let Some(s) = root.as_mut() {
        s.arg("method", req.method.clone());
        s.arg("path", req.path.clone());
        s.arg("status", resp.status.to_string());
    }
    if state.instrument {
        let route = Route::classify(&req.method, &req.path);
        state.metrics.route_latency[route as usize].record(micros);
        state.metrics.bytes_in.add(req.body.len() as u64);
    }
    if state.log_requests {
        emit_access_line(&req.method, &req.path, &resp, micros, req.body.len() as u64);
    }
    (resp, keep_alive, root)
}

/// Count, record, log, and render the response for an unreadable request —
/// the shared error path of both engines (must stay byte-identical).
fn bad_request_response(state: &ServerState, e: &BadRequest) -> Response {
    state.requests.other.fetch_add(1, Ordering::Relaxed);
    let status = match e {
        BadRequest::TooLarge(_) => 413,
        _ => 400,
    };
    let resp = Response::error(status, &e.to_string());
    if state.log_requests {
        emit_access_line("-", "-", &resp, 0, 0);
    }
    if state.instrument {
        state.metrics.route_latency[Route::Other as usize].record(0);
    }
    resp
}

/// True once `buf` holds a complete header block (the blank line).
fn headers_complete(buf: &[u8]) -> bool {
    buf.windows(2).any(|w| w == b"\n\n") || buf.windows(3).any(|w| w == b"\n\r\n")
}

/// The HTTP glue between [`adds_net`]'s reactor and [`ServerState`]:
/// frames with the exact [`read_request`] parser, executes through the
/// exact [`process_request`] path, and serializes with the exact
/// [`serialize_response`] bytes the blocking engine writes.
struct HttpProto {
    state: Arc<ServerState>,
}

impl HttpProto {
    /// Parse one request from the head of `buf`, returning the result and
    /// how many bytes of `buf` the parser consumed (header bytes plus the
    /// `Content-Length` body, minus the reader's unconsumed look-ahead).
    fn parse(buf: &[u8]) -> (Result<Request, BadRequest>, usize) {
        let mut reader = std::io::BufReader::new(std::io::Cursor::new(buf));
        let res = read_request(&mut reader);
        let consumed = reader.get_ref().position() as usize - reader.buffer().len();
        (res, consumed)
    }

    fn error_bytes(&self, e: &BadRequest) -> Vec<u8> {
        serialize_response(&bad_request_response(&self.state, e), false)
    }
}

impl Protocol for HttpProto {
    type Frame = Request;

    fn frame(&self, buf: &[u8], _served: usize) -> Framed<Request> {
        // Wait for the full header block (or an oversized one — the
        // parser rejects those): end-of-slice inside the headers would
        // otherwise read as the connection closing mid-request.
        if !headers_complete(buf) && buf.len() < MAX_HEADER_BYTES {
            return Framed::Incomplete;
        }
        let parse_started = std::time::Instant::now();
        match Self::parse(buf) {
            (Ok(req), consumed) => {
                if self.state.instrument && trace::enabled() {
                    trace::complete_between(
                        "serve.parse-body",
                        "serve",
                        parse_started,
                        std::time::Instant::now(),
                        vec![("path", req.path.clone())],
                    );
                }
                Framed::Frame {
                    consumed,
                    frame: req,
                }
            }
            // The declared body hasn't fully arrived yet.
            (Err(BadRequest::Io(_)), _) | (Err(BadRequest::Closed), _) => Framed::Incomplete,
            (Err(e), _) => Framed::Reject {
                response: self.error_bytes(&e),
            },
        }
    }

    fn execute(&self, req: Request, served: usize) -> Reply {
        let tracing = self.state.instrument && trace::enabled();
        let (resp, keep_alive, root) = process_request(&self.state, &req, served);
        let bytes = {
            let _serialize = if tracing {
                trace::span("serve.serialize", "serve")
            } else {
                None
            };
            serialize_response(&resp, keep_alive)
        };
        drop(root);
        Reply { bytes, keep_alive }
    }

    fn try_inline(&self, req: Request, served: usize) -> Result<Reply, Request> {
        // Only the health probe is cheap enough for the reactor thread;
        // everything else goes to the worker pool.
        if req.method == "GET" && req.path == "/healthz" {
            Ok(self.execute(req, served))
        } else {
            Err(req)
        }
    }

    fn busy_response(&self) -> Vec<u8> {
        let resp = Response::error(503, "connection budget exhausted; retry shortly")
            .with_header("Retry-After", "1".to_string());
        serialize_response(&resp, false)
    }

    fn timeout_response(&self) -> Option<Vec<u8>> {
        let resp = Response::error(408, "request read deadline exceeded");
        Some(serialize_response(&resp, false))
    }

    fn eof_response(&self, buf: &[u8], served: usize) -> Option<Vec<u8>> {
        // The client closed mid-request; the buffer really is all there
        // is, so re-parse it with EOF semantics and mirror the blocking
        // engine's error branch byte for byte.
        match Self::parse(buf) {
            (Ok(_), _) | (Err(BadRequest::Closed), _) => None,
            // Mid-stream EOF on a keep-alive connection is silent there too.
            (Err(BadRequest::Io(_)), _) if served > 0 => None,
            (Err(e), _) => Some(self.error_bytes(&e)),
        }
    }

    fn on_open(&self) {
        if self.state.instrument {
            self.state.metrics.open_connections.inc();
        }
    }

    fn on_keepalive(&self) {
        if self.state.instrument {
            self.state.metrics.keepalive_connections.inc();
        }
    }

    fn on_close(&self, was_keepalive: bool) {
        if self.state.instrument {
            self.state.metrics.open_connections.dec();
            if was_keepalive {
                self.state.metrics.keepalive_connections.dec();
            }
        }
    }
}

fn handle_connection(conn: &mut TcpStream, state: &ServerState) {
    let _ = conn.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = conn.set_write_timeout(Some(SOCKET_TIMEOUT));
    // Responses are written as head + body; without TCP_NODELAY, Nagle
    // holds the second small segment until the client ACKs, which on a
    // keep-alive connection (no close to flush it) costs a delayed-ACK
    // round trip (~40ms) per request.
    let _ = conn.set_nodelay(true);
    // ONE buffered reader for the whole connection: read-ahead from one
    // request (a pipelined next request) must survive into the next
    // `read_request` call. Responses are written through `get_mut`.
    let mut reader = std::io::BufReader::new(conn);
    let mut served = 0usize;
    let mut gauges = ConnGauges::new(&state.metrics, state.instrument);
    let tracing = state.instrument && trace::enabled();
    loop {
        // The parse-body span must not absorb keep-alive idle time, so
        // when tracing, block for the first byte *before* starting the
        // clock.
        if tracing {
            use std::io::BufRead;
            let _ = reader.fill_buf();
        }
        let parse_started = std::time::Instant::now();
        let req = match read_request(&mut reader) {
            Ok(req) => req,
            Err(BadRequest::Closed) => return,
            Err(BadRequest::Io(_)) if served > 0 => {
                // Idle keep-alive connection timed out or died mid-read;
                // nothing useful to answer.
                return;
            }
            Err(e) => {
                let resp = bad_request_response(state, &e);
                let _ = write_response(reader.get_mut(), &resp, false);
                return;
            }
        };
        if tracing {
            trace::complete_between(
                "serve.parse-body",
                "serve",
                parse_started,
                std::time::Instant::now(),
                vec![("path", req.path.clone())],
            );
        }
        served += 1;
        let (resp, keep_alive, root) = process_request(state, &req, served);
        let write_ok = {
            let _serialize = if tracing {
                trace::span("serve.serialize", "serve")
            } else {
                None
            };
            write_response(reader.get_mut(), &resp, keep_alive).is_ok()
        };
        drop(root);
        if !write_ok || !keep_alive {
            return;
        }
        gauges.entered_keepalive();
        let _ = reader
            .get_ref()
            .set_read_timeout(Some(KEEPALIVE_IDLE_TIMEOUT));
    }
}

/// Write one access-log line to stdout (locked per line; errors dropped —
/// a closed stdout must not take the server down).
fn emit_access_line(method: &str, path: &str, resp: &Response, duration_us: u64, bytes_in: u64) {
    use std::io::Write;
    let line = logging::access_line(
        method,
        path,
        resp.header("X-Adds-Sha256"),
        resp.header("X-Adds-Cache"),
        resp.status,
        duration_us,
        bytes_in,
    );
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{line}");
}

/// A running server; dropping it (or calling [`ServerHandle::stop`])
/// shuts the workers down.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    state: Arc<ServerState>,
    stop: Arc<AtomicBool>,
    workers: Vec<std::thread::JoinHandle<()>>,
    flusher: Option<std::thread::JoinHandle<()>>,
    trace_path: Option<String>,
    reactor_stop: Option<StopHandle>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The shared state (stats, service).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Stop the workers: set the flag, then poke the listener once per
    /// worker so blocked `accept`s wake up and observe it.
    pub fn stop(self) {
        // Shutdown lives in Drop so that both explicit stops and scope
        // exits go through the same sequence.
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        match &self.reactor_stop {
            // The reactor owns every socket; its waker interrupts the
            // poll, and drain closes idle connections immediately.
            Some(h) => h.stop(),
            // Blocking workers park in accept(); poke the listener once
            // per worker so each observes the flag.
            None => {
                for _ in 0..self.workers.len() {
                    let _ = TcpStream::connect(self.addr);
                }
            }
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // The flusher's exit path runs the final commit, so joining it is
        // what makes a clean stop lossless.
        if let Some(f) = self.flusher.take() {
            let _ = f.join();
        }
        if let Some(path) = &self.trace_path {
            let _ = trace::dump_to_file(path);
        }
    }
}
