//! Reactor counters, exported by the embedding server (stats doc + metrics).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Atomic counters describing the life of the event loop. All relaxed: these
/// are monitoring signals, not synchronization.
#[derive(Default)]
pub struct NetStats {
    /// Connections accepted into the reactor (within budget).
    pub accepted: AtomicU64,
    /// Connections turned away with the busy response (budget exhausted).
    pub rejected: AtomicU64,
    /// Currently open connections owned by the reactor.
    pub open: AtomicI64,
    /// Times the poll loop woke up (readiness, waker, or tick timeout).
    pub poll_wakeups: AtomicU64,
    /// Connection deadlines that actually fired (idle/header/write).
    pub timer_expirations: AtomicU64,
    /// Frames handed to the worker pool.
    pub dispatched: AtomicU64,
    /// Frames served inline on the reactor thread (protocol fast path).
    pub inline_served: AtomicU64,
}

impl NetStats {
    pub fn snapshot(&self) -> NetSnapshot {
        NetSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            open: self.open.load(Ordering::Relaxed).max(0) as u64,
            poll_wakeups: self.poll_wakeups.load(Ordering::Relaxed),
            timer_expirations: self.timer_expirations.load(Ordering::Relaxed),
            dispatched: self.dispatched.load(Ordering::Relaxed),
            inline_served: self.inline_served.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`NetStats`], convenient for serialization.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetSnapshot {
    pub accepted: u64,
    pub rejected: u64,
    pub open: u64,
    pub poll_wakeups: u64,
    pub timer_expirations: u64,
    pub dispatched: u64,
    pub inline_served: u64,
}
