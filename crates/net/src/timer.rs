//! A coarse timer wheel for connection deadlines.
//!
//! Deadlines here are idle timeouts, header-read deadlines, and write
//! deadlines — all coarse (hundreds of milliseconds to tens of seconds), all
//! frequently re-armed, and almost always cancelled before they fire. The
//! classic fit is a timing wheel: O(1) insert, O(slots touched) advance, and
//! lazy cancellation so re-arming never has to search for the old entry.
//!
//! Ticks are absolute (tick 0 = reactor start). An entry scheduled beyond the
//! wheel horizon lands in its `at % slots` slot and is re-filed when the
//! cursor sweeps past it before its time. Staleness is resolved by the
//! caller: expired entries are handed back as `(token, gen, at)` and the
//! reactor drops any whose generation or armed deadline no longer matches.

use std::time::Duration;

#[derive(Clone, Copy, Debug)]
struct Entry {
    token: usize,
    gen: u64,
    at: u64,
}

/// An expired timer, reported back to the reactor for validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Expired {
    pub token: usize,
    pub gen: u64,
    pub at: u64,
}

pub struct Wheel {
    slots: Vec<Vec<Entry>>,
    tick: Duration,
    /// Last tick fully processed by `advance`.
    cursor: u64,
}

impl Wheel {
    pub fn new(slots: usize, tick: Duration) -> Wheel {
        assert!(slots > 0 && !tick.is_zero());
        Wheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick,
            cursor: 0,
        }
    }

    pub fn tick(&self) -> Duration {
        self.tick
    }

    /// Convert an elapsed duration since reactor start to an absolute tick.
    pub fn tick_at(&self, elapsed: Duration) -> u64 {
        (elapsed.as_nanos() / self.tick.as_nanos()) as u64
    }

    /// Schedule `(token, gen)` to expire at absolute tick `at`. Ticks in the
    /// past are clamped forward so the entry still fires on the next sweep.
    pub fn insert(&mut self, at: u64, token: usize, gen: u64) {
        let at = at.max(self.cursor + 1);
        let slot = (at % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry { token, gen, at });
    }

    /// Sweep the cursor forward to tick `to`, appending every entry whose
    /// time has come to `expired`. Entries filed in a swept slot for a later
    /// wheel revolution are retained in place.
    pub fn advance(&mut self, to: u64, expired: &mut Vec<Expired>) {
        if to <= self.cursor {
            return;
        }
        let len = self.slots.len() as u64;
        // If the sweep spans at least one full revolution every slot gets
        // visited once; otherwise only the slots the cursor passes over.
        let steps = (to - self.cursor).min(len);
        for i in 1..=steps {
            let slot = ((self.cursor + i) % len) as usize;
            let entries = std::mem::take(&mut self.slots[slot]);
            for e in entries {
                if e.at <= to {
                    expired.push(Expired {
                        token: e.token,
                        gen: e.gen,
                        at: e.at,
                    });
                } else {
                    self.slots[slot].push(e);
                }
            }
        }
        self.cursor = to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expire(wheel: &mut Wheel, to: u64) -> Vec<Expired> {
        let mut out = Vec::new();
        wheel.advance(to, &mut out);
        out
    }

    #[test]
    fn fires_at_its_tick_not_before() {
        let mut w = Wheel::new(8, Duration::from_millis(10));
        w.insert(5, 1, 100);
        assert!(expire(&mut w, 4).is_empty());
        let fired = expire(&mut w, 5);
        assert_eq!(
            fired,
            vec![Expired {
                token: 1,
                gen: 100,
                at: 5
            }]
        );
        assert!(expire(&mut w, 50).is_empty(), "entries fire once");
    }

    #[test]
    fn beyond_horizon_waits_for_the_right_revolution() {
        let mut w = Wheel::new(4, Duration::from_millis(10));
        // Slot 1, but two revolutions out.
        w.insert(9, 7, 1);
        assert!(
            expire(&mut w, 8).is_empty(),
            "swept its slot early, must re-file"
        );
        assert_eq!(
            expire(&mut w, 9),
            vec![Expired {
                token: 7,
                gen: 1,
                at: 9
            }]
        );
    }

    #[test]
    fn large_jump_sweeps_every_slot_once() {
        let mut w = Wheel::new(4, Duration::from_millis(10));
        for t in 1..=4u64 {
            w.insert(t, t as usize, 0);
        }
        let mut fired = expire(&mut w, 1000);
        fired.sort_by_key(|e| e.at);
        assert_eq!(fired.len(), 4);
        assert_eq!(
            fired[3],
            Expired {
                token: 4,
                gen: 0,
                at: 4
            }
        );
    }

    #[test]
    fn past_ticks_clamp_forward() {
        let mut w = Wheel::new(8, Duration::from_millis(10));
        expire(&mut w, 20);
        w.insert(3, 9, 2); // already in the past: clamps to cursor+1 = 21
        assert_eq!(expire(&mut w, 21).len(), 1);
    }

    #[test]
    fn rearm_leaves_a_stale_entry_behind() {
        // The wheel itself reports both entries; the caller's generation /
        // armed-deadline check is what makes cancellation lazy. Pin the
        // contract: both fire, in slot order.
        let mut w = Wheel::new(8, Duration::from_millis(10));
        w.insert(2, 1, 5);
        w.insert(4, 1, 5); // re-armed later deadline; old entry not removed
        let fired = expire(&mut w, 10);
        assert_eq!(fired.len(), 2);
    }

    #[test]
    fn tick_conversion_is_floor() {
        let w = Wheel::new(8, Duration::from_millis(50));
        assert_eq!(w.tick_at(Duration::from_millis(49)), 0);
        assert_eq!(w.tick_at(Duration::from_millis(50)), 1);
        assert_eq!(w.tick_at(Duration::from_millis(149)), 2);
    }
}
