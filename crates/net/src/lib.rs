//! Event-driven server core: a readiness reactor over nonblocking sockets.
//!
//! This crate is dependency-free (std only) and protocol-agnostic. It exists
//! so the serve front end can hold tens of thousands of keep-alive
//! connections without a thread per socket:
//!
//! * [`sys`] — a tiny `libc`-free FFI shim over `poll(2)` (plus `rlimit`),
//!   with a portable sleep-tick fallback behind the `portable-poll` feature
//!   or on non-unix targets.
//! * [`timer`] — a coarse timer wheel (fixed tick, fixed slot count) for
//!   idle/read/write deadlines. Cancellation is lazy: entries carry a
//!   connection generation and are dropped on expiry if stale.
//! * [`stats`] — atomic counters surfaced by the embedding server
//!   (accepted/rejected/open/poll wakeups/timer expirations/...).
//! * [`reactor`] — the event loop itself: single acceptor with an explicit
//!   connection budget (over-budget connections get the protocol's busy
//!   response instead of languishing in the accept queue), per-connection
//!   buffered state machines with incremental framing and pipelining, and
//!   execution handed to a worker pool so the reactor thread never blocks
//!   on request handling. Shutdown drains: in-flight requests finish (up to
//!   a deadline) while idle connections close immediately.
//!
//! The embedding protocol implements [`reactor::Protocol`]: framing over a
//! byte buffer, execution of a frame into response bytes, and canned
//! responses for budget rejection and deadline expiry. The reactor never
//! interprets bytes itself, which is what lets the serve crate guarantee
//! byte-identical responses to its blocking engine.

pub mod reactor;
pub mod stats;
pub mod sys;
pub mod timer;

pub use reactor::{Framed, Protocol, Reactor, ReactorOptions, Reply, StopHandle, Waker};
pub use stats::NetStats;
