//! Minimal OS shims, without libc-the-crate: `poll(2)` and `RLIMIT_NOFILE`
//! via direct `extern "C"` declarations, plus a portable fallback poller.
//!
//! The fallback (non-unix targets, or the `portable-poll` feature) emulates
//! level-triggered readiness by napping a short tick and then reporting every
//! registered interest as ready. That is correct — callers must already
//! tolerate spurious readiness because nonblocking reads/writes return
//! `WouldBlock` — but it costs one syscall per fd per tick, so it is a
//! correctness fallback, not a fast path.

use std::io;
use std::time::Duration;

/// Mirrors `struct pollfd`. The layout (int fd; short events; short revents)
/// is identical on every unix we target.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    pub fd: i32,
    pub events: i16,
    pub revents: i16,
}

/// Data may be read without blocking.
pub const POLLIN: i16 = 0x001;
/// Data may be written without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// Invalid fd (revents only).
pub const POLLNVAL: i16 = 0x020;

impl PollFd {
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

/// Raw fd of a socket, for registration with [`poll`].
#[cfg(unix)]
pub fn socket_fd<T: std::os::unix::io::AsRawFd>(sock: &T) -> i32 {
    sock.as_raw_fd()
}

/// On non-unix targets the portable poller ignores fds entirely.
#[cfg(not(unix))]
pub fn socket_fd<T>(_sock: &T) -> i32 {
    -1
}

#[cfg(all(unix, not(feature = "portable-poll")))]
mod imp {
    use super::PollFd;
    use std::io;
    use std::time::Duration;

    #[cfg(target_os = "linux")]
    type NfdsT = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NfdsT = std::os::raw::c_uint;

    extern "C" {
        #[link_name = "poll"]
        fn c_poll(
            fds: *mut PollFd,
            nfds: NfdsT,
            timeout: std::os::raw::c_int,
        ) -> std::os::raw::c_int;
    }

    pub fn poll(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
        let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        loop {
            let n = unsafe { c_poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            // EINTR: retry with the full timeout again; callers treat the
            // timeout as a hint (the reactor re-derives deadlines each loop).
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

#[cfg(any(not(unix), feature = "portable-poll"))]
mod imp {
    use super::{PollFd, POLLIN, POLLOUT};
    use std::io;
    use std::time::Duration;

    /// How long the emulated poller naps before declaring readiness.
    const EMULATED_TICK: Duration = Duration::from_millis(5);

    pub fn poll(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
        std::thread::sleep(timeout.min(EMULATED_TICK));
        let mut ready = 0;
        for fd in fds.iter_mut() {
            fd.revents = fd.events & (POLLIN | POLLOUT);
            if fd.revents != 0 {
                ready += 1;
            }
        }
        Ok(ready)
    }
}

/// Wait until any registered fd is ready or the timeout elapses. Level
/// triggered; `revents` is populated in place. Returns the number of ready
/// fds (0 on timeout), though callers are expected to scan `revents` rather
/// than trust the count (the portable fallback reports everything ready).
pub fn poll(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    imp::poll(fds, timeout)
}

/// Raise the soft `RLIMIT_NOFILE` to the hard limit and return the resulting
/// soft limit. Best effort: on failure (or non-unix) returns a conservative
/// guess instead of erroring, since callers only use this to size fd budgets.
#[cfg(unix)]
pub fn raise_nofile_limit() -> u64 {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }

    #[cfg(target_os = "linux")]
    const RLIMIT_NOFILE: std::os::raw::c_int = 7;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_NOFILE: std::os::raw::c_int = 8;

    extern "C" {
        fn getrlimit(resource: std::os::raw::c_int, rlim: *mut RLimit) -> std::os::raw::c_int;
        fn setrlimit(resource: std::os::raw::c_int, rlim: *const RLimit) -> std::os::raw::c_int;
    }

    let mut lim = RLimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 1024;
    }
    if lim.cur < lim.max {
        let want = RLimit {
            cur: lim.max,
            max: lim.max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &want) } == 0 {
            lim.cur = lim.max;
        }
    }
    lim.cur
}

#[cfg(not(unix))]
pub fn raise_nofile_limit() -> u64 {
    1024
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poll_times_out_on_quiet_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let mut fds = [PollFd::new(socket_fd(&server), POLLIN)];
        poll(&mut fds, Duration::from_millis(10)).unwrap();
        drop(client);
    }

    #[test]
    fn poll_reports_readable_after_write() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        client.write_all(b"x").unwrap();
        client.flush().unwrap();
        // Allow for delivery latency; level-triggered, so polling again is fine.
        let mut saw = false;
        for _ in 0..100 {
            let mut fds = [PollFd::new(socket_fd(&server), POLLIN)];
            poll(&mut fds, Duration::from_millis(20)).unwrap();
            if fds[0].readable() {
                saw = true;
                break;
            }
        }
        assert!(saw, "socket with pending byte never polled readable");
    }

    #[test]
    fn nofile_limit_is_sane() {
        let lim = raise_nofile_limit();
        assert!(lim >= 64, "fd limit implausibly low: {lim}");
    }
}
