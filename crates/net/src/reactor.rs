//! The readiness reactor: one thread multiplexing every connection over
//! `poll(2)`, with request execution handed to a worker pool.
//!
//! Life of a connection:
//!
//! ```text
//!   accept ── over budget? ──> write busy response, close (rejected)
//!     │
//!     v                 bytes arrive            frame complete
//!   [reading] ────────────────────────────> Protocol::frame
//!     │  ^                                      │        │
//!     │  │ response flushed, keep-alive         │inline  │dispatch
//!     │  └──────────────[idle]<───┐             v        v
//!     │                           │        reactor   worker pool
//!     │ header/idle deadline      │        thread    (--jobs threads)
//!     v                           │             │        │
//!   close <── write deadline ── [writing] <─────┴────────┘ (via waker)
//! ```
//!
//! Invariants the loop maintains:
//!
//! * The reactor thread never blocks on anything but `poll`: sockets are
//!   nonblocking, execution happens on workers, completions come back
//!   through a mutex-guarded vector plus a loopback-socket waker.
//! * At most one frame per connection is in flight. Pipelined requests stay
//!   buffered until the current response is queued, which preserves response
//!   ordering without any per-connection queueing of replies.
//! * Reads are backpressured: once the buffer holds `max_frame_bytes` (only
//!   possible while a frame is executing — `Protocol::frame` must resolve
//!   any buffer that large), the socket is deregistered from `POLLIN` until
//!   the response drains the buffer below the cap.
//! * Every armed deadline lives in the timer wheel as `(token, generation)`;
//!   expiry is validated against both the generation and the currently armed
//!   deadline, so re-arming and connection reuse never fire stale timers.

use crate::stats::NetStats;
use crate::sys::{self, PollFd, POLLIN, POLLOUT};
use crate::timer::{Expired, Wheel};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Result of attempting to frame a request out of buffered bytes.
pub enum Framed<F> {
    /// Not enough bytes yet; keep reading.
    Incomplete,
    /// A complete frame: `consumed` bytes are drained from the buffer.
    Frame { consumed: usize, frame: F },
    /// The bytes are unsalvageable. `response` is written, then the
    /// connection closes. The whole buffer is considered consumed.
    Reject { response: Vec<u8> },
}

/// A serialized response plus whether the connection survives it.
pub struct Reply {
    pub bytes: Vec<u8>,
    pub keep_alive: bool,
}

/// The embedding protocol. Implementations must be cheap to share
/// (`Arc<Self>` is cloned into every worker).
pub trait Protocol: Send + Sync + 'static {
    /// A parsed request, moved to a worker thread for execution.
    type Frame: Send + 'static;

    /// Try to frame one request from `buf`. `served` counts requests already
    /// framed on this connection (0 for the first).
    fn frame(&self, buf: &[u8], served: usize) -> Framed<Self::Frame>;

    /// Execute a frame. Runs on a worker thread. `served` is the 1-based
    /// index of this request on its connection.
    fn execute(&self, frame: Self::Frame, served: usize) -> Reply;

    /// Fast path: execute on the reactor thread if trivially cheap (e.g. a
    /// health check). Return the frame back to have it dispatched instead.
    fn try_inline(&self, frame: Self::Frame, _served: usize) -> Result<Reply, Self::Frame> {
        Err(frame)
    }

    /// Response written to connections rejected over budget (e.g. a 503
    /// with `Retry-After`). Always followed by a close.
    fn busy_response(&self) -> Vec<u8>;

    /// Response written when a read deadline expires mid-request (e.g. 408
    /// for a slow-loris client). `None` closes silently. Idle connections
    /// (empty buffer) always close silently.
    fn timeout_response(&self) -> Option<Vec<u8>> {
        None
    }

    /// The peer half-closed while `buf` holds an unframeable partial
    /// request. Return a final response (e.g. 400) or `None` to just close.
    fn eof_response(&self, _buf: &[u8], _served: usize) -> Option<Vec<u8>> {
        None
    }

    /// A connection was accepted into the reactor.
    fn on_open(&self) {}
    /// A connection completed its first keep-alive response.
    fn on_keepalive(&self) {}
    /// A connection closed; `was_keepalive` mirrors `on_keepalive`.
    fn on_close(&self, _was_keepalive: bool) {}
}

#[derive(Clone, Copy, Debug)]
pub struct ReactorOptions {
    /// Worker threads executing frames.
    pub workers: usize,
    /// Connection budget; accepts beyond it get the busy response.
    pub max_connections: usize,
    /// Deadline for reading one full request (covers the slow-loris case:
    /// the clock starts at accept / first byte of a new request).
    pub read_deadline: Duration,
    /// Deadline for an idle keep-alive connection between requests.
    pub idle_deadline: Duration,
    /// Deadline for draining a queued response to a stalled reader.
    pub write_deadline: Duration,
    /// How long shutdown waits for in-flight requests before force-closing.
    pub drain_deadline: Duration,
    /// Timer wheel granularity.
    pub tick: Duration,
    /// Largest buffer `Protocol::frame` must resolve (frame or reject);
    /// reads are backpressured at this size while a frame executes.
    pub max_frame_bytes: usize,
}

impl Default for ReactorOptions {
    fn default() -> ReactorOptions {
        ReactorOptions {
            workers: 1,
            max_connections: 10_240,
            read_deadline: Duration::from_secs(10),
            idle_deadline: Duration::from_secs(5),
            write_deadline: Duration::from_secs(30),
            drain_deadline: Duration::from_secs(5),
            tick: Duration::from_millis(50),
            max_frame_bytes: 16 * 1024 + 8 * 1024 * 1024 + 4096,
        }
    }
}

/// Wakes the reactor from another thread. Backed by a loopback socket pair
/// so it registers with `poll` like any other fd (no `eventfd`, no unix
/// specifics). Writes are nonblocking: a full pipe already means a wakeup
/// is pending, which is all we need.
#[derive(Clone)]
pub struct Waker {
    tx: Arc<TcpStream>,
}

impl Waker {
    pub fn wake(&self) {
        let _ = (&*self.tx).write(&[1u8]);
    }
}

fn waker_pair() -> io::Result<(Waker, TcpStream)> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx: Arc::new(tx) }, rx))
}

/// Stops a running reactor: flips the flag and wakes the loop so the drain
/// starts immediately rather than at the next tick.
#[derive(Clone)]
pub struct StopHandle {
    stop: Arc<AtomicBool>,
    waker: Waker,
}

impl StopHandle {
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
    }

    pub fn waker(&self) -> Waker {
        self.waker.clone()
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum DeadlineKind {
    Read,
    Idle,
    Write,
}

struct Conn {
    stream: TcpStream,
    gen: u64,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    served: usize,
    executing: bool,
    read_closed: bool,
    close_after_write: bool,
    entered_keepalive: bool,
    deadline: Option<(u64, DeadlineKind)>,
    /// Bytes moved since the deadline was last armed. Idle/write deadlines
    /// refresh on progress; spurious wakeups must not refresh anything.
    activity: bool,
}

struct Job<F> {
    token: usize,
    gen: u64,
    frame: F,
    served: usize,
}

struct Done {
    token: usize,
    gen: u64,
    bytes: Vec<u8>,
    keep_alive: bool,
}

enum PollSlot {
    Waker,
    Listener,
    Conn(usize),
}

pub struct Reactor<P: Protocol> {
    listener: TcpListener,
    proto: Arc<P>,
    opts: ReactorOptions,
    stats: Arc<NetStats>,
    stop: Arc<AtomicBool>,
    waker_rx: TcpStream,
    stop_handle: StopHandle,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    live: usize,
    next_gen: u64,
    wheel: Wheel,
    jobs_tx: Option<mpsc::Sender<Job<P::Frame>>>,
    done: Arc<Mutex<Vec<Done>>>,
    workers: Vec<JoinHandle<()>>,
}

impl<P: Protocol> Reactor<P> {
    pub fn new(
        listener: TcpListener,
        proto: Arc<P>,
        opts: ReactorOptions,
        stats: Arc<NetStats>,
        stop: Arc<AtomicBool>,
    ) -> io::Result<Reactor<P>> {
        listener.set_nonblocking(true)?;
        let (waker, waker_rx) = waker_pair()?;
        let stop_handle = StopHandle {
            stop: stop.clone(),
            waker,
        };
        let done: Arc<Mutex<Vec<Done>>> = Arc::new(Mutex::new(Vec::new()));

        let (jobs_tx, jobs_rx) = mpsc::channel::<Job<P::Frame>>();
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));
        let mut workers = Vec::new();
        for i in 0..opts.workers.max(1) {
            let rx = jobs_rx.clone();
            let proto = proto.clone();
            let done = done.clone();
            let waker = stop_handle.waker();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("net-worker-{i}"))
                    .spawn(move || loop {
                        let job = { rx.lock().unwrap().recv() };
                        let Ok(job) = job else { return };
                        let reply = proto.execute(job.frame, job.served);
                        done.lock().unwrap().push(Done {
                            token: job.token,
                            gen: job.gen,
                            bytes: reply.bytes,
                            keep_alive: reply.keep_alive,
                        });
                        waker.wake();
                    })
                    .expect("spawn net worker"),
            );
        }

        let tick = opts.tick.max(Duration::from_millis(1));
        Ok(Reactor {
            listener,
            proto,
            opts,
            stats,
            stop,
            waker_rx,
            stop_handle,
            conns: Vec::new(),
            free: Vec::new(),
            live: 0,
            next_gen: 1,
            wheel: Wheel::new(256, tick),
            jobs_tx: Some(jobs_tx),
            done,
            workers,
        })
    }

    pub fn stop_handle(&self) -> StopHandle {
        self.stop_handle.clone()
    }

    /// Run the event loop until stopped, then drain and join the workers.
    pub fn run(mut self) {
        let start = Instant::now();
        let mut pollfds: Vec<PollFd> = Vec::new();
        let mut slots: Vec<PollSlot> = Vec::new();
        let mut scratch = vec![0u8; 64 * 1024];
        let mut expired: Vec<Expired> = Vec::new();
        let mut draining = false;
        let mut drain_until = Instant::now();

        loop {
            if !draining && self.stop.load(Ordering::SeqCst) {
                draining = true;
                drain_until = Instant::now() + self.opts.drain_deadline;
                // Close everything not mid-request; in-flight work finishes.
                for token in 0..self.conns.len() {
                    let idle = match &self.conns[token] {
                        Some(c) => !c.executing && c.write_pos >= c.write_buf.len(),
                        None => false,
                    };
                    if idle {
                        self.close(token);
                    }
                }
            }
            if draining && (self.live == 0 || Instant::now() >= drain_until) {
                break;
            }

            pollfds.clear();
            slots.clear();
            pollfds.push(PollFd::new(sys::socket_fd(&self.waker_rx), POLLIN));
            slots.push(PollSlot::Waker);
            if !draining {
                pollfds.push(PollFd::new(sys::socket_fd(&self.listener), POLLIN));
                slots.push(PollSlot::Listener);
            }
            for (token, conn) in self.conns.iter().enumerate() {
                let Some(c) = conn else { continue };
                let mut events = 0i16;
                if !c.read_closed && c.read_buf.len() < self.opts.max_frame_bytes {
                    events |= POLLIN;
                }
                if c.write_pos < c.write_buf.len() {
                    events |= POLLOUT;
                }
                if events != 0 {
                    pollfds.push(PollFd::new(sys::socket_fd(&c.stream), events));
                    slots.push(PollSlot::Conn(token));
                }
            }

            // Wake at the next tick boundary so timers stay coarse but honest.
            let elapsed = start.elapsed();
            let tick = self.wheel.tick();
            let into_tick = Duration::from_nanos((elapsed.as_nanos() % tick.as_nanos()) as u64);
            let timeout = (tick - into_tick).max(Duration::from_millis(1));
            let _ = sys::poll(&mut pollfds, timeout);
            self.stats.poll_wakeups.fetch_add(1, Ordering::Relaxed);

            // Readiness, in registration order: waker, listener, connections.
            for (i, slot) in slots.iter().enumerate() {
                match slot {
                    PollSlot::Waker => {
                        if pollfds[i].readable() {
                            while let Ok(n) = (&self.waker_rx).read(&mut scratch[..64]) {
                                if n == 0 {
                                    break;
                                }
                            }
                        }
                    }
                    PollSlot::Listener => {
                        if pollfds[i].readable() {
                            self.accept_ready(start);
                        }
                    }
                    PollSlot::Conn(token) => {
                        let token = *token;
                        if pollfds[i].readable() {
                            self.read_ready(token, start, &mut scratch);
                        }
                        if self.conns[token].is_some() && pollfds[i].writable() {
                            self.write_ready(token, start);
                        }
                    }
                }
            }

            // Completions from the worker pool.
            let finished: Vec<Done> = std::mem::take(&mut *self.done.lock().unwrap());
            for done in finished {
                self.complete(done, start);
            }

            // Deadlines.
            expired.clear();
            let now_tick = self.wheel.tick_at(start.elapsed());
            self.wheel.advance(now_tick, &mut expired);
            for e in std::mem::take(&mut expired) {
                self.deadline_fired(e);
            }
        }

        // Workers exit when the job channel closes.
        drop(self.jobs_tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        for token in 0..self.conns.len() {
            if self.conns[token].is_some() {
                self.close(token);
            }
        }
    }

    fn accept_ready(&mut self, start: Instant) {
        loop {
            let (stream, _addr) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // Transient accept failures (EMFILE, ECONNABORTED, ...):
                // give up until the next readiness event.
                Err(_) => break,
            };
            if self.live >= self.opts.max_connections {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                let busy = self.proto.busy_response();
                let _ = (&stream).write(&busy);
                // Drain whatever the client already sent and half-close:
                // closing a socket with unread input turns into an RST,
                // which would destroy the busy response before the client
                // reads it.
                let _ = stream.set_nonblocking(true);
                let mut scratch = [0u8; 4096];
                while matches!((&stream).read(&mut scratch), Ok(n) if n > 0) {}
                let _ = stream.shutdown(std::net::Shutdown::Write);
                continue; // drop: close
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            self.stats.accepted.fetch_add(1, Ordering::Relaxed);
            self.stats.open.fetch_add(1, Ordering::Relaxed);
            self.proto.on_open();

            let gen = self.next_gen;
            self.next_gen += 1;
            let conn = Conn {
                stream,
                gen,
                read_buf: Vec::new(),
                write_buf: Vec::new(),
                write_pos: 0,
                served: 0,
                executing: false,
                read_closed: false,
                close_after_write: false,
                entered_keepalive: false,
                deadline: None,
                activity: false,
            };
            let token = match self.free.pop() {
                Some(t) => {
                    self.conns[t] = Some(conn);
                    t
                }
                None => {
                    self.conns.push(Some(conn));
                    self.conns.len() - 1
                }
            };
            self.live += 1;
            // The read deadline starts at accept: a connection that never
            // sends a full request is a slow-loris by definition.
            self.arm(token, start, DeadlineKind::Read);
        }
    }

    fn read_ready(&mut self, token: usize, start: Instant, scratch: &mut [u8]) {
        let mut closed = false;
        {
            let Some(conn) = self.conns[token].as_mut() else {
                return;
            };
            loop {
                if conn.read_buf.len() >= self.opts.max_frame_bytes {
                    break; // backpressure; POLLIN deregistered next loop
                }
                match (&conn.stream).read(scratch) {
                    Ok(0) => {
                        conn.read_closed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.read_buf.extend_from_slice(&scratch[..n]);
                        conn.activity = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        closed = true;
                        break;
                    }
                }
            }
        }
        if closed {
            self.close(token);
            return;
        }
        self.pump(token, start);
    }

    /// Frame as many requests as can be answered right now. At most one
    /// frame may be executing; everything else stays buffered.
    fn pump(&mut self, token: usize, start: Instant) {
        loop {
            let (buf_len, served, executing, closing) = {
                let Some(conn) = self.conns[token].as_ref() else {
                    return;
                };
                (
                    conn.read_buf.len(),
                    conn.served,
                    conn.executing,
                    conn.close_after_write,
                )
            };
            if executing || closing {
                break;
            }
            let framed = {
                let conn = self.conns[token].as_ref().unwrap();
                self.proto.frame(&conn.read_buf, served)
            };
            match framed {
                Framed::Incomplete => {
                    let eof = {
                        let conn = self.conns[token].as_ref().unwrap();
                        conn.read_closed
                    };
                    if eof {
                        if buf_len > 0 {
                            // Peer hung up mid-request: give the protocol a
                            // chance to answer (the blocking engine's 400).
                            let resp = {
                                let conn = self.conns[token].as_ref().unwrap();
                                self.proto.eof_response(&conn.read_buf, served)
                            };
                            let conn = self.conns[token].as_mut().unwrap();
                            conn.read_buf.clear();
                            if let Some(bytes) = resp {
                                conn.write_buf.extend_from_slice(&bytes);
                            }
                            conn.close_after_write = true;
                        } else {
                            self.close(token);
                            return;
                        }
                    }
                    break;
                }
                Framed::Frame { consumed, frame } => {
                    let (served, gen) = {
                        let conn = self.conns[token].as_mut().unwrap();
                        conn.read_buf.drain(..consumed);
                        conn.served += 1;
                        (conn.served, conn.gen)
                    };
                    match self.proto.try_inline(frame, served) {
                        Ok(reply) => {
                            self.stats.inline_served.fetch_add(1, Ordering::Relaxed);
                            let conn = self.conns[token].as_mut().unwrap();
                            conn.write_buf.extend_from_slice(&reply.bytes);
                            if !reply.keep_alive {
                                conn.close_after_write = true;
                            }
                        }
                        Err(frame) => {
                            self.stats.dispatched.fetch_add(1, Ordering::Relaxed);
                            let conn = self.conns[token].as_mut().unwrap();
                            conn.executing = true;
                            if let Some(tx) = &self.jobs_tx {
                                let _ = tx.send(Job {
                                    token,
                                    gen,
                                    frame,
                                    served,
                                });
                            }
                        }
                    }
                }
                Framed::Reject { response } => {
                    let conn = self.conns[token].as_mut().unwrap();
                    conn.read_buf.clear();
                    conn.write_buf.extend_from_slice(&response);
                    conn.close_after_write = true;
                }
            }
        }
        self.flush(token, start);
    }

    fn write_ready(&mut self, token: usize, start: Instant) {
        self.flush(token, start);
    }

    /// Push queued response bytes out, then settle the connection's next
    /// state: close, keep framing pipelined input, or go idle.
    fn flush(&mut self, token: usize, start: Instant) {
        let mut closed = false;
        let mut wrote_keepalive_response = false;
        {
            let Some(conn) = self.conns[token].as_mut() else {
                return;
            };
            while conn.write_pos < conn.write_buf.len() {
                match (&conn.stream).write(&conn.write_buf[conn.write_pos..]) {
                    Ok(0) => {
                        closed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.write_pos += n;
                        conn.activity = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        closed = true;
                        break;
                    }
                }
            }
            if !closed && conn.write_pos >= conn.write_buf.len() && !conn.write_buf.is_empty() {
                conn.write_buf.clear();
                conn.write_pos = 0;
                if conn.close_after_write {
                    closed = true;
                } else if conn.served > 0 && !conn.entered_keepalive {
                    conn.entered_keepalive = true;
                    wrote_keepalive_response = true;
                }
            }
        }
        if wrote_keepalive_response {
            self.proto.on_keepalive();
        }
        if closed {
            self.close(token);
            return;
        }
        self.settle(token, start);
    }

    /// Re-derive the armed deadline from the connection's state and try to
    /// make progress on buffered pipelined input.
    fn settle(&mut self, token: usize, start: Instant) {
        let draining = self.stop.load(Ordering::SeqCst);
        let (executing, pending_write, buf_len, read_closed, closing) = {
            let Some(conn) = self.conns[token].as_ref() else {
                return;
            };
            (
                conn.executing,
                conn.write_pos < conn.write_buf.len(),
                conn.read_buf.len(),
                conn.read_closed,
                conn.close_after_write,
            )
        };
        if executing {
            self.disarm(token);
            return;
        }
        if pending_write {
            self.arm(token, start, DeadlineKind::Write);
            return;
        }
        if closing || draining {
            // Nothing pending (any final response was flushed by `flush`),
            // or the server is draining and this connection just went quiet.
            self.close(token);
            return;
        }
        if buf_len > 0 {
            // A pipelined request may already be complete in the buffer.
            self.pump_if_frameable(token, start);
            return;
        }
        if read_closed {
            self.close(token);
            return;
        }
        let kind = if self.conns[token].as_ref().map_or(0, |c| c.served) > 0 {
            DeadlineKind::Idle
        } else {
            DeadlineKind::Read
        };
        self.arm(token, start, kind);
    }

    /// `settle` → `pump` without recursing through `flush` → `settle`
    /// forever: pump() only calls flush() when it made progress, and a
    /// buffer that stays `Incomplete` arms the read deadline here.
    fn pump_if_frameable(&mut self, token: usize, start: Instant) {
        let incomplete = {
            let Some(conn) = self.conns[token].as_ref() else {
                return;
            };
            matches!(
                self.proto.frame(&conn.read_buf, conn.served),
                Framed::Incomplete
            )
        };
        if incomplete {
            let eof = self.conns[token].as_ref().is_some_and(|c| c.read_closed);
            if eof {
                self.pump(token, start); // handles the mid-request EOF path
            } else {
                self.arm(token, start, DeadlineKind::Read);
            }
        } else {
            self.pump(token, start);
        }
    }

    fn complete(&mut self, done: Done, start: Instant) {
        let Some(conn) = self.conns[done.token].as_mut() else {
            return;
        };
        if conn.gen != done.gen {
            return; // connection was closed and the slot reused
        }
        conn.executing = false;
        conn.write_buf.extend_from_slice(&done.bytes);
        if !done.keep_alive {
            conn.close_after_write = true;
        }
        self.flush(done.token, start);
    }

    fn deadline_fired(&mut self, e: Expired) {
        let kind = {
            let Some(conn) = self.conns[e.token].as_ref() else {
                return;
            };
            if conn.gen != e.gen {
                return;
            }
            match conn.deadline {
                Some((at, kind)) if at == e.at => kind,
                _ => return, // re-armed since; stale entry
            }
        };
        self.stats.timer_expirations.fetch_add(1, Ordering::Relaxed);
        let mid_request = {
            let conn = self.conns[e.token].as_ref().unwrap();
            kind == DeadlineKind::Read && !conn.read_buf.is_empty()
        };
        if mid_request {
            if let Some(bytes) = self.proto.timeout_response() {
                // Best effort: one write, then close regardless.
                let conn = self.conns[e.token].as_ref().unwrap();
                let _ = (&conn.stream).write(&bytes);
            }
        }
        self.close(e.token);
    }

    fn arm(&mut self, token: usize, start: Instant, kind: DeadlineKind) {
        let dur = match kind {
            DeadlineKind::Read => self.opts.read_deadline,
            DeadlineKind::Idle => self.opts.idle_deadline,
            DeadlineKind::Write => self.opts.write_deadline,
        };
        let at = self.wheel.tick_at(start.elapsed() + dur).max(1);
        let Some(conn) = self.conns[token].as_mut() else {
            return;
        };
        let rearm = match conn.deadline {
            None => true,
            // A different state: the old entry goes stale, arm fresh.
            Some((_, armed)) if armed != kind => true,
            // The read deadline covers the *whole* request — a slow-loris
            // dribbling bytes must not extend it, and neither may a
            // spurious wakeup.
            Some(_) if kind == DeadlineKind::Read => false,
            // Idle/write deadlines refresh only on real progress.
            Some(_) => conn.activity,
        };
        if !rearm {
            return;
        }
        conn.activity = false;
        conn.deadline = Some((at, kind));
        let gen = conn.gen;
        self.wheel.insert(at, token, gen);
    }

    fn disarm(&mut self, token: usize) {
        if let Some(conn) = self.conns[token].as_mut() {
            conn.deadline = None; // wheel entry turns stale, dropped on expiry
        }
    }

    fn close(&mut self, token: usize) {
        let Some(conn) = self.conns[token].take() else {
            return;
        };
        self.free.push(token);
        self.live -= 1;
        self.stats.open.fetch_sub(1, Ordering::Relaxed);
        self.proto.on_close(conn.entered_keepalive);
        // Drop closes the socket; an executing frame for this gen may still
        // complete later and is discarded by the gen check.
    }
}
