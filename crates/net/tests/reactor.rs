//! Reactor behavior pinned against a toy newline-framed protocol, so the
//! event loop's contracts (framing, pipelining, budget, deadlines, drain)
//! are tested without any HTTP in the way.

use adds_net::reactor::{Framed, Protocol, Reactor, ReactorOptions, Reply, StopHandle};
use adds_net::stats::NetStats;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Lines in, uppercased lines out. `quit` closes after responding, `!x` is
/// served inline on the reactor thread, `slow` sleeps in execute.
struct LineProto;

impl Protocol for LineProto {
    type Frame = String;

    fn frame(&self, buf: &[u8], _served: usize) -> Framed<String> {
        match buf.iter().position(|&b| b == b'\n') {
            None => Framed::Incomplete,
            Some(i) => {
                let line = String::from_utf8_lossy(&buf[..i]).into_owned();
                if line == "bad" {
                    Framed::Reject {
                        response: b"REJECT\n".to_vec(),
                    }
                } else {
                    Framed::Frame {
                        consumed: i + 1,
                        frame: line,
                    }
                }
            }
        }
    }

    fn execute(&self, frame: String, _served: usize) -> Reply {
        if frame == "slow" {
            thread::sleep(Duration::from_millis(300));
        }
        let keep_alive = frame != "quit";
        Reply {
            bytes: format!("{}\n", frame.to_uppercase()).into_bytes(),
            keep_alive,
        }
    }

    fn try_inline(&self, frame: String, _served: usize) -> Result<Reply, String> {
        if let Some(rest) = frame.strip_prefix('!') {
            Ok(Reply {
                bytes: format!("INLINE:{rest}\n").into_bytes(),
                keep_alive: true,
            })
        } else {
            Err(frame)
        }
    }

    fn busy_response(&self) -> Vec<u8> {
        b"BUSY\n".to_vec()
    }

    fn timeout_response(&self) -> Option<Vec<u8>> {
        Some(b"TIMEOUT\n".to_vec())
    }

    fn eof_response(&self, _buf: &[u8], _served: usize) -> Option<Vec<u8>> {
        Some(b"EOF\n".to_vec())
    }
}

struct TestServer {
    addr: std::net::SocketAddr,
    stop: StopHandle,
    stats: Arc<NetStats>,
    join: Option<thread::JoinHandle<()>>,
}

impl TestServer {
    fn connect(&self) -> TcpStream {
        let s = TcpStream::connect(self.addr).unwrap();
        s.set_nodelay(true).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.stop.stop();
        if let Some(j) = self.join.take() {
            j.join().unwrap();
        }
    }
}

fn spawn(opts: ReactorOptions) -> TestServer {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stats = Arc::new(NetStats::default());
    let stop = Arc::new(AtomicBool::new(false));
    let reactor = Reactor::new(listener, Arc::new(LineProto), opts, stats.clone(), stop).unwrap();
    let handle = reactor.stop_handle();
    let join = thread::spawn(move || reactor.run());
    TestServer {
        addr,
        stop: handle,
        stats,
        join: Some(join),
    }
}

fn fast_opts() -> ReactorOptions {
    ReactorOptions {
        workers: 2,
        tick: Duration::from_millis(10),
        ..ReactorOptions::default()
    }
}

fn read_line(r: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    line
}

#[test]
fn round_trip_and_pipelining() {
    let srv = spawn(fast_opts());
    let mut s = srv.connect();
    // Three pipelined requests in a single write, one dispatched, one
    // inline, one dispatched: responses must come back in order.
    s.write_all(b"hello\n!ping\nworld\n").unwrap();
    let mut r = BufReader::new(s.try_clone().unwrap());
    assert_eq!(read_line(&mut r), "HELLO\n");
    assert_eq!(read_line(&mut r), "INLINE:ping\n");
    assert_eq!(read_line(&mut r), "WORLD\n");
    assert!(
        srv.stats
            .dispatched
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 2
    );
    assert!(
        srv.stats
            .inline_served
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
}

#[test]
fn one_byte_dribble_writes_still_frame() {
    let srv = spawn(fast_opts());
    let mut s = srv.connect();
    for b in b"dribble\n" {
        s.write_all(&[*b]).unwrap();
        s.flush().unwrap();
        thread::sleep(Duration::from_millis(2));
    }
    let mut r = BufReader::new(s);
    assert_eq!(read_line(&mut r), "DRIBBLE\n");
}

#[test]
fn reject_answers_then_closes() {
    let srv = spawn(fast_opts());
    let mut s = srv.connect();
    s.write_all(b"bad\nignored\n").unwrap();
    let mut r = BufReader::new(s);
    assert_eq!(read_line(&mut r), "REJECT\n");
    let mut rest = String::new();
    r.read_to_string(&mut rest).unwrap();
    assert_eq!(rest, "", "connection must close after a reject");
}

#[test]
fn quit_closes_after_response() {
    let srv = spawn(fast_opts());
    let mut s = srv.connect();
    s.write_all(b"quit\n").unwrap();
    let mut r = BufReader::new(s);
    assert_eq!(read_line(&mut r), "QUIT\n");
    let mut rest = String::new();
    r.read_to_string(&mut rest).unwrap();
    assert_eq!(rest, "");
}

#[test]
fn budget_exhaustion_gets_busy_response() {
    let opts = ReactorOptions {
        max_connections: 1,
        ..fast_opts()
    };
    let srv = spawn(opts);
    let mut first = srv.connect();
    first.write_all(b"a\n").unwrap();
    let mut r1 = BufReader::new(first.try_clone().unwrap());
    assert_eq!(read_line(&mut r1), "A\n"); // first conn is in and serving
    let second = srv.connect();
    let mut r2 = BufReader::new(second);
    let mut got = String::new();
    r2.read_to_string(&mut got).unwrap();
    assert_eq!(
        got, "BUSY\n",
        "over-budget connection gets the busy response"
    );
    assert_eq!(
        srv.stats
            .rejected
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    // The first connection is unaffected.
    first.write_all(b"b\n").unwrap();
    assert_eq!(read_line(&mut r1), "B\n");
}

#[test]
fn idle_connections_are_reaped() {
    let opts = ReactorOptions {
        idle_deadline: Duration::from_millis(80),
        read_deadline: Duration::from_millis(500),
        ..fast_opts()
    };
    let srv = spawn(opts);
    let mut s = srv.connect();
    s.write_all(b"a\n").unwrap();
    let mut r = BufReader::new(s);
    assert_eq!(read_line(&mut r), "A\n");
    // Now idle: the server should close us within the idle deadline + slack.
    let mut rest = String::new();
    let begin = Instant::now();
    r.read_to_string(&mut rest).unwrap();
    assert_eq!(rest, "");
    assert!(
        begin.elapsed() < Duration::from_secs(3),
        "idle reap took too long"
    );
    assert!(
        srv.stats
            .timer_expirations
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
}

#[test]
fn slow_loris_hits_read_deadline() {
    let opts = ReactorOptions {
        read_deadline: Duration::from_millis(120),
        idle_deadline: Duration::from_secs(30),
        ..fast_opts()
    };
    let srv = spawn(opts);
    let mut s = srv.connect();
    // Dribble a request that never completes.
    s.write_all(b"lo").unwrap();
    s.flush().unwrap();
    let mut r = BufReader::new(s);
    let mut got = String::new();
    r.read_to_string(&mut got).unwrap();
    assert_eq!(
        got, "TIMEOUT\n",
        "mid-request deadline answers before closing"
    );
    assert!(
        srv.stats
            .timer_expirations
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
}

#[test]
fn eof_mid_request_gets_final_response() {
    let srv = spawn(fast_opts());
    let mut s = srv.connect();
    s.write_all(b"partial-no-newline").unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let mut r = BufReader::new(s);
    let mut got = String::new();
    r.read_to_string(&mut got).unwrap();
    assert_eq!(got, "EOF\n");
}

#[test]
fn drain_finishes_in_flight_work() {
    let srv = spawn(fast_opts());
    let mut s = srv.connect();
    s.write_all(b"slow\n").unwrap();
    thread::sleep(Duration::from_millis(50)); // let the frame reach a worker
    srv.stop.stop();
    let mut r = BufReader::new(s);
    let mut got = String::new();
    r.read_to_string(&mut got).unwrap();
    assert_eq!(got, "SLOW\n", "in-flight request completes during drain");
}

#[test]
fn stop_reaps_idle_connections_immediately() {
    let srv = spawn(fast_opts());
    let s = srv.connect();
    thread::sleep(Duration::from_millis(50));
    srv.stop.stop();
    let mut r = BufReader::new(s);
    let mut got = String::new();
    let begin = Instant::now();
    match r.read_to_string(&mut got) {
        Ok(_) => assert_eq!(got, ""),
        Err(e) => assert_ne!(e.kind(), ErrorKind::WouldBlock),
    }
    assert!(
        begin.elapsed() < Duration::from_secs(3),
        "drain hung on an idle conn"
    );
}
