//! # adds — Abstract Description of Data Structures
//!
//! A reproduction of *"Applying an Abstract Data Structure Description
//! Approach to Parallelizing Scientific Pointer Programs"* (Hummel, Nicolau
//! & Hendren, ICPP 1992) as a Rust workspace. This umbrella crate re-exports
//! the pieces:
//!
//! * [`lang`] — the IL: a C-like pointer language with **ADDS shape
//!   declarations** (dimensions, forward/backward routes, uniqueness,
//!   independence), parser, type checker, pretty printer.
//! * [`core`] — **general path matrix analysis**: per-program-point path
//!   matrices, abstraction validation, alias queries, loop dependence
//!   testing, and the parallelizing transformations (strip-mining §4.3.3,
//!   unrolling, software pipelining).
//! * [`klimit`] — the §2.1 **prior-work baselines** (conservative blob,
//!   k-limited storage graphs, CWZ-style allocation sites) over the same
//!   IL, for the runnable precision ladder.
//! * [`machine`] — the execution substrate: IL interpreter with a simulated
//!   Sequent-class MIMD cost model, speculative traversability, and dynamic
//!   conflict detection.
//! * [`nbody`] — the paper's workload natively: Barnes–Hut octree N-body
//!   with the strip-mined parallel loops on real threads, plus the §4.2
//!   Water-style O(N²) array MD counterpoint.
//! * [`structures`] — the §3.1 example structures (one-way lists, bignums,
//!   polynomials, orthogonal lists, 2-D range trees, quadtrees) with
//!   run-time shape validators.
//! * [`query`] — the pipeline as a **demand-driven session**: memoized
//!   queries per layer (`parsed`, `typed`, `effects`, `loop_verdict`,
//!   `transformed`, `compiled`, `run`) under the `(sha256, fingerprint)`
//!   contract, shared by the CLI, the HTTP server, and — via [`api`] —
//!   library consumers.
//! * [`net`] — the **event-driven server core**: a dependency-free
//!   `poll(2)` reactor with nonblocking sockets, a connection budget with
//!   backpressure (503 + `Retry-After`), a coarse timer wheel for
//!   idle/read/write deadlines, and worker-pool execution handoff — the
//!   engine under the HTTP front end.
//! * [`obs`] — the observability substrate threaded through all of the
//!   above: lock-light span tracing with Chrome `trace_event` export
//!   (`--trace out.json`), plus atomic counters/gauges and log-scale
//!   latency histograms behind `GET /v1/metrics` and `/v1/stats`.
//!
//! ## Quickstart
//!
//! ```
//! // Declare a list shape, analyze the paper's scaling loop, and watch the
//! // analysis prove that iterations never alias:
//! let compiled = adds::core::compile(adds::lang::programs::LIST_SCALE_ADDS).unwrap();
//! let analysis = compiled.analysis("scale").unwrap();
//! let fixpoint = &analysis.loops[0].bottom;
//! assert!(!fixpoint.pm.get("p'", "p").may_alias());   // p moves every iteration
//! assert_eq!(fixpoint.pm.get("head", "p").display(), "next+");
//! ```

#![warn(missing_docs)]

pub use adds_core as core;
pub use adds_klimit as klimit;
pub use adds_lang as lang;
pub use adds_machine as machine;
pub use adds_nbody as nbody;
pub use adds_net as net;
pub use adds_obs as obs;
pub use adds_query as query;
pub use adds_store as store;
pub use adds_structures as structures;

/// The **library API**: the same demand-driven [`Session`](api::Session)
/// the CLI and the HTTP server are frontends over, re-exported for
/// programmatic consumers.
///
/// A session memoizes every pipeline layer by content hash, so repeated
/// and dependent requests share work — `parallelize` after `analyze` of
/// the same bytes re-parses nothing, and identical concurrent requests
/// compute once (single flight):
///
/// ```
/// use adds::api::{Session, Stage, StageRequest};
///
/// let session = Session::new();
/// let src = adds::lang::programs::LIST_SCALE_ADDS;
///
/// // Typed request → shared, cached report (the CLI/server wire format).
/// let analyzed = session.stage(src, StageRequest::new(Stage::Analyze));
/// assert!(analyzed.report.ok);
///
/// // Artifact-level queries ride the same cache:
/// let verdict = session.db().loop_verdict(src, "scale", 0);
/// let verdict = verdict.as_ref().as_ref().unwrap().as_ref().unwrap();
/// assert!(verdict.parallelizable);
///
/// // The dependent stage starts from the cached analysis artifacts.
/// let parallelized = session.parallelize(src);
/// assert!(parallelized.report.ok);
/// let digest = adds::query::db::sha256(src.as_bytes());
/// assert_eq!(session.db().computes(adds::query::QueryKind::Parsed, &digest), 1);
/// ```
pub mod api {
    pub use adds_query::db::{AnalysisDb, Failure, QueryKind, QueryResult};
    pub use adds_query::session::{
        RunOutcome, RunRequest, Session, SessionConfig, Stage, StageOutcome, StageRequest,
    };
}
