//! # adds — Abstract Description of Data Structures
//!
//! A reproduction of *"Applying an Abstract Data Structure Description
//! Approach to Parallelizing Scientific Pointer Programs"* (Hummel, Nicolau
//! & Hendren, ICPP 1992) as a Rust workspace. This umbrella crate re-exports
//! the pieces:
//!
//! * [`lang`] — the IL: a C-like pointer language with **ADDS shape
//!   declarations** (dimensions, forward/backward routes, uniqueness,
//!   independence), parser, type checker, pretty printer.
//! * [`core`] — **general path matrix analysis**: per-program-point path
//!   matrices, abstraction validation, alias queries, loop dependence
//!   testing, and the parallelizing transformations (strip-mining §4.3.3,
//!   unrolling, software pipelining).
//! * [`klimit`] — the §2.1 **prior-work baselines** (conservative blob,
//!   k-limited storage graphs, CWZ-style allocation sites) over the same
//!   IL, for the runnable precision ladder.
//! * [`machine`] — the execution substrate: IL interpreter with a simulated
//!   Sequent-class MIMD cost model, speculative traversability, and dynamic
//!   conflict detection.
//! * [`nbody`] — the paper's workload natively: Barnes–Hut octree N-body
//!   with the strip-mined parallel loops on real threads, plus the §4.2
//!   Water-style O(N²) array MD counterpoint.
//! * [`structures`] — the §3.1 example structures (one-way lists, bignums,
//!   polynomials, orthogonal lists, 2-D range trees, quadtrees) with
//!   run-time shape validators.
//!
//! ## Quickstart
//!
//! ```
//! // Declare a list shape, analyze the paper's scaling loop, and watch the
//! // analysis prove that iterations never alias:
//! let compiled = adds::core::compile(adds::lang::programs::LIST_SCALE_ADDS).unwrap();
//! let analysis = compiled.analysis("scale").unwrap();
//! let fixpoint = &analysis.loops[0].bottom;
//! assert!(!fixpoint.pm.get("p'", "p").may_alias());   // p moves every iteration
//! assert_eq!(fixpoint.pm.get("head", "p").display(), "next+");
//! ```

#![warn(missing_docs)]

pub use adds_core as core;
pub use adds_klimit as klimit;
pub use adds_lang as lang;
pub use adds_machine as machine;
pub use adds_nbody as nbody;
pub use adds_structures as structures;
