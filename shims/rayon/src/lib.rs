//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this shim implements
//! the subset of rayon used by `adds-cli`'s batch executor on top of
//! `std::thread::scope`: `slice.par_iter().map(f).collect::<Vec<_>>()` plus
//! the global [`ThreadPoolBuilder`] thread-count knob. Items are distributed
//! to worker threads in contiguous chunks and results are returned in input
//! order, which matches rayon's `collect` semantics for indexed iterators.
//!
//! This is not a work-stealing scheduler — chunking is static — but for the
//! CLI's per-program pipeline jobs (coarse, similar-cost items) the
//! difference is noise.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads the global "pool" uses.
pub fn current_num_threads() -> usize {
    let configured = GLOBAL_THREADS.load(Ordering::Relaxed);
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Builder for the global thread pool, mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error from [`ThreadPoolBuilder::build_global`] (never produced here; the
/// shim allows reconfiguration, where real rayon errors on the second call).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("global thread pool already initialized")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Start building.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker thread count (0 = one per available core).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install the configuration globally.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Parallel iterator traits and adaptors.
pub mod iter {
    use super::current_num_threads;

    /// Conversion of `&collection` into a parallel iterator, mirroring
    /// `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// The borrowed item type.
        type Item: 'data;
        /// Create a parallel iterator over `&self`'s items.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { slice: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { slice: self }
        }
    }

    /// Parallel iterator over `&[T]`.
    pub struct ParIter<'data, T> {
        slice: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        /// Map each item through `f` in parallel.
        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
        where
            F: Fn(&'data T) -> R + Sync,
            R: Send,
        {
            ParMap {
                slice: self.slice,
                f,
            }
        }
    }

    /// The result of [`ParIter::map`].
    pub struct ParMap<'data, T, F> {
        slice: &'data [T],
        f: F,
    }

    impl<'data, T, F, R> ParMap<'data, T, F>
    where
        T: Sync,
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        /// Execute the map on worker threads and collect results in input
        /// order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let n = self.slice.len();
            let threads = current_num_threads().clamp(1, n.max(1));
            let f = &self.f;
            if threads <= 1 || n <= 1 {
                return self.slice.iter().map(f).collect();
            }
            let chunk = n.div_ceil(threads);
            let mut parts: Vec<Vec<R>> = Vec::with_capacity(threads);
            std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .slice
                    .chunks(chunk)
                    .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                    .collect();
                for h in handles {
                    parts.push(h.join().expect("rayon shim worker panicked"));
                }
            });
            parts.into_iter().flatten().collect()
        }
    }
}

/// Common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = items.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn respects_configured_jobs() {
        crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build_global()
            .unwrap();
        assert_eq!(crate::current_num_threads(), 3);
        let items = vec![1u32, 2, 3, 4, 5];
        let sq: Vec<u32> = items.par_iter().map(|x| x * x).collect();
        assert_eq!(sq, vec![1, 4, 9, 16, 25]);
        crate::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7u8];
        let out: Vec<u8> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
