//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this shim implements
//! the subset of rayon used by `adds-cli`'s batch executor on top of
//! `std::thread::scope`: `slice.par_iter().map(f).collect::<Vec<_>>()` plus
//! the global [`ThreadPoolBuilder`] thread-count knob. Results are returned
//! in input order, which matches rayon's `collect` semantics for indexed
//! iterators.
//!
//! Scheduling is *chunk-stealing*: workers claim contiguous chunks of the
//! shared work list from an atomic index until it is drained, so a batch
//! with a few expensive programs no longer serializes behind whichever
//! worker statically owned them. Deviations from real rayon:
//!
//! * no work-stealing deques — claiming is a single shared counter rather
//!   than per-worker queues with steal-half, which is enough for the CLI's
//!   coarse per-program jobs but would contend on very fine-grained items;
//! * the chunk size is fixed at claim time (`len / (threads * 4)`, min 1)
//!   instead of rayon's adaptive splitting;
//! * `build_global` may be called repeatedly (real rayon errors on the
//!   second call).
//!
//! A note on throughput numbers: wall-clock speedups measured through this
//! shim (batch mode, the native n-body benches) reflect the host the run
//! happened on — CI containers are often single-core and/or throttled, so
//! cross-run comparisons of absolute times are meaningless there. The
//! simulated machine's cycle counts (and `BENCH_machine.json`'s
//! engine-vs-engine ratios, measured back-to-back on one host) are the
//! numbers that transfer across machines.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads the global "pool" uses.
pub fn current_num_threads() -> usize {
    let configured = GLOBAL_THREADS.load(Ordering::Relaxed);
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Builder for the global thread pool, mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error from [`ThreadPoolBuilder::build_global`] (never produced here; the
/// shim allows reconfiguration, where real rayon errors on the second call).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("global thread pool already initialized")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Start building.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker thread count (0 = one per available core).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install the configuration globally.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Parallel iterator traits and adaptors.
pub mod iter {
    use super::current_num_threads;

    /// Conversion of `&collection` into a parallel iterator, mirroring
    /// `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// The borrowed item type.
        type Item: 'data;
        /// Create a parallel iterator over `&self`'s items.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { slice: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { slice: self }
        }
    }

    /// Parallel iterator over `&[T]`.
    pub struct ParIter<'data, T> {
        slice: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        /// Map each item through `f` in parallel.
        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
        where
            F: Fn(&'data T) -> R + Sync,
            R: Send,
        {
            ParMap {
                slice: self.slice,
                f,
            }
        }
    }

    /// The result of [`ParIter::map`].
    pub struct ParMap<'data, T, F> {
        slice: &'data [T],
        f: F,
    }

    impl<'data, T, F, R> ParMap<'data, T, F>
    where
        T: Sync,
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        /// Execute the map on worker threads and collect results in input
        /// order. Workers claim chunks from a shared atomic index
        /// (chunk-stealing), so uneven per-item cost balances across
        /// threads.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let n = self.slice.len();
            let threads = current_num_threads().clamp(1, n.max(1));
            let f = &self.f;
            if threads <= 1 || n <= 1 {
                return self.slice.iter().map(f).collect();
            }
            // Several chunks per worker: small enough to balance, large
            // enough to keep the counter cold.
            let chunk = (n / (threads * 4)).max(1);
            let next = std::sync::atomic::AtomicUsize::new(0);
            let slice = self.slice;
            let mut parts: Vec<(usize, Vec<R>)> = Vec::new();
            std::thread::scope(|s| {
                let next = &next;
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        s.spawn(move || {
                            let mut done: Vec<(usize, Vec<R>)> = Vec::new();
                            loop {
                                let start =
                                    next.fetch_add(chunk, std::sync::atomic::Ordering::Relaxed);
                                if start >= n {
                                    return done;
                                }
                                let end = (start + chunk).min(n);
                                done.push((
                                    start,
                                    slice[start..end].iter().map(f).collect::<Vec<R>>(),
                                ));
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    parts.extend(h.join().expect("rayon shim worker panicked"));
                }
            });
            // Chunks complete out of order; reassemble by start index.
            parts.sort_by_key(|(start, _)| *start);
            parts.into_iter().flat_map(|(_, rs)| rs).collect()
        }
    }
}

/// Common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    /// Tests that reconfigure the global thread count serialize on this
    /// lock so they don't observe each other's settings.
    static GLOBAL_CONFIG_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = items.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn respects_configured_jobs() {
        let _guard = GLOBAL_CONFIG_LOCK.lock().unwrap();
        crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build_global()
            .unwrap();
        assert_eq!(crate::current_num_threads(), 3);
        let items = vec![1u32, 2, 3, 4, 5];
        let sq: Vec<u32> = items.par_iter().map(|x| x * x).collect();
        assert_eq!(sq, vec![1, 4, 9, 16, 25]);
        crate::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
    }

    #[test]
    fn uneven_work_balances_and_keeps_order() {
        let _guard = GLOBAL_CONFIG_LOCK.lock().unwrap();
        // One pathologically expensive item at the front: static chunking
        // would serialize everything behind worker 0; chunk-stealing lets
        // the other workers drain the rest. Correctness check here is
        // order preservation — balance shows up as wall-clock, which a unit
        // test should not assert on.
        crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build_global()
            .unwrap();
        let items: Vec<u64> = (0..257).collect();
        let out: Vec<u64> = items
            .par_iter()
            .map(|&x| {
                if x == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                x * 3
            })
            .collect();
        assert_eq!(out, (0..257).map(|x| x * 3).collect::<Vec<_>>());
        crate::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
    }

    #[test]
    fn chunk_claims_cover_exactly_once() {
        let _guard = GLOBAL_CONFIG_LOCK.lock().unwrap();
        // Every index is mapped exactly once even when threads > items and
        // the chunk arithmetic degenerates to 1.
        crate::ThreadPoolBuilder::new()
            .num_threads(8)
            .build_global()
            .unwrap();
        let items: Vec<usize> = (0..13).collect();
        let sum: usize = items
            .par_iter()
            .map(|&x| x)
            .collect::<Vec<_>>()
            .into_iter()
            .sum();
        assert_eq!(sum, (0..13).sum::<usize>());
        crate::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7u8];
        let out: Vec<u8> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
