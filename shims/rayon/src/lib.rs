//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this shim implements
//! the subset of rayon used by the workspace on top of `std::thread::scope`:
//!
//! * `slice.par_iter().map(f).collect::<Vec<_>>()` plus the global
//!   [`ThreadPoolBuilder`] thread-count knob (the original surface, used by
//!   `adds-cli` and the n-body benches). Results are returned in input
//!   order, which matches rayon's `collect` semantics for indexed
//!   iterators. Scheduling is *chunk-stealing*: workers claim contiguous
//!   chunks of the shared work list from an atomic index until drained.
//! * [`scope`] — scoped spawn/join, used by `adds-query`'s deterministic
//!   parallel executor (`query::par`) for its worker threads. Tasks may
//!   borrow from the enclosing stack frame (`'scope` data), may spawn
//!   further tasks, and a panicking task **poisons the scope**: remaining
//!   tasks still run to completion, then the first panic payload is
//!   re-thrown from `scope` itself — never a deadlock, matching rayon's
//!   documented behavior.
//!
//! Deviations from real rayon:
//!
//! * no work-stealing deques in `par_iter` — claiming is a single shared
//!   counter rather than per-worker queues with steal-half, which is enough
//!   for the CLI's coarse per-program jobs but would contend on very
//!   fine-grained items (callers that need real deques use `query::par`,
//!   which builds them on top of [`scope`]);
//! * the chunk size is fixed at claim time (`len / (threads * 4)`, min 1)
//!   instead of rayon's adaptive splitting;
//! * [`scope`] runs on threads spawned per call (one per initially queued
//!   task, capped) rather than a persistent pool, so `spawn` latency is a
//!   thread spawn, not a deque push — fine for the coarse worker-per-scope
//!   usage here, wrong for microtasks;
//! * only the *first* panic payload is propagated (real rayon may collect
//!   more than one); subsequent panics are swallowed;
//! * `build_global` may be called repeatedly (real rayon errors on the
//!   second call).
//!
//! A note on throughput numbers: wall-clock speedups measured through this
//! shim (batch mode, the native n-body benches) reflect the host the run
//! happened on — CI containers are often single-core and/or throttled, so
//! cross-run comparisons of absolute times are meaningless there. The
//! simulated machine's cycle counts (and `BENCH_machine.json`'s
//! engine-vs-engine ratios, measured back-to-back on one host) are the
//! numbers that transfer across machines.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads the global "pool" uses.
pub fn current_num_threads() -> usize {
    let configured = GLOBAL_THREADS.load(Ordering::Relaxed);
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Builder for the global thread pool, mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error from [`ThreadPoolBuilder::build_global`] (never produced here; the
/// shim allows reconfiguration, where real rayon errors on the second call).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("global thread pool already initialized")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Start building.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker thread count (0 = one per available core).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install the configuration globally.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Create a scope in which tasks can be spawned that borrow `'scope` data,
/// mirroring `rayon::scope`.
///
/// `op` receives a [`Scope`] handle; every task it (or a task) spawns is
/// guaranteed to complete before `scope` returns. If any task panics the
/// scope is *poisoned*: remaining tasks still run, and the first panic
/// payload is re-thrown from `scope` after the join — so a panicking task
/// can never deadlock the scope or silently vanish.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let registry = Scope {
        inner: std::sync::Mutex::new(ScopeState {
            queue: std::collections::VecDeque::new(),
            running: 0,
            panic: None,
        }),
        work: std::sync::Condvar::new(),
    };
    let result = op(&registry);
    let queued = registry.inner.lock().unwrap().queue.len();
    if queued > 0 {
        // One OS thread per initially queued task (capped): the intended
        // use is a handful of coarse workers per scope, not microtasks.
        let threads = queued.min(MAX_SCOPE_THREADS);
        std::thread::scope(|ts| {
            for _ in 0..threads {
                ts.spawn(|| registry.run_worker());
            }
            // The caller's thread joins the work instead of idling.
            registry.run_worker();
        });
    }
    let panic = registry.inner.lock().unwrap().panic.take();
    if let Some(payload) = panic {
        std::panic::resume_unwind(payload);
    }
    result
}

/// Upper bound on OS threads a single [`scope`] call will spawn.
const MAX_SCOPE_THREADS: usize = 64;

type ScopeTask<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

struct ScopeState<'scope> {
    queue: std::collections::VecDeque<ScopeTask<'scope>>,
    running: usize,
    panic: Option<Box<dyn std::any::Any + Send + 'static>>,
}

/// Handle for spawning tasks inside a [`scope`], mirroring `rayon::Scope`.
pub struct Scope<'scope> {
    inner: std::sync::Mutex<ScopeState<'scope>>,
    work: std::sync::Condvar,
}

impl<'scope> Scope<'scope> {
    /// Queue a task to run inside the scope. Tasks spawned from within
    /// other tasks are also joined before [`scope`] returns.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        let mut state = self.inner.lock().unwrap();
        state.queue.push_back(Box::new(body));
        drop(state);
        self.work.notify_one();
    }

    fn run_worker(&self) {
        loop {
            let task = {
                let mut state = self.inner.lock().unwrap();
                loop {
                    if let Some(t) = state.queue.pop_front() {
                        state.running += 1;
                        break t;
                    }
                    if state.running == 0 {
                        // Queue drained and nobody can refill it.
                        self.work.notify_all();
                        return;
                    }
                    state = self.work.wait(state).unwrap();
                }
            };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(self)));
            let mut state = self.inner.lock().unwrap();
            state.running -= 1;
            if let Err(payload) = outcome {
                if state.panic.is_none() {
                    state.panic = Some(payload);
                }
            }
            let done = state.running == 0 && state.queue.is_empty();
            drop(state);
            if done {
                self.work.notify_all();
            }
        }
    }
}

/// Parallel iterator traits and adaptors.
pub mod iter {
    use super::current_num_threads;

    /// Conversion of `&collection` into a parallel iterator, mirroring
    /// `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// The borrowed item type.
        type Item: 'data;
        /// Create a parallel iterator over `&self`'s items.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { slice: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { slice: self }
        }
    }

    /// Parallel iterator over `&[T]`.
    pub struct ParIter<'data, T> {
        slice: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        /// Map each item through `f` in parallel.
        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
        where
            F: Fn(&'data T) -> R + Sync,
            R: Send,
        {
            ParMap {
                slice: self.slice,
                f,
            }
        }
    }

    /// The result of [`ParIter::map`].
    pub struct ParMap<'data, T, F> {
        slice: &'data [T],
        f: F,
    }

    impl<'data, T, F, R> ParMap<'data, T, F>
    where
        T: Sync,
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        /// Execute the map on worker threads and collect results in input
        /// order. Workers claim chunks from a shared atomic index
        /// (chunk-stealing), so uneven per-item cost balances across
        /// threads.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let n = self.slice.len();
            let threads = current_num_threads().clamp(1, n.max(1));
            let f = &self.f;
            if threads <= 1 || n <= 1 {
                return self.slice.iter().map(f).collect();
            }
            // Several chunks per worker: small enough to balance, large
            // enough to keep the counter cold.
            let chunk = (n / (threads * 4)).max(1);
            let next = std::sync::atomic::AtomicUsize::new(0);
            let slice = self.slice;
            let mut parts: Vec<(usize, Vec<R>)> = Vec::new();
            std::thread::scope(|s| {
                let next = &next;
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        s.spawn(move || {
                            let mut done: Vec<(usize, Vec<R>)> = Vec::new();
                            loop {
                                let start =
                                    next.fetch_add(chunk, std::sync::atomic::Ordering::Relaxed);
                                if start >= n {
                                    return done;
                                }
                                let end = (start + chunk).min(n);
                                done.push((
                                    start,
                                    slice[start..end].iter().map(f).collect::<Vec<R>>(),
                                ));
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    parts.extend(h.join().expect("rayon shim worker panicked"));
                }
            });
            // Chunks complete out of order; reassemble by start index.
            parts.sort_by_key(|(start, _)| *start);
            parts.into_iter().flat_map(|(_, rs)| rs).collect()
        }
    }
}

/// Common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    /// Tests that reconfigure the global thread count serialize on this
    /// lock so they don't observe each other's settings.
    static GLOBAL_CONFIG_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = items.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn respects_configured_jobs() {
        let _guard = GLOBAL_CONFIG_LOCK.lock().unwrap();
        crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build_global()
            .unwrap();
        assert_eq!(crate::current_num_threads(), 3);
        let items = vec![1u32, 2, 3, 4, 5];
        let sq: Vec<u32> = items.par_iter().map(|x| x * x).collect();
        assert_eq!(sq, vec![1, 4, 9, 16, 25]);
        crate::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
    }

    #[test]
    fn uneven_work_balances_and_keeps_order() {
        let _guard = GLOBAL_CONFIG_LOCK.lock().unwrap();
        // One pathologically expensive item at the front: static chunking
        // would serialize everything behind worker 0; chunk-stealing lets
        // the other workers drain the rest. Correctness check here is
        // order preservation — balance shows up as wall-clock, which a unit
        // test should not assert on.
        crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build_global()
            .unwrap();
        let items: Vec<u64> = (0..257).collect();
        let out: Vec<u64> = items
            .par_iter()
            .map(|&x| {
                if x == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                x * 3
            })
            .collect();
        assert_eq!(out, (0..257).map(|x| x * 3).collect::<Vec<_>>());
        crate::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
    }

    #[test]
    fn chunk_claims_cover_exactly_once() {
        let _guard = GLOBAL_CONFIG_LOCK.lock().unwrap();
        // Every index is mapped exactly once even when threads > items and
        // the chunk arithmetic degenerates to 1.
        crate::ThreadPoolBuilder::new()
            .num_threads(8)
            .build_global()
            .unwrap();
        let items: Vec<usize> = (0..13).collect();
        let sum: usize = items
            .par_iter()
            .map(|&x| x)
            .collect::<Vec<_>>()
            .into_iter()
            .sum();
        assert_eq!(sum, (0..13).sum::<usize>());
        crate::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
    }

    #[test]
    fn scope_joins_all_tasks_and_borrows_stack_data() {
        let hits: Vec<std::sync::atomic::AtomicUsize> = (0..8)
            .map(|_| std::sync::atomic::AtomicUsize::new(0))
            .collect();
        crate::scope(|s| {
            for slot in &hits {
                s.spawn(move |_| {
                    slot.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        for slot in &hits {
            assert_eq!(slot.load(std::sync::atomic::Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn scope_tasks_can_spawn_more_tasks() {
        let total = std::sync::atomic::AtomicUsize::new(0);
        crate::scope(|s| {
            for _ in 0..4 {
                s.spawn(|inner| {
                    total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    inner.spawn(|_| {
                        total.fetch_add(10, std::sync::atomic::Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 44);
    }

    #[test]
    fn panicking_task_poisons_the_scope_instead_of_deadlocking() {
        // The contract pinned here: one task panics, the scope still joins
        // every other task (their side effects land), and the panic payload
        // is re-thrown from `scope` itself. The test *completing* is the
        // no-deadlock half of the assertion.
        let survivors = std::sync::atomic::AtomicUsize::new(0);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::scope(|s| {
                s.spawn(|_| panic!("poison"));
                for _ in 0..6 {
                    s.spawn(|_| {
                        survivors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    });
                }
            });
        }));
        let payload = outcome.expect_err("scope must re-throw the task panic");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"poison"));
        assert_eq!(survivors.load(std::sync::atomic::Ordering::Relaxed), 6);
    }

    #[test]
    fn scope_returns_the_closure_value_when_nothing_is_spawned() {
        assert_eq!(crate::scope(|_| 42), 42);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7u8];
        let out: Vec<u8> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
