//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this shim implements
//! the subset of the criterion API the workspace's benches use: benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Instead of criterion's
//! statistical machinery it takes `sample_size` timed samples (after a
//! fixed number of warm-up iterations) and reports the median per-iteration
//! time to stdout. Good enough to keep `cargo bench` compiling and to give
//! order-of-magnitude numbers; not a replacement for real criterion.
//!
//! Like real criterion, passing `--test` on the bench binary's command line
//! (`cargo bench -- --test`) runs each benchmark exactly once without
//! timing — the CI smoke mode that keeps bench code from rotting.
//!
//! On interpreting the numbers: every timing here is host wall-clock on
//! whatever machine runs the bench — a shared CI container's throughput
//! figures (e.g. the statements/second in `BENCH_machine.json`) say how
//! engines compare *to each other* on that host, not how the simulated
//! Sequent would perform; the machine's own deterministic cycle counter is
//! the portable performance number.

#![warn(missing_docs)]

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// `--test` smoke mode: run each benchmark body once, without timing.
fn test_mode() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

/// Prevent the optimizer from discarding a value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim's sampling is fixed-count,
    /// so the measurement-time budget is ignored.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; warm-up is a fixed iteration count.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Run a parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, as real criterion renders it.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    median_ns: Option<f64>,
}

impl Bencher {
    /// Time `f`, recording the median of `sample_size` samples (in
    /// `--test` mode: run once, record nothing).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if test_mode() {
            black_box(f());
            return;
        }
        for _ in 0..3 {
            black_box(f()); // warm-up
        }
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            samples.push(start.elapsed().as_nanos() as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median_ns = Some(samples[samples.len() / 2]);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        sample_size,
        median_ns: None,
    };
    f(&mut b);
    if test_mode() {
        println!("test {id:<60} ... ok");
        return;
    }
    match b.median_ns {
        Some(ns) if ns >= 1e9 => println!("bench {id:<60} {:>12.3} s/iter", ns / 1e9),
        Some(ns) if ns >= 1e6 => println!("bench {id:<60} {:>12.3} ms/iter", ns / 1e6),
        Some(ns) if ns >= 1e3 => println!("bench {id:<60} {:>12.3} us/iter", ns / 1e3),
        Some(ns) => println!("bench {id:<60} {ns:>12.0} ns/iter"),
        None => println!("bench {id:<60} (no samples)"),
    }
}

/// Declare a group of benchmark functions, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bencher_records_samples() {
        let mut c = crate::Criterion::default().sample_size(5);
        let mut g = c.benchmark_group("shim");
        let mut ran = 0u32;
        g.bench_function("count", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran >= 5);
    }
}
