//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal, deterministic implementation of the tiny slice of the `rand`
//! API the seed code uses: [`rngs::SmallRng`], [`Rng::gen`],
//! [`Rng::gen_range`] over half-open ranges, and
//! [`SeedableRng::seed_from_u64`]. The generator is xoshiro256++, seeded via
//! SplitMix64 — the same construction real `SmallRng` uses on 64-bit
//! targets, though streams are not expected to match the real crate.

#![warn(missing_docs)]

use std::ops::Range;

/// Random number generator front-end, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64` is uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// Sample uniformly from a half-open range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self.next_u64())
    }
}

impl<T: RngCore> Rng for T {}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from 64 random bits ("standard distribution").
pub trait Standard {
    /// Map 64 random bits to a sample.
    fn sample(bits: u64) -> Self;
}

impl Standard for f64 {
    fn sample(bits: u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample(bits: u64) -> u64 {
        bits
    }
}

impl Standard for bool {
    fn sample(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Sample uniformly from the range given 64 random bits.
    fn sample(self, bits: u64) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, bits: u64) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let unit = f64::sample(bits);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, bits: u64) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (bits as u128) % width;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as real rand does for seed_from_u64.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(3i64..17);
            assert!((3..17).contains(&i));
            let u = rng.gen_range(0u64..u64::MAX);
            assert!(u < u64::MAX);
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
