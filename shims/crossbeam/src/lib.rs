//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this shim maps the
//! one API the workspace uses — scoped threads (`crossbeam::scope` /
//! `crossbeam::thread::scope`) — onto `std::thread::scope`, which has been
//! stable since Rust 1.63 and provides the same guarantees. Semantic
//! differences from real crossbeam: a panicking child thread propagates at
//! the end of the scope (via std), so the `Result` returned here is always
//! `Ok` unless the closure itself panics through std's propagation.

#![warn(missing_docs)]

pub use thread::scope;

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    /// A scope for spawning borrowing threads; wraps [`std::thread::Scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; `join` returns the closure's result.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. As in crossbeam, the closure receives the
        /// scope itself so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Create a scope in which threads may borrow non-`'static` data.
    ///
    /// Mirrors `crossbeam::thread::scope`: returns `Ok(r)` where `r` is the
    /// closure's return value. Child-thread panics propagate as panics when
    /// the scope ends (std semantics) rather than surfacing as `Err`.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
