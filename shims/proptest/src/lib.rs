//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this shim implements
//! the subset of proptest the workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive`, and `boxed`,
//! * range strategies over the primitive numeric types, tuple strategies,
//!   [`strategy::Just`], and [`collection::vec`],
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`], and
//!   [`prop_assert_eq!`] macros,
//! * [`test_runner::Config`] (`ProptestConfig`) with `with_cases`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs (via the panic
//!   message the test formats) but is not minimized.
//! * **Deterministic seeding.** Case `i` of every test uses a fixed seed
//!   derived from `i`, so runs are reproducible without a persistence file.
//!   Set `PROPTEST_SHIM_SEED` to explore a different stream.
//! * `prop_recursive`'s `desired_size`/`expected_branch_size` hints are
//!   ignored; recursion depth alone bounds the generated values.

#![warn(missing_docs)]

/// Test-runner configuration, mirroring `proptest::test_runner`.
pub mod test_runner {
    /// Configuration for a `proptest!` block (`ProptestConfig`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// A test-case failure produced by `prop_assert!` and friends.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic per-case RNG (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` of a test.
        pub fn for_case(case: u32) -> Self {
            let base = std::env::var("PROPTEST_SHIM_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0x5eed_5eed_5eed_5eed);
            TestRng {
                state: base ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `usize` in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }
    }
}

/// Value-generation strategies, mirroring `proptest::strategy`.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::sync::Arc;

    /// A way to generate values of type [`Strategy::Value`].
    ///
    /// Object-safe core (`new_value`) plus provided combinators.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Build a recursive strategy: `f` receives the strategy for the
        /// previous depth level and returns the strategy for one level up;
        /// at most `depth` levels are stacked above `self`.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut level = base.clone();
            for _ in 0..depth {
                // Each level is a 50/50 mix of a leaf and one more layer,
                // which keeps expected size finite at every depth.
                let deeper = f(level).boxed();
                level = Union::new(vec![base.clone(), deeper]).boxed();
            }
            level
        }

        /// Erase the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adaptor.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Uniform choice between several strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Choose uniformly among `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].new_value(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % width;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate `Vec`s whose elements come from `element` and whose lengths
    /// are uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// One-size-fits-all imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items (with attributes,
/// including `#[test]`, which real proptest also expects spelled out).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            for case in 0..cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(case);
                $(
                    let $arg = $crate::strategy::Strategy::new_value(
                        &$strat,
                        &mut __rng,
                    );
                )+
                let __result: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!("proptest case {case} failed: {e}");
                }
            }
        }
    )*};
}

/// Uniform choice among strategy arms with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert inside a `proptest!` body; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3i64..17, y in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_map_compose(
            n in prop_oneof![
                (0usize..3).prop_map(|v| v * 10),
                Just(99usize),
            ]
        ) {
            prop_assert!(n == 0 || n == 10 || n == 20 || n == 99);
        }
    }

    proptest! {
        #[test]
        fn recursive_strategies_terminate(
            depth in (0usize..2).prop_recursive(3, 16, 2, |inner| {
                (inner, 0usize..2).prop_map(|(d, _)| d + 1)
            })
        ) {
            prop_assert!(depth <= 2 + 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0u64..1000, 0..10);
        let a: Vec<Vec<u64>> = (0..20)
            .map(|c| s.new_value(&mut TestRng::for_case(c)))
            .collect();
        let b: Vec<Vec<u64>> = (0..20)
            .map(|c| s.new_value(&mut TestRng::for_case(c)))
            .collect();
        assert_eq!(a, b);
    }
}
