//! End-to-end compiler pipeline on the full Barnes–Hut IL program:
//! parse → analyze → validate → parallelize → execute on the simulated
//! Sequent at 1, 4 and 7 PEs.
//!
//! Run with: `cargo run --release --example compile_and_run`

use adds::lang::programs;
use adds::machine::{run_barnes_hut, uniform_cloud, CostModel};

fn main() {
    // Compile and analyze the original program.
    let compiled = adds::core::compile(programs::BARNES_HUT).expect("compiles");
    println!("functions analyzed: {}", compiled.analyses.len());

    // The analysis validates the octree abstraction through build_tree …
    let bt = compiled.analysis("build_tree").unwrap();
    println!(
        "build_tree: octree `next` chain valid on return: {}",
        bt.exit.abstraction_valid("Octree", "next")
    );
    // … and observes insert_particle's temporary sharing (§4.3.2).
    let ip = compiled.analysis("insert_particle").unwrap();
    for e in &ip.events {
        println!("  insert_particle: {e}");
    }

    // Parallelize.
    let (prog, reports) =
        adds::core::parallelize_program(programs::BARNES_HUT).expect("parallelizes");
    for r in &reports {
        for p in &r.parallelized {
            println!(
                "parallelized {} (chase `{}` via `{}`)",
                r.func.name, p.var, p.field
            );
        }
    }

    // Execute original vs transformed on the simulated machine.
    let tp_seq = adds::lang::check_source(programs::BARNES_HUT).unwrap();
    let tp_par = adds::lang::check_source(&adds::lang::pretty::program(&prog)).unwrap();
    let bodies = uniform_cloud(96, 3);
    let seq = run_barnes_hut(
        &tp_seq,
        &bodies,
        2,
        0.7,
        0.001,
        1,
        CostModel::sequent(),
        false,
    )
    .expect("seq");
    println!("\nsimulated cycles, 96 particles, 2 steps:");
    println!("  seq    : {:>12}", seq.cycles);
    for pes in [4usize, 7] {
        let par = run_barnes_hut(
            &tp_par,
            &bodies,
            2,
            0.7,
            0.001,
            pes,
            CostModel::sequent(),
            true,
        )
        .expect("par");
        assert_eq!(par.conflict_count, 0);
        // Same physics.
        for (a, b) in seq.bodies.iter().zip(&par.bodies) {
            for d in 0..3 {
                assert!((a.pos[d] - b.pos[d]).abs() < 1e-9);
            }
        }
        println!(
            "  par({pes}) : {:>12}  speedup {:.2}  (0 conflicts, {} parallel rounds)",
            par.cycles,
            seq.cycles as f64 / par.cycles as f64,
            par.parallel_rounds
        );
    }
}
