//! The paper's §4 workload natively: a Barnes–Hut N-body simulation with
//! the strip-mined parallel loops on real threads, plus diagnostics.
//!
//! Run with: `cargo run --release --example nbody_sim [N] [steps] [threads]`

use adds::nbody::{gen, SimParams, Simulation};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(1024);
    let steps: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(20);
    let threads: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(4);

    let params = SimParams {
        theta: 0.7,
        dt: 0.001,
        eps: 1e-3,
    };

    println!(
        "Barnes-Hut: N={n}, {steps} steps, theta={}, Plummer model",
        params.theta
    );

    // Sequential run.
    let mut seq = Simulation::new(gen::plummer(n, 1992), params);
    let t0 = Instant::now();
    seq.run_sequential(steps);
    let t_seq = t0.elapsed();
    println!(
        "sequential: {:>8.1?}  (tree: {} nodes, depth {})",
        t_seq, seq.last_tree_nodes, seq.last_tree_depth
    );

    // Parallel run (strip-mined, as transformed in §4.3.3).
    let mut par = Simulation::new(gen::plummer(n, 1992), params);
    let t0 = Instant::now();
    par.run_parallel(steps, threads);
    let t_par = t0.elapsed();
    println!(
        "par({threads}):    {:>8.1?}  speedup {:.2}",
        t_par,
        t_seq.as_secs_f64() / t_par.as_secs_f64()
    );

    // The parallelization must not change physics.
    let max_dev = seq
        .particles
        .particles()
        .iter()
        .zip(par.particles.particles())
        .map(|(a, b)| (a.pos - b.pos).norm())
        .fold(0.0f64, f64::max);
    println!("max trajectory deviation seq vs par: {max_dev:.2e}");
    assert!(max_dev < 1e-9);

    // Physics diagnostics.
    println!(
        "momentum |p| = {:.3e} (≈0), kinetic energy = {:.4}",
        seq.particles.momentum().norm(),
        seq.particles.kinetic_energy()
    );

    // Compare against the O(N²) baseline on a smaller problem.
    let small = 256.min(n);
    let mut bh = Simulation::new(gen::plummer(small, 7), params);
    let mut direct = Simulation::new(gen::plummer(small, 7), params);
    let t0 = Instant::now();
    bh.run_sequential(5);
    let t_bh = t0.elapsed();
    let t0 = Instant::now();
    direct.run_direct(5);
    let t_direct = t0.elapsed();
    println!(
        "\nN={small}, 5 steps: tree-code {t_bh:.1?} vs direct O(N^2) {t_direct:.1?} \
         (ratio {:.1}x)",
        t_direct.as_secs_f64() / t_bh.as_secs_f64()
    );
}
