//! Quickstart: declare a data structure's shape with ADDS, let the analysis
//! prove iteration independence, and apply the paper's strip-mining
//! transformation — all from source text.
//!
//! Run with: `cargo run --example quickstart`

fn main() {
    // 1. An IL program: a list type WITH an ADDS declaration, and the
    //    paper's §3.3.2 coefficient-scaling loop.
    let src = adds::lang::programs::LIST_SCALE_ADDS;
    println!("=== source ===\n{src}");

    // 2. Compile: parse, type check, effect summaries, path matrix analysis.
    let compiled = adds::core::compile(src).expect("compiles");
    let analysis = compiled.analysis("scale").expect("analyzed");

    // 3. The loop's fixed-point path matrix: head, p, p' never alias.
    let fixpoint = &analysis.loops[0].bottom;
    println!(
        "=== loop fixed-point path matrix ===\n{}",
        fixpoint.pm.render()
    );
    assert!(!fixpoint.pm.get("p'", "p").may_alias());

    // 4. Legality: the loop is parallelizable.
    let checks = adds::core::check_function(&compiled.tp, &compiled.summaries, analysis, "scale");
    println!("parallelizable: {}", checks[0].parallelizable);
    assert!(checks[0].parallelizable);

    // 5. Transform: strip-mine by the number of PEs (§4.3.3).
    let out = adds::core::parallelize_to_source(src).expect("transforms");
    println!("=== transformed ===\n{out}");

    // 6. Execute both on the simulated machine and compare.
    use adds::machine::{CostModel, Interp, MachineConfig, Value};
    let run = |source: &str, pes: usize| -> (Vec<i64>, u64) {
        let tp = adds::lang::check_source(source).unwrap();
        let mut it = Interp::new(
            &tp,
            MachineConfig {
                pes,
                cost: CostModel::uniform(),
                ..MachineConfig::default()
            },
        );
        let mut head = Value::Null;
        let mut ids = Vec::new();
        for i in (1..=10i64).rev() {
            let n = it.host_alloc("ListNode");
            it.host_store(n, "coef", 0, Value::Int(i));
            it.host_store(n, "next", 0, head);
            head = Value::Ptr(n);
            ids.push(n);
        }
        it.call("scale", &[head, Value::Int(3)]).unwrap();
        let coefs = ids
            .iter()
            .rev()
            .map(|n| it.host_load(*n, "coef", 0).as_int().unwrap())
            .collect();
        (coefs, it.clock)
    };
    let (seq, seq_cycles) = run(src, 1);
    let (par, par_cycles) = run(&out, 4);
    assert_eq!(seq, par, "same results");
    println!("sequential cycles: {seq_cycles}, 4-PE cycles: {par_cycles}");
    println!("coefficients after scaling by 3: {seq:?}");
}
