//! The §4.2 aside: a SPLASH-Water-style O(N²) arrays-and-iteration MD run,
//! showing (a) physical sanity (energy and momentum conservation) and
//! (b) why array codes were the path of least resistance for 1990s
//! parallelization — the slice decomposition is trivially safe.
//!
//! Run with: `cargo run --release --example water_md`

use adds::nbody::water::{lattice, WaterParams};
use std::time::Instant;

fn main() {
    // Big enough that a step's O(N²) force work (~10 ms) dwarfs the
    // per-step thread spawn cost; SPLASH-era problem sizes behaved the
    // same way relative to their machines.
    let n = 2048;
    let steps = 5;
    let params = WaterParams::default();

    // Physical sanity on a small box.
    let mut s = lattice(125, 42, params);
    s.run(1, 1); // prime forces
    let e0 = s.energy();
    let p0 = s.momentum();
    s.run(steps, 1);
    println!(
        "N=125, {steps} steps:  energy {e0:.4} -> {:.4}   |momentum| {:.2e} -> {:.2e}",
        s.energy(),
        p0.norm(),
        s.momentum().norm()
    );

    // The parallelization story: identical trajectories, no analysis needed.
    let mut seq = lattice(n, 7, params);
    let t0 = Instant::now();
    seq.run(steps, 1);
    let t_seq = t0.elapsed();

    for threads in [2, 4, 7] {
        let mut par = lattice(n, 7, params);
        let t0 = Instant::now();
        par.run(steps, threads);
        let t_par = t0.elapsed();
        assert_eq!(
            seq.molecules(),
            par.molecules(),
            "slice-parallel Water must be bitwise deterministic"
        );
        println!(
            "N={n}: {threads} threads  {:>8.1?} vs sequential {:>8.1?}  (speedup {:.1}x, bitwise equal)",
            t_par,
            t_seq,
            t_seq.as_secs_f64() / t_par.as_secs_f64()
        );
    }

    println!(
        "\nEvery force slice writes its own indices — the compiler sees\n\
         disjoint index ranges, no alias analysis required. The paper's\n\
         point: pointer tree-codes deserve the same treatment, and ADDS\n\
         declarations are what make it provable (see `nbody_sim`)."
    );
}
