//! The §2.1 precision ladder, interactively: run the declaration-free
//! baselines (conservative blob, k-limited storage graphs, CWZ-style
//! allocation sites) and the paper's ADDS pipeline on the same scaling
//! loop, and watch where each one gives up.
//!
//! Run with: `cargo run --example prior_art_ladder`

use adds::klimit::{analysis, programs, verdict, Mode};

fn main() {
    // The list is built by a loop and walked in the same function — the
    // simplest program on which the k-limit family already fails.
    let src = programs::LOOP_BUILT_SCALE;
    println!("=== program (no ADDS declaration) ===\n{src}");

    for mode in [Mode::Blob, Mode::KLimit(2), Mode::AllocSite] {
        println!("--- {} ---", mode.name());

        // The storage graph the baseline believes at the walk loop's head.
        let fg = analysis::analyze_source(src, "main", mode).expect("analyzes");
        let walk = fg.loops.values().next_back().expect("walk loop");
        println!(
            "storage graph at the walk-loop head:\n{}",
            walk.head.render()
        );

        // Its verdict on strip-mining the walk.
        let checks = verdict::check_source(src, "main", mode).expect("checks");
        let walk_check = checks.last().expect("walk checked");
        if walk_check.parallelizable {
            println!("verdict: parallelizable\n");
        } else {
            println!(
                "verdict: NOT parallelizable — {}\n",
                walk_check.reasons.join("; ")
            );
        }
    }

    // The same code with one changed line — the ADDS declaration — and the
    // paper's own pipeline.
    let twin = programs::adds_twin(src);
    println!("=== with the ADDS declaration ===");
    println!("type L [X] {{ int v; L *next is uniquely forward along X; }};\n");
    let compiled = adds::core::compile(&twin).expect("compiles");
    let an = compiled.analysis("main").expect("analyzed");
    let checks = adds::core::check_function(&compiled.tp, &compiled.summaries, an, "main");
    let walk = checks
        .iter()
        .rfind(|c| c.pattern.is_some())
        .expect("walk loop");
    println!(
        "--- ADDS + general path matrix analysis ---\nverdict: {}",
        if walk.parallelizable {
            "parallelizable"
        } else {
            "NOT parallelizable"
        }
    );
    assert!(walk.parallelizable);

    // And the §4.3.3 transformation it licenses.
    let out = adds::core::parallelize_to_source(&twin).expect("transforms");
    let walk_fn = out
        .split("procedure")
        .find(|f| f.contains("parfor"))
        .expect("a parfor was emitted");
    println!("\n=== strip-mined walk (excerpt) ===\nprocedure{walk_fn}");
}
