//! The 2-D range tree of §3.1.3 / Figure 4 answering the paper's queries:
//! "find all points within the interval x1..x2" and "find all points within
//! the bounding rectangle (x1,y1) and (x2,y2)".
//!
//! Run with: `cargo run --example range_tree_queries`

use adds::structures::{OrthList, Point, RangeTree2D};

fn main() {
    // A point cloud.
    let pts: Vec<Point> = (0..1000)
        .map(|i| Point {
            x: (i as f64 * 0.618_033_988_75).fract() * 100.0,
            y: (i as f64 * 0.414_213_562_37).fract() * 100.0,
            id: i as u32,
        })
        .collect();

    let tree = RangeTree2D::build(pts.clone());
    tree.validate_shape().expect("Figure 4 shape holds");
    println!("built 2-D range tree over {} points", tree.len());

    // Interval query along the leaf chain (the `leaves` dimension).
    let hits = tree.interval_query(10.0, 12.0);
    println!("points with x in [10,12]: {}", hits.len());

    // Rectangle query using the independent `sub` dimension.
    let rect = tree.rectangle_query(25.0, 30.0, 40.0, 60.0);
    println!("points in [25,30]x[40,60]: {}", rect.len());
    // Cross-check against brute force.
    let brute = pts
        .iter()
        .filter(|p| p.x >= 25.0 && p.x <= 30.0 && p.y >= 40.0 && p.y <= 60.0)
        .count();
    assert_eq!(rect.len(), brute);
    println!("matches brute force: {brute}");

    // The orthogonal list (Figure 3) as a sparse matrix.
    let n = 6;
    let m = OrthList::from_triplets(
        n,
        n,
        (0..n).flat_map(|i| [(i, i, 2.0), (i, (i + 1) % n, -1.0)]),
    );
    m.validate_shape().expect("Figure 3 shape holds");
    let x = vec![1.0; n];
    println!(
        "\nsparse matrix ({} nonzeros), A*1 = {:?}",
        m.nnz(),
        m.spmv(&x)
    );
    let y_par = m.spmv_parallel(&x, 3);
    assert_eq!(m.spmv(&x), y_par);
    println!("parallel row-wise SpMV agrees (rows are disjoint X chains)");
}
