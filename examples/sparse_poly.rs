//! Scientific pointer structures from §3.1.1: sparse polynomials and
//! bignums over one-way linked lists, including the paper's scaling loop
//! run both sequentially and strip-parallel.
//!
//! Run with: `cargo run --example sparse_poly`

use adds::structures::{Bignum, Polynomial};

fn main() {
    // The paper's polynomial: 451x^31 + 10x^13 + 4.
    let mut p = Polynomial::paper_example();
    println!("p(x)  = {p}");
    println!("p(2)  = {}", p.eval(2.0));
    println!("p'(x) = {}", p.derivative());

    // The §3.3.2 loop: multiply every coefficient by a constant.
    p.scale_in_place(3);
    println!("3*p   = {p}");

    // The same loop, strip-mined across 4 workers — legal because the ADDS
    // declaration proves every node is visited exactly once.
    let mut big = Polynomial::from_terms((0..50_000u32).map(|i| (i as i64 + 1, i)));
    let mut big2 = big.clone();
    let t0 = std::time::Instant::now();
    big.scale_in_place(7);
    let t_seq = t0.elapsed();
    let t0 = std::time::Instant::now();
    big2.scale_parallel(7, 4);
    let t_par = t0.elapsed();
    assert_eq!(big, big2);
    println!("\n50k-term scale: sequential {t_seq:.1?}, 4-thread strip {t_par:.1?}");

    // Polynomial algebra.
    let a = Polynomial::from_terms([(1, 1), (1, 0)]); // x + 1
    let b = Polynomial::from_terms([(1, 1), (-1, 0)]); // x - 1
    println!("\n(x+1)(x-1) = {}", a.mul(&b));

    // Bignums: the paper's 3,298,991, stored 3 digits per node in reverse.
    let n = Bignum::from_decimal("3,298,991").unwrap();
    println!(
        "\nbignum 3,298,991 limbs (least significant first): {:?}",
        n.limb_values()
    );

    // 50! needs "infinite" precision.
    let mut f = Bignum::from_u64(1);
    for k in 2..=50u64 {
        f = f.mul_small(k);
    }
    println!("50! = {f}");
    assert_eq!(f.to_decimal().len(), 65);

    // Shape validation (the §2.2 run-time checks).
    f.limbs.validate_shape().expect("list shape intact");
    println!("list shape validated: acyclic, unique incoming links");
}
