//! The §2.1 precision ladder as a cross-crate integration test: the prior
//! structure-estimation baselines (`adds-klimit`) vs the paper's ADDS +
//! general path matrix pipeline (`adds-core`) on the same scaling loop,
//! with the list arriving from four different origins.
//!
//! The expected matrix *is* the paper's motivation section:
//!
//! | origin           | blob | k=1 | k=3 | CWZ | ADDS |
//! |------------------|------|-----|-----|-----|------|
//! | straight-line    |  ✗   |  ✗  |  ✓  |  ✓  |  ✓   |
//! | loop (append)    |  ✗   |  ✗  |  ✗  |  ✓  |  ✓   |
//! | loop (prepend)   |  ✗   |  ✗  |  ✗  |  ✗* |  ✓   |
//! | recursive build  |  ✗   |  ✗  |  ✗  |  ✗  |  ✓   |
//! | parameter        |  ✗   |  ✗  |  ✗  |  ✗  |  ✓   |
//!
//! *our simplified CWZ variant; full \[CWZ90\] handles prepend — see
//! `adds_klimit::programs::PREPEND_BUILT_SCALE`.

use adds::klimit::{programs, verdict, Mode};

fn prior(src: &str, func: &str, mode: Mode) -> bool {
    let checks = verdict::check_source(src, func, mode).expect("program checks");
    checks
        .iter()
        .rfind(|c| c.pattern.is_some())
        .expect("walk loop recognized")
        .parallelizable
}

fn adds(src: &str, func: &str) -> bool {
    let twin = programs::adds_twin(src);
    let c = adds::core::compile(&twin).expect("twin compiles");
    let an = c.analysis(func).expect("function analyzed");
    adds::core::check_function(&c.tp, &c.summaries, an, func)
        .iter()
        .rfind(|c| c.pattern.is_some())
        .expect("walk loop recognized")
        .parallelizable
}

#[test]
fn ladder_matrix_matches_the_papers_motivation() {
    // (origin, blob, k1, k3, cwz, adds)
    let expected = [
        ("straight-line build", false, false, true, true, true),
        ("loop build (append)", false, false, false, true, true),
        ("loop build (prepend)", false, false, false, false, true),
        ("recursive build", false, false, false, false, true),
        ("list as parameter", false, false, false, false, true),
    ];
    for ((name, src, func), (ename, blob, k1, k3, cwz, want_adds)) in
        programs::ladder_programs().into_iter().zip(expected)
    {
        assert_eq!(name, ename, "program order");
        assert_eq!(prior(src, func, Mode::Blob), blob, "{name}: blob");
        assert_eq!(prior(src, func, Mode::KLimit(1)), k1, "{name}: k=1");
        assert_eq!(prior(src, func, Mode::KLimit(3)), k3, "{name}: k=3");
        assert_eq!(prior(src, func, Mode::AllocSite), cwz, "{name}: cwz");
        assert_eq!(adds(src, func), want_adds, "{name}: adds");
    }
}

#[test]
fn adds_dominates_every_baseline_on_the_ladder() {
    // The declared approach must never lose to a declaration-free one —
    // the paper's central claim, as a property of the implementations.
    for (name, src, func) in programs::ladder_programs() {
        let adds_ok = adds(src, func);
        for mode in [
            Mode::Blob,
            Mode::KLimit(1),
            Mode::KLimit(3),
            Mode::AllocSite,
        ] {
            let prior_ok = prior(src, func, mode);
            assert!(
                adds_ok || !prior_ok,
                "{name}: {} proves what ADDS cannot",
                mode.name()
            );
        }
    }
}

#[test]
fn baselines_never_parallelize_the_papers_own_fragment() {
    // §3.3.2's `scale(head, c)` — the exact code the paper analyzes — is
    // out of reach for every declaration-free baseline (PARAM_SCALE is
    // that fragment), while the ADDS pipeline proves it (golden-tested in
    // tests/pipeline.rs). Belt and suspenders for the paper's PM1 claim:
    // "the compiler must assume that next is cyclic".
    for mode in [
        Mode::Blob,
        Mode::KLimit(1),
        Mode::KLimit(3),
        Mode::AllocSite,
    ] {
        assert!(!prior(programs::PARAM_SCALE, "scale", mode));
    }
}

#[test]
fn bhl1_is_beyond_every_baseline_but_not_beyond_adds() {
    // The paper's §4.3 headline: BHL1 walks the leaf list while calling
    // compute_force. The call alone havocs every storage-graph analysis;
    // the ADDS pipeline proves it parallelizable (see tests/pipeline.rs).
    let tp = adds::lang::types::check_source(adds::lang::programs::BARNES_HUT).unwrap();
    for mode in [Mode::Blob, Mode::KLimit(3), Mode::AllocSite] {
        let checks = adds::klimit::check_function(&tp, "bhl1", mode);
        assert!(
            checks.iter().all(|c| !c.parallelizable),
            "{}: must not license BHL1",
            mode.name()
        );
    }
    let c = adds::core::compile(adds::lang::programs::BARNES_HUT).unwrap();
    let an = c.analysis("bhl1").unwrap();
    let checks = adds::core::check_function(&c.tp, &c.summaries, an, "bhl1");
    assert!(checks.iter().any(|c| c.parallelizable));
}
