//! Property-based tests across the workspace.
//!
//! The headline property is **analysis soundness**: on randomly generated
//! pointer programs, whenever general path matrix analysis claims two
//! variables can never alias, concrete execution must agree.
#![allow(clippy::needless_range_loop)]

use adds::core::compile;
use adds::machine::{CostModel, Interp, MachineConfig, Value};
use adds::nbody::{disjoint_strides, gen, SimParams, Simulation};
use adds::structures::{OrthList, Point, Polynomial, RangeTree2D};
use proptest::prelude::*;

// ---------------------------------------------------------------- generators

/// One random pointer statement over variables of type `L*`.
#[derive(Clone, Debug)]
enum Op {
    Copy(usize, usize),         // x = y;
    Deref(usize, usize),        // x = y->next;
    GuardedStore(usize, usize), // if x <> NULL { x->next = y; }
    Fresh(usize),               // x = new L;
    Null(usize),                // x = NULL;
}

const VARS: [&str; 5] = ["a", "b", "p", "q", "r"];

fn op_strategy() -> impl Strategy<Value = Op> {
    let v = 0..VARS.len();
    prop_oneof![
        (v.clone(), 0..VARS.len()).prop_map(|(x, y)| Op::Copy(x, y)),
        (v.clone(), 0..VARS.len()).prop_map(|(x, y)| Op::Deref(x, y)),
        (v.clone(), 0..VARS.len()).prop_map(|(x, y)| Op::GuardedStore(x, y)),
        v.clone().prop_map(Op::Fresh),
        v.prop_map(Op::Null),
    ]
}

fn render_program(ops: &[Op]) -> String {
    let mut body = String::new();
    // Start: a = head of a 4-node list; b = a->next; p,q,r = NULL.
    body.push_str("p = NULL;\nq = NULL;\nr = NULL;\n");
    for op in ops {
        let line = match op {
            Op::Copy(x, y) => format!("{} = {};\n", VARS[*x], VARS[*y]),
            Op::Deref(x, y) => format!("{} = {}->next;\n", VARS[*x], VARS[*y]),
            Op::GuardedStore(x, y) => format!(
                "if {} <> NULL {{ {}->next = {}; }}\n",
                VARS[*x], VARS[*x], VARS[*y]
            ),
            Op::Fresh(x) => format!("{} = new L;\n", VARS[*x]),
            Op::Null(x) => format!("{} = NULL;\n", VARS[*x]),
        };
        body.push_str(&line);
    }
    // Emit pairwise "non-null and same node" observations.
    let mut prints = String::new();
    for i in 0..VARS.len() {
        for j in (i + 1)..VARS.len() {
            prints.push_str(&format!(
                "print({a} <> NULL && {b} <> NULL && {a} == {b});\n",
                a = VARS[i],
                b = VARS[j]
            ));
        }
    }
    format!(
        "type L [X] {{ int v; L *next is uniquely forward along X; }};
        procedure f(a: L*, b: L*)
        {{
            var p: L*;
            var q: L*;
            var r: L*;
            {body}
            {prints}
        }}"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness: analysis `no_alias` ⇒ concretely different nodes.
    #[test]
    fn analysis_no_alias_is_sound(ops in prop::collection::vec(op_strategy(), 0..12)) {
        let src = render_program(&ops);
        let compiled = compile(&src).expect("generated program compiles");
        let an = compiled.analysis("f").expect("analyzed");
        let exit = &an.exit;

        // Concrete run: a 4-node list, a = head, b = head->next->next.
        let tp = &compiled.tp;
        let mut it = Interp::new(tp, MachineConfig {
            cost: CostModel::uniform(),
            ..MachineConfig::default()
        });
        let mut head = Value::Null;
        let mut ids = Vec::new();
        for i in (0..4).rev() {
            let n = it.host_alloc("L");
            it.host_store(n, "v", 0, Value::Int(i));
            it.host_store(n, "next", 0, head);
            head = Value::Ptr(n);
            ids.push(n);
        }
        let b = it.host_load(ids[ids.len()-1], "next", 0); // head->next
        let b = match b { Value::Ptr(n) => it.host_load(n, "next", 0), v => v };
        it.call("f", &[head, b]).expect("runs");

        // Compare: printed "true" means the pair was concretely aliased.
        let mut k = 0;
        for i in 0..VARS.len() {
            for j in (i + 1)..VARS.len() {
                let concretely_same = it.output[k] == "true";
                k += 1;
                if concretely_same {
                    prop_assert!(
                        exit.pm.get(VARS[i], VARS[j]).may_alias(),
                        "analysis claimed {} and {} never alias, but they do\n{}\nprogram:\n{src}",
                        VARS[i], VARS[j], exit.pm
                    );
                }
            }
        }
    }

    /// The strip writers cover every index exactly once, for any length and
    /// thread count.
    #[test]
    fn stride_partition_is_exact(len in 0usize..200, k in 1usize..17) {
        let mut data = vec![0u32; len];
        let writers = disjoint_strides(&mut data, k);
        let mut seen = vec![0u32; len];
        for w in &writers {
            for i in w.indices() {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|c| *c == 1));
    }

    /// Parallel polynomial scaling equals sequential for any term set.
    #[test]
    fn poly_scale_parallel_equals_sequential(
        terms in prop::collection::vec((1i64..1000, 0u32..500), 0..60),
        c in -10i64..10,
        threads in 1usize..9,
    ) {
        let mut a = Polynomial::from_terms(terms.clone());
        let mut b = a.clone();
        a.scale_in_place(c);
        b.scale_parallel(c, threads);
        prop_assert_eq!(a, b);
    }

    /// SpMV over the orthogonal list equals the dense product.
    #[test]
    fn orthlist_spmv_equals_dense(
        entries in prop::collection::vec((0usize..12, 0usize..12, -5.0f64..5.0), 0..40),
        threads in 1usize..5,
    ) {
        let m = OrthList::from_triplets(12, 12, entries);
        m.validate_shape().unwrap();
        let x: Vec<f64> = (0..12).map(|i| i as f64 * 0.5 - 3.0).collect();
        let dense = m.to_dense();
        let want: Vec<f64> = dense
            .iter()
            .map(|row| row.iter().zip(&x).map(|(a, b)| a * b).sum())
            .collect();
        let seq = m.spmv(&x);
        let par = m.spmv_parallel(&x, threads);
        for ((s, p), w) in seq.iter().zip(&par).zip(&want) {
            prop_assert!((s - w).abs() < 1e-9);
            prop_assert!((p - w).abs() < 1e-9);
        }
    }

    /// Range tree queries equal brute force on random point sets.
    #[test]
    fn rangetree_matches_brute_force(
        pts in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..80),
        rect in (0.0f64..100.0, 0.0f64..100.0, 0.0f64..100.0, 0.0f64..100.0),
    ) {
        // De-duplicate x coordinates (the tree assumes distinct x).
        let mut points: Vec<Point> = pts
            .iter()
            .enumerate()
            .map(|(i, (x, y))| Point { x: x + i as f64 * 1e-7, y: *y, id: i as u32 })
            .collect();
        points.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap());
        let t = RangeTree2D::build(points.clone());
        t.validate_shape().unwrap();
        let (x1, x2, y1, y2) = rect;
        let (x1, x2) = (x1.min(x2), x1.max(x2));
        let (y1, y2) = (y1.min(y2), y1.max(y2));
        let mut got: Vec<u32> = t.rectangle_query(x1, x2, y1, y2).iter().map(|p| p.id).collect();
        got.sort();
        let mut want: Vec<u32> = points
            .iter()
            .filter(|p| p.x >= x1 && p.x <= x2 && p.y >= y1 && p.y <= y2)
            .map(|p| p.id)
            .collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Parallel N-body trajectories equal sequential ones bit-for-bit.
    #[test]
    fn nbody_parallel_equals_sequential(
        n in 1usize..40,
        threads in 1usize..8,
        seed in 0u64..1000,
    ) {
        let params = SimParams { theta: 0.7, dt: 0.01, eps: 1e-2 };
        let mut a = Simulation::new(gen::uniform_cube(n, seed), params);
        let mut b = Simulation::new(gen::uniform_cube(n, seed), params);
        a.run_sequential(2);
        b.run_parallel(2, threads);
        for (x, y) in a.particles.particles().iter().zip(b.particles.particles()) {
            prop_assert!((x.pos - y.pos).norm() < 1e-12);
            prop_assert!((x.vel - y.vel).norm() < 1e-12);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Bignum arithmetic agrees with u128 reference arithmetic.
    #[test]
    fn bignum_matches_u128(a in 0u64..u64::MAX, b in 0u64..u64::MAX, c in 0u64..1000) {
        use adds::structures::Bignum;
        let ba = Bignum::from_u64(a);
        let bb = Bignum::from_u64(b);
        prop_assert_eq!(ba.add(&bb).to_decimal(), (a as u128 + b as u128).to_string());
        prop_assert_eq!(ba.mul_small(c).to_decimal(), (a as u128 * c as u128).to_string());
        prop_assert_eq!(ba.mul(&bb).to_decimal(), (a as u128 * b as u128).to_string());
        prop_assert_eq!(
            ba.cmp_magnitude(&bb),
            a.cmp(&b)
        );
    }
}

// --------------------------------------------------------- §2.1 baselines

/// Random pointer programs with no parameters: everything is built from
/// `new`, so the storage-graph baselines see the whole heap (a parameter
/// would collapse them to the external world and make soundness vacuous).
fn render_noparam_program(ops: &[Op]) -> String {
    let mut body = String::new();
    // Build a 4-cell chain from 4 distinct sites: a = head, b = 3rd cell.
    body.push_str(
        "a = new L;\n\
         a->next = new L;\n\
         r = a->next;\n\
         r->next = new L;\n\
         r = r->next;\n\
         r->next = new L;\n\
         b = a->next;\n\
         b = b->next;\n\
         r = NULL;\np = NULL;\nq = NULL;\n",
    );
    for op in ops {
        let line = match op {
            Op::Copy(x, y) => format!("{} = {};\n", VARS[*x], VARS[*y]),
            Op::Deref(x, y) => format!("{} = {}->next;\n", VARS[*x], VARS[*y]),
            Op::GuardedStore(x, y) => format!(
                "if {} <> NULL {{ {}->next = {}; }}\n",
                VARS[*x], VARS[*x], VARS[*y]
            ),
            Op::Fresh(x) => format!("{} = new L;\n", VARS[*x]),
            Op::Null(x) => format!("{} = NULL;\n", VARS[*x]),
        };
        body.push_str(&line);
    }
    // Alias observations (same order as VARS pairs).
    let mut prints = String::new();
    for i in 0..VARS.len() {
        for j in (i + 1)..VARS.len() {
            prints.push_str(&format!(
                "print({a} <> NULL && {b} <> NULL && {a} == {b});\n",
                a = VARS[i],
                b = VARS[j]
            ));
        }
    }
    // Cycle probes: the heap holds at most ~20 cells, so a 64-step walk
    // that hasn't terminated must have looped.
    for v in VARS {
        prints.push_str(&format!(
            "w = {v};\ni = 0;\nwhile w <> NULL && i < 64 {{ w = w->next; i = i + 1; }}\nprint(i >= 64);\n"
        ));
    }
    format!(
        "type L {{ int v; L *next; }};
        procedure f()
        {{
            var a: L*; var b: L*; var p: L*; var q: L*; var r: L*;
            var w: L*;
            var i: int;
            {body}
            {prints}
        }}"
    )
}

fn run_noparam(src: &str) -> Vec<String> {
    let tp = adds::lang::types::check_source(src).expect("generated program compiles");
    let mut it = Interp::new(
        &tp,
        MachineConfig {
            cost: CostModel::uniform(),
            ..MachineConfig::default()
        },
    );
    it.call("f", &[]).expect("runs");
    it.output.clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness of every §2.1 baseline: a `no may-alias` claim must never
    /// contradict a concrete execution.
    #[test]
    fn klimit_no_alias_is_sound(ops in prop::collection::vec(op_strategy(), 0..12)) {
        use adds::klimit::{analyze_source, may_alias, Mode};
        let src = render_noparam_program(&ops);
        let output = run_noparam(&src);
        for mode in [Mode::Blob, Mode::KLimit(1), Mode::KLimit(3), Mode::AllocSite] {
            let fg = analyze_source(&src, "f", mode).expect("analyzes");
            let mut k = 0;
            for i in 0..VARS.len() {
                for j in (i + 1)..VARS.len() {
                    let concretely_same = output[k] == "true";
                    k += 1;
                    if concretely_same {
                        prop_assert!(
                            may_alias(&fg.exit, VARS[i], VARS[j]),
                            "{}: claimed {} and {} never alias, but they do\n{}\nprogram:\n{src}",
                            mode.name(), VARS[i], VARS[j], fg.exit
                        );
                    }
                }
            }
        }
    }

    /// Soundness of the shape estimate: if a concrete `next` walk from a
    /// variable loops, no baseline may classify that variable's structure
    /// as acyclic. This exercises the allocation-ordered edge machinery
    /// end to end.
    #[test]
    fn klimit_acyclicity_claims_are_sound(ops in prop::collection::vec(op_strategy(), 0..12)) {
        use adds::klimit::{analyze_source, classify_shape, Mode, Shape};
        let src = render_noparam_program(&ops);
        let output = run_noparam(&src);
        let pair_count = VARS.len() * (VARS.len() - 1) / 2;
        for mode in [Mode::KLimit(1), Mode::KLimit(3), Mode::AllocSite] {
            let fg = analyze_source(&src, "f", mode).expect("analyzes");
            for (vi, v) in VARS.iter().enumerate() {
                let concrete_cycle = output[pair_count + vi] == "true";
                if concrete_cycle {
                    let roots = fg.exit.points_to(v);
                    prop_assert!(
                        classify_shape(&fg.exit, &roots) == Shape::Cyclic,
                        "{}: concrete cycle from {v} but shape {:?}\n{}\nprogram:\n{src}",
                        mode.name(), classify_shape(&fg.exit, &roots), fg.exit
                    );
                }
            }
        }
    }
}

// ------------------------------------------------- transform equivalence

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The §4.3.3 strip-mining transformation preserves semantics: for any
    /// list contents, scaling through the transformed (parfor) program
    /// yields the same list as the original, on any PE count, with zero
    /// dynamic conflicts.
    #[test]
    fn stripmine_transform_preserves_list_scaling(
        values in prop::collection::vec(-100i64..100, 0..25),
        c in -5i64..6,
        pes in 1usize..9,
    ) {
        let original = adds::lang::programs::LIST_SCALE_ADDS;
        let transformed = adds::core::parallelize_to_source(original).expect("transforms");
        prop_assert!(transformed.contains("parfor"), "{transformed}");

        let run = |src: &str, pes: usize| -> (Vec<i64>, usize) {
            let tp = adds::lang::types::check_source(src).expect("compiles");
            let mut it = Interp::new(
                &tp,
                MachineConfig {
                    pes,
                    detect_conflicts: true,
                    cost: CostModel::uniform(),
                    ..MachineConfig::default()
                },
            );
            // Build the list host-side.
            let mut head = Value::Null;
            let mut ids = Vec::new();
            for &v in values.iter().rev() {
                let n = it.host_alloc("ListNode");
                it.host_store(n, "coef", 0, Value::Int(v));
                it.host_store(n, "exp", 0, Value::Int(0));
                it.host_store(n, "next", 0, head);
                head = Value::Ptr(n);
                ids.push(n);
            }
            ids.reverse();
            it.call("scale", &[head, Value::Int(c)]).expect("runs");
            let out: Vec<i64> = ids
                .iter()
                .map(|&n| match it.host_load(n, "coef", 0) {
                    Value::Int(v) => v,
                    v => panic!("coef became {v:?}"),
                })
                .collect();
            (out, it.conflicts.len())
        };

        let (seq, _) = run(original, 1);
        let (par, conflicts) = run(&transformed, pes);
        let want: Vec<i64> = values.iter().map(|v| v * c).collect();
        prop_assert_eq!(&seq, &want);
        prop_assert_eq!(&par, &want);
        prop_assert_eq!(conflicts, 0, "strip-mined iterations must be disjoint");
    }
}

// --------------------------------------------------- quadtree and water

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quadtree rectangle queries equal the naive filter, and the ADDS
    /// shape invariants hold, for arbitrary build sets and queries.
    #[test]
    fn quadtree_matches_naive_filter(
        pts in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 0..80),
        rect in (-60.0f64..60.0, -60.0f64..60.0, -60.0f64..60.0, -60.0f64..60.0),
    ) {
        use adds::structures::{QPoint, Quadtree};
        // Distinct coordinates (coincident points hit the documented
        // replacement rule, tested separately in the crate).
        let points: Vec<QPoint> = pts
            .iter()
            .enumerate()
            .map(|(i, (x, y))| QPoint { x: x + i as f64 * 1e-6, y: *y, id: i as u32 })
            .collect();
        let t = Quadtree::build(points.clone());
        prop_assert!(t.validate_shape().is_ok(), "{:?}", t.validate_shape());
        prop_assert_eq!(t.len(), points.len());
        let (x1, x2, y1, y2) = rect;
        let (x1, x2) = (x1.min(x2), x1.max(x2));
        let (y1, y2) = (y1.min(y2), y1.max(y2));
        let mut got: Vec<u32> = t.rectangle_query(x1, x2, y1, y2).iter().map(|p| p.id).collect();
        got.sort_unstable();
        let mut want: Vec<u32> = points
            .iter()
            .filter(|p| p.x >= x1 && p.x <= x2 && p.y >= y1 && p.y <= y2)
            .map(|p| p.id)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// The slice-parallel Water step is bitwise equal to the sequential
    /// one for any size/thread combination (the array code needs no
    /// tolerance: same sums, same order).
    #[test]
    fn water_parallel_equals_sequential(
        n in 0usize..28,
        threads in 1usize..9,
        steps in 1usize..3,
    ) {
        use adds::nbody::water::{lattice, WaterParams};
        let mut a = lattice(n, 9, WaterParams::default());
        let mut b = lattice(n, 9, WaterParams::default());
        a.run(steps, 1);
        b.run(steps, threads);
        prop_assert_eq!(a.molecules(), b.molecules());
    }
}
