//! Dynamic validation: run-time ADDS shape checks (§2.2) and failure
//! injection — the machine's conflict detector must catch an *illegal*
//! parallelization that the static legality test rejects.
//!
//! All tests here run on the bytecode VM (the production engine); the
//! differential suite in `crates/machine/tests/differential.rs` pins the
//! VM against the reference interpreter.

use adds::lang::programs;
use adds::lang::types::check_source;
use adds::machine::{
    sequent::build_particles, uniform_cloud, CompiledProgram, CostModel, MachineConfig,
    ShapeReportKind, Value, Vm,
};

#[test]
fn runtime_checks_observe_insert_particle_temporary_sharing() {
    // The static analysis predicts a temporary sharing violation inside
    // insert_particle (§4.3.2). With runtime shape checking on, the machine
    // observes the same thing dynamically while build_tree runs.
    let tp = check_source(programs::BARNES_HUT).unwrap();
    let cfg = MachineConfig {
        check_shapes: true,
        cost: CostModel::uniform(),
        ..MachineConfig::default()
    };
    let compiled = CompiledProgram::compile(&tp);
    let mut it = Vm::new(&compiled, cfg);
    let head = build_particles(&mut it, &uniform_cloud(16, 3));
    it.call("build_tree", &[head]).unwrap();
    assert!(
        it.shape_reports
            .iter()
            .any(|r| r.kind == ShapeReportKind::Sharing && r.field == "subtrees"),
        "expected the §4.3.2 temporary sharing to be observed: {:?}",
        it.shape_reports
    );
    // And no cycle is ever created.
    assert!(
        !it.shape_reports
            .iter()
            .any(|r| r.kind == ShapeReportKind::Cycle),
        "{:?}",
        it.shape_reports
    );
}

#[test]
fn runtime_checks_stay_silent_on_clean_list_code() {
    let tp = check_source(programs::LIST_SCALE_ADDS).unwrap();
    let cfg = MachineConfig {
        check_shapes: true,
        ..MachineConfig::default()
    };
    let compiled = CompiledProgram::compile(&tp);
    let mut it = Vm::new(&compiled, cfg);
    let mut head = Value::Null;
    for i in 0..10 {
        let n = it.host_alloc("ListNode");
        it.host_store(n, "coef", 0, Value::Int(i));
        it.host_store(n, "next", 0, head);
        head = Value::Ptr(n);
    }
    it.call("scale", &[head, Value::Int(2)]).unwrap();
    assert!(it.shape_reports.is_empty());
}

/// An ILLEGAL hand-"parallelization" of a reduction: every strip iteration
/// adds into the same accumulator node. The static legality check rejects
/// this loop; if someone transforms it anyway, the dynamic conflict
/// detector must catch the races.
const ILLEGAL_PARALLEL_SUM: &str = "
type L [X]
{
    int v;
    L *next is uniquely forward along X;
};

type Acc [A]
{
    int total;
    Acc *self is forward along A;
};

procedure _sum_iteration(i: int, p: L*, acc: Acc*)
{
    var k: int;
    for k = 1 to i
    {
        p = p->next;
    }
    if p <> NULL
    {
        acc->total = acc->total + p->v;
    }
}

procedure bad_parallel_sum(head: L*, acc: Acc*)
{
    var p: L*;
    var i: int;
    p = head;
    while p <> NULL
    {
        parfor i = 0 to PEs - 1
        {
            _sum_iteration(i, p, acc);
        }
        for i = 0 to PEs - 1
        {
            p = p->next;
        }
    }
}
";

#[test]
fn failure_injection_conflicts_are_detected() {
    let tp = check_source(ILLEGAL_PARALLEL_SUM).unwrap();
    let cfg = MachineConfig {
        pes: 4,
        detect_conflicts: true,
        cost: CostModel::uniform(),
        ..MachineConfig::default()
    };
    let compiled = CompiledProgram::compile(&tp);
    let mut it = Vm::new(&compiled, cfg);
    let mut head = Value::Null;
    for i in 0..8 {
        let n = it.host_alloc("L");
        it.host_store(n, "v", 0, Value::Int(i));
        it.host_store(n, "next", 0, head);
        head = Value::Ptr(n);
    }
    let acc = it.host_alloc("Acc");
    it.call("bad_parallel_sum", &[head, Value::Ptr(acc)])
        .unwrap();
    assert!(
        !it.conflicts.is_empty(),
        "racing accumulator writes must be detected"
    );
    assert!(it.conflicts.iter().any(|c| c.write_write));
}

#[test]
fn failure_injection_is_rejected_statically_too() {
    // The ORIGINAL (untransformed) reduction loop is refused by the
    // legality check — the analysis and the dynamic detector agree.
    let src = "
        type L [X] { int v; L *next is uniquely forward along X; };
        type Acc [A] { int total; Acc *self is forward along A; };
        procedure sum(head: L*, acc: Acc*) {
            var p: L*;
            p = head;
            while p <> NULL {
                acc->total = acc->total + p->v;
                p = p->next;
            }
        }";
    let c = adds::core::compile(src).unwrap();
    let an = c.analysis("sum").unwrap();
    let checks = adds::core::check_function(&c.tp, &c.summaries, an, "sum");
    assert!(!checks[0].parallelizable);
    assert!(checks[0]
        .reasons
        .iter()
        .any(|r| r.contains("writes through `acc`")));
}

#[test]
fn legal_transform_produces_no_conflicts_even_under_detection() {
    // Sanity counterpart: the pipeline's own output stays conflict-free
    // with detection enabled (checked here on the scale loop).
    let out = adds::core::parallelize_to_source(programs::LIST_SCALE_ADDS).unwrap();
    let tp = check_source(&out).unwrap();
    let cfg = MachineConfig {
        pes: 4,
        detect_conflicts: true,
        strict_conflicts: true, // abort on any conflict
        cost: CostModel::uniform(),
        ..MachineConfig::default()
    };
    let compiled = CompiledProgram::compile(&tp);
    let mut it = Vm::new(&compiled, cfg);
    let mut head = Value::Null;
    for i in 0..13 {
        let n = it.host_alloc("ListNode");
        it.host_store(n, "coef", 0, Value::Int(i));
        it.host_store(n, "next", 0, head);
        head = Value::Ptr(n);
    }
    it.call("scale", &[head, Value::Int(3)]).unwrap();
    assert!(it.conflicts.is_empty());
}

#[test]
fn strip_mined_orth_rows_run_conflict_free_and_correct() {
    // The nested-chase tentpole, validated dynamically: strip-mine the
    // orthogonal-list row loop (the inner `across` walk is a summarized
    // iteration-local effect), build a ragged 5-row orthogonal list, and run
    // the transformed program at 4 PEs with strict conflict detection. Every
    // stored entry must be scaled exactly once and no write may conflict.
    let out = adds::core::parallelize_to_source(programs::ORTH_ROW_SCALE).unwrap();
    assert!(out.contains("parfor"), "row loop not strip-mined:\n{out}");
    let tp = check_source(&out).unwrap();
    let cfg = MachineConfig {
        pes: 4,
        detect_conflicts: true,
        strict_conflicts: true, // abort on any conflict
        cost: CostModel::uniform(),
        ..MachineConfig::default()
    };
    let compiled = CompiledProgram::compile(&tp);
    let mut it = Vm::new(&compiled, cfg);

    // Rows of uneven length: row r holds entries with data = 100*r + j.
    let widths = [4usize, 1, 7, 3, 5];
    let mut rows = Value::Null;
    let mut nodes = Vec::new();
    for (r, w) in widths.iter().enumerate().rev() {
        let mut across = Value::Null;
        let mut row_nodes = Vec::new();
        for j in (0..*w).rev() {
            let n = it.host_alloc("OrthList");
            it.host_store(n, "data", 0, Value::Int((100 * r + j) as i64));
            it.host_store(n, "across", 0, across);
            across = Value::Ptr(n);
            row_nodes.push((n, 100 * r + j));
        }
        let head = row_nodes.last().expect("non-empty row").0;
        it.host_store(head, "down", 0, rows);
        rows = Value::Ptr(head);
        nodes.extend(row_nodes);
    }

    it.call("scale_rows", &[rows, Value::Int(3)]).unwrap();
    assert!(it.conflicts.is_empty(), "{:?}", it.conflicts);
    for (n, v) in nodes {
        assert_eq!(it.host_load(n, "data", 0), Value::Int(3 * v as i64));
    }
}
