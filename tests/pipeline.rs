//! Cross-crate integration: the full compile → analyze → validate →
//! transform → execute pipeline, asserting the paper's artifacts.

use adds::core::{check_function, compile, parallelize_program};
use adds::lang::programs;
use adds::machine::{run_barnes_hut, uniform_cloud, CostModel};

#[test]
fn pm1_conservative_matrix_is_all_maybe() {
    let c = compile(programs::LIST_SCALE_PLAIN).unwrap();
    let an = c.analysis("scale").unwrap();
    let pm = &an.loops[0].bottom.pm;
    for a in ["head", "p", "p'"] {
        for b in ["head", "p", "p'"] {
            if a != b {
                assert!(pm.get(a, b).may_alias(), "{a} vs {b} must be =?\n{pm}");
            }
        }
    }
}

#[test]
fn pm2_fixpoint_matches_paper() {
    let c = compile(programs::LIST_SCALE_ADDS).unwrap();
    let an = c.analysis("scale").unwrap();
    let pm = &an.loops[0].bottom.pm;
    assert_eq!(pm.get("head", "p").display(), "next+");
    assert_eq!(pm.get("head", "p'").display(), "next+");
    assert_eq!(pm.get("p'", "p").display(), "next");
    for (a, b) in [("head", "p"), ("head", "p'"), ("p'", "p")] {
        assert!(!pm.get(a, b).may_alias(), "{a}/{b}\n{pm}");
    }
}

#[test]
fn pm3_bhl1_matrix_matches_paper() {
    let c = compile(programs::BARNES_HUT).unwrap();
    let an = c.analysis("bhl1").unwrap();
    let pm = &an.loops[0].bottom.pm;
    // The §4.3.2 matrix: root =? everything; the list walkers clean.
    assert!(pm.get("root", "particles").may_alias());
    assert!(pm.get("root", "p").may_alias());
    assert_eq!(pm.get("particles", "p").display(), "next+");
    assert_eq!(pm.get("p'", "p").display(), "next");
    assert!(!pm.get("particles", "p").may_alias());
}

#[test]
fn v1_subtree_move_timeline() {
    let c = compile(programs::SUBTREE_MOVE).unwrap();
    let an = c.analysis("move_subtree").unwrap();
    assert_eq!(an.events.len(), 2);
    assert!(an.events[0].is_broken());
    assert!(!an.events[1].is_broken());
    assert!(an.exit.fully_valid());
}

#[test]
fn v2_insert_particle_breaks_and_repairs() {
    let c = compile(programs::BARNES_HUT).unwrap();
    let an = c.analysis("insert_particle").unwrap();
    assert!(an.events.iter().any(|e| e.is_broken()));
    assert!(an.events.iter().any(|e| !e.is_broken()));
    // The leaf chain is untouched by tree building.
    let bt = c.analysis("build_tree").unwrap();
    assert!(bt.exit.abstraction_valid("Octree", "next"));
}

#[test]
fn t1_transformed_code_shape() {
    let (prog, _) = parallelize_program(programs::BARNES_HUT).unwrap();
    let bhl1 = adds::lang::pretty::function(prog.func("bhl1").unwrap());
    // The paper's §4.3.3 shape.
    assert!(bhl1.contains("while p <> NULL"), "{bhl1}");
    assert!(bhl1.contains("parfor i = 0 to PEs - 1"), "{bhl1}");
    assert!(bhl1.contains("for i = 0 to PEs - 1"), "{bhl1}");
    let helper = prog
        .funcs
        .iter()
        .find(|f| f.name.starts_with("_bhl1"))
        .expect("helper generated");
    let h = adds::lang::pretty::function(helper);
    assert!(h.contains("for k = 1 to i"), "{h}");
    assert!(h.contains("if p <> NULL"), "{h}");
}

#[test]
fn t1_only_legal_loops_parallelized() {
    let (prog, reports) = parallelize_program(programs::BARNES_HUT).unwrap();
    let names: Vec<&str> = reports
        .iter()
        .filter(|r| !r.parallelized.is_empty())
        .map(|r| r.func.name.as_str())
        .collect();
    assert!(names.contains(&"bhl1"));
    assert!(names.contains(&"bhl2"));
    assert!(!names.contains(&"build_tree"));
    // build_tree keeps a sequential loop.
    let bt = adds::lang::pretty::function(prog.func("build_tree").unwrap());
    assert!(!bt.contains("parfor"));
}

#[test]
fn end_to_end_equivalence_and_speedup() {
    let (prog, _) = parallelize_program(programs::BARNES_HUT).unwrap();
    let tp_par = adds::lang::check_source(&adds::lang::pretty::program(&prog)).unwrap();
    let tp_seq = adds::lang::check_source(programs::BARNES_HUT).unwrap();
    let bodies = uniform_cloud(40, 13);
    let seq = run_barnes_hut(
        &tp_seq,
        &bodies,
        2,
        0.7,
        0.01,
        1,
        CostModel::sequent(),
        false,
    )
    .unwrap();
    let par = run_barnes_hut(
        &tp_par,
        &bodies,
        2,
        0.7,
        0.01,
        4,
        CostModel::sequent(),
        true,
    )
    .unwrap();
    assert_eq!(par.conflict_count, 0);
    assert!(par.cycles < seq.cycles);
    assert!(par.cycles * 4 > seq.cycles, "sublinear");
    for (a, b) in seq.bodies.iter().zip(&par.bodies) {
        for d in 0..3 {
            assert!((a.pos[d] - b.pos[d]).abs() < 1e-9);
        }
    }
}

#[test]
fn scale_loop_full_pipeline() {
    let c = compile(programs::LIST_SCALE_ADDS).unwrap();
    let an = c.analysis("scale").unwrap();
    let checks = check_function(&c.tp, &c.summaries, an, "scale");
    assert!(checks[0].parallelizable, "{:?}", checks[0].reasons);

    // Plain version is rejected.
    let c = compile(programs::LIST_SCALE_PLAIN).unwrap();
    let an = c.analysis("scale").unwrap();
    let checks = check_function(&c.tp, &c.summaries, an, "scale");
    assert!(!checks[0].parallelizable);
}

#[test]
fn transformed_source_is_itself_compilable_and_analyzable() {
    // The output of the transformation must be a first-class program:
    // compile it again and re-analyze.
    let (prog, _) = parallelize_program(programs::BARNES_HUT).unwrap();
    let src = adds::lang::pretty::program(&prog);
    let c2 = compile(&src).unwrap();
    assert!(c2.analysis("bhl1").is_some());
    assert!(c2
        .analysis("_bhl1_loop1_iteration")
        .or_else(|| c2
            .analyses
            .iter()
            .find(|(k, _)| k.starts_with("_bhl1"))
            .map(|(_, v)| v))
        .is_some());
}
